"""Warm the experiment cache: train everything the benches need.

Run once before ``pytest benchmarks/`` for a faster first benchmark run,
or let the benches train lazily — the disk cache is shared either way.

    python scripts/warm_cache.py
"""

import time

from repro.experiments import (
    ExperimentCache,
    ImageExperimentConfig,
    ServingExperimentConfig,
    TextExperimentConfig,
    ablation_suite,
    cascade_suite,
    nnlm_suite,
    resnet_suite,
    serving_suite,
    vgg_suite,
)


def main() -> None:
    cache = ExperimentCache()
    icfg = ImageExperimentConfig()
    tcfg = TextExperimentConfig()
    scfg = ServingExperimentConfig()

    steps = [
        ("vgg_sliced", lambda: vgg_suite.sliced_vgg_experiment(icfg, cache)),
        ("vgg_fixed",
         lambda: vgg_suite.fixed_vgg_ensemble_experiment(icfg, cache)),
        ("vgg_direct",
         lambda: vgg_suite.direct_slicing_experiment(icfg, cache)),
        ("nnlm", lambda: nnlm_suite.nnlm_experiment(tcfg, cache)),
        ("resnet_sliced",
         lambda: resnet_suite.sliced_resnet_experiment(icfg, cache)),
        ("resnet_sliced_w2",
         lambda: resnet_suite.sliced_resnet_experiment(icfg, cache, widen=2)),
        ("resnet_fixed",
         lambda: resnet_suite.fixed_resnet_ensemble_experiment(icfg, cache)),
        ("resnet_depth",
         lambda: resnet_suite.depth_ensemble_resnet_experiment(icfg, cache)),
        ("resnet_mc",
         lambda: resnet_suite.multi_classifier_experiment(icfg, cache)),
        ("resnet_msd",
         lambda: resnet_suite.multi_classifier_experiment(icfg, cache,
                                                          adaptive=True)),
        ("resnet_skip",
         lambda: resnet_suite.skipnet_experiment(icfg, cache)),
        ("vgg_sched", lambda: vgg_suite.scheduling_experiment(icfg, cache)),
        ("vgg_lb", lambda: vgg_suite.lower_bound_experiment(icfg, cache)),
        ("vgg_depth",
         lambda: vgg_suite.depth_ensemble_experiment(icfg, cache)),
        ("vgg_slim", lambda: vgg_suite.slimming_experiment(icfg, cache)),
        ("cascade", lambda: cascade_suite.cascade_experiment(icfg, cache)),
        ("serving",
         lambda: serving_suite.serving_experiment(icfg, scfg, cache)),
        ("abl_norm",
         lambda: ablation_suite.normalization_ablation(icfg, cache)),
        ("abl_gran",
         lambda: ablation_suite.granularity_ablation(icfg, cache)),
        ("abl_rescale", lambda: ablation_suite.rescale_ablation(cache)),
        ("abl_inc", lambda: ablation_suite.incremental_ablation(cache)),
    ]
    for name, step in steps:
        start = time.time()
        step()
        print(f"DONE {name} in {time.time() - start:.1f}s", flush=True)
    print("ALL DONE", flush=True)


if __name__ == "__main__":
    main()
