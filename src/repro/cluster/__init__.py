"""Cluster-scale capacity planning and autoscaling simulation.

The fleet layer above :mod:`repro.runtime`: :class:`Node` machines with
memory and FLOPs budgets host replica pools, a :class:`Fleet` routes
windows of millions-of-users traffic over them through the cost-ordered
profile table, an :class:`Autoscaler` adds/drains nodes (degrading
before scaling), and :func:`plan_capacity` sizes the whole thing
analytically from a forecast, a latency SLO and an accuracy floor.
Entry point: ``repro sizing``.
"""

from .autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from .fleet import Fleet, WindowRecord
from .node import (
    GiB,
    NODE_ACTIVE,
    NODE_BOOTING,
    NODE_DRAINING,
    NODE_RETIRED,
    CostTable,
    Node,
    NodeSpec,
    ProfileCost,
)
from .report import CapacityReport
from .simulate import (
    SimulationConfig,
    SimulationResult,
    simulate_autoscaling,
    summary_table,
)
from .solver import CapacityPlan, FixedPlan, SizingRequest, plan_capacity
from .traffic import (
    DAY,
    TrafficSpec,
    diurnal_spec,
    flash_spec,
    parse_forecast,
    ramp_spec,
    regional_spec,
    scenarios,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleEvent",
    "Fleet",
    "WindowRecord",
    "GiB",
    "NODE_ACTIVE",
    "NODE_BOOTING",
    "NODE_DRAINING",
    "NODE_RETIRED",
    "CostTable",
    "Node",
    "NodeSpec",
    "ProfileCost",
    "CapacityReport",
    "SimulationConfig",
    "SimulationResult",
    "simulate_autoscaling",
    "summary_table",
    "CapacityPlan",
    "FixedPlan",
    "SizingRequest",
    "plan_capacity",
    "DAY",
    "TrafficSpec",
    "diurnal_spec",
    "flash_spec",
    "parse_forecast",
    "ramp_spec",
    "regional_spec",
    "scenarios",
]
