"""Cluster-scale traffic forecasts and seeded window samplers.

The serving generators in :mod:`repro.serving.workload` model one pool's
arrival process request-by-request; a fleet simulation at
millions-of-users scale works on *windows* instead: the mean intensity
(queries/second) per fixed-length window, sampled once per window from a
seeded Poisson process.  A :class:`TrafficSpec` carries two intensity
functions:

* ``forecast(t)`` — what the capacity planner is told ahead of time
  (diurnal curves, planned ramps, regional skew);
* ``realized(t)`` — what the fleet actually receives, which is the
  forecast plus any *unforecast* components.  A flash crowd is exactly
  the part of traffic nobody planned for, so the ``flash`` scenario
  keeps its spike out of the forecast: the planner sizes for the
  diurnal base and the autoscaler/profile table must absorb the burst.

Specs parse from compact CLI strings (``diurnal:base=2000,peak=8``) and
the bundled :func:`scenarios` are the fleet benchmark's fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..errors import ServingError
from ..serving.workload import diurnal_rate, spike_rate

DAY = 86400.0


@dataclass(frozen=True)
class TrafficSpec:
    """A named traffic scenario over a fixed duration."""

    name: str
    duration: float
    forecast_fn: Callable[[float], float] = field(repr=False)
    realized_fn: Callable[[float], float] | None = field(
        default=None, repr=False)
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.duration <= 0:
            raise ServingError("traffic duration must be positive")

    def forecast(self, t: float) -> float:
        """Planned intensity (queries/second) at time ``t``."""
        return max(float(self.forecast_fn(t)), 0.0)

    def realized(self, t: float) -> float:
        """Actual intensity at ``t`` (forecast plus unforecast bursts)."""
        fn = self.realized_fn if self.realized_fn is not None \
            else self.forecast_fn
        return max(float(fn(t)), 0.0)

    # -- window views ---------------------------------------------------
    def window_count(self, window_seconds: float) -> int:
        if window_seconds <= 0:
            raise ServingError("window_seconds must be positive")
        return max(int(round(self.duration / window_seconds)), 1)

    def forecast_windows(self, window_seconds: float) -> np.ndarray:
        """Midpoint forecast intensity per window (queries/second)."""
        count = self.window_count(window_seconds)
        mids = (np.arange(count) + 0.5) * window_seconds
        return np.array([self.forecast(float(t)) for t in mids])

    def realized_windows(self, window_seconds: float) -> np.ndarray:
        """Midpoint realized intensity per window (queries/second)."""
        count = self.window_count(window_seconds)
        mids = (np.arange(count) + 0.5) * window_seconds
        return np.array([self.realized(float(t)) for t in mids])

    def sample_windows(self, window_seconds: float,
                       rng: np.random.Generator) -> np.ndarray:
        """Seeded per-window demand (queries/second), Poisson-sampled.

        Each window's request count is one Poisson draw around the
        realized intensity, so two samplers built from the same seed
        produce identical demand series — the basis of the simulator's
        byte-identical determinism.
        """
        intensity = self.realized_windows(window_seconds)
        counts = rng.poisson(intensity * window_seconds)
        return counts.astype(float) / window_seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration": self.duration,
            "params": dict(self.params),
        }


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def diurnal_spec(base: float = 2000.0, peak: float = 8.0,
                 period: float = DAY, duration: float = DAY) -> TrafficSpec:
    """A forecastable day/night cycle with ``peak``x peak-to-trough."""
    fn = diurnal_rate(base, peak, period)
    return TrafficSpec("diurnal", duration, fn,
                       params={"base": base, "peak": peak, "period": period})


def flash_spec(base: float = 2000.0, peak: float = 4.0,
               at: float = 0.3, mins: float = 30.0, factor: float = 6.0,
               period: float = DAY, duration: float = DAY) -> TrafficSpec:
    """A diurnal forecast with an *unforecast* flash crowd on top.

    ``at`` places the spike as a fraction of the duration; the spike
    multiplies realized traffic by ``factor`` for ``mins`` minutes but
    is invisible to the forecast — the defining property of a flash
    crowd (Singles'-Day checkout, a viral link).
    """
    if factor < 1:
        raise ServingError("flash factor must be >= 1")
    fn = diurnal_rate(base, peak, period)
    realized = spike_rate(fn, [(at * duration, mins * 60.0, factor)])
    return TrafficSpec("flash", duration, fn, realized,
                       params={"base": base, "peak": peak, "at": at,
                               "mins": mins, "factor": factor})


def ramp_spec(start: float = 500.0, end: float = 8000.0,
              duration: float = DAY) -> TrafficSpec:
    """A planned linear growth ramp (a launch, a rollout)."""
    if start <= 0 or end <= 0:
        raise ServingError("ramp endpoints must be positive")

    def fn(t: float) -> float:
        return start + (end - start) * min(max(t / duration, 0.0), 1.0)

    return TrafficSpec("ramp", duration, fn,
                       params={"start": start, "end": end})


def regional_spec(base: float = 2000.0, peak: float = 8.0,
                  regions: int = 3, skew: float = 0.6,
                  period: float = DAY, duration: float = DAY) -> TrafficSpec:
    """Phase-shifted regional diurnals with a skewed traffic split.

    Region ``i`` carries a geometrically decaying share (``skew`` in
    (0, 1]; 1 = even split) of the base intensity and peaks ``1/regions``
    of a period later than region ``i-1`` — the classic
    follow-the-sun shape whose fleet-level sum is flatter than any one
    region, which is exactly why a global fleet needs fewer nodes than
    per-region peak provisioning.
    """
    if regions < 1:
        raise ServingError("regions must be >= 1")
    if not 0.0 < skew <= 1.0:
        raise ServingError("skew must be in (0, 1]")
    weights = np.array([skew ** i for i in range(regions)])
    weights = weights / weights.sum()
    curves = [diurnal_rate(base * float(w), peak, period)
              for w in weights]
    shift = period / regions

    def fn(t: float) -> float:
        return sum(curve(t - i * shift)
                   for i, curve in enumerate(curves))

    return TrafficSpec("regional", duration, fn,
                       params={"base": base, "peak": peak,
                               "regions": regions, "skew": skew})


_BUILDERS: dict[str, Callable[..., TrafficSpec]] = {
    "diurnal": diurnal_spec,
    "flash": flash_spec,
    "ramp": ramp_spec,
    "regional": regional_spec,
}

_INT_PARAMS = {"regions"}


def parse_forecast(spec: str) -> TrafficSpec:
    """Build a :class:`TrafficSpec` from ``name:key=value,...``.

    Examples: ``diurnal:base=20000,peak=8``,
    ``flash:base=2000,factor=10,mins=15``, ``ramp:start=500,end=8000``,
    ``regional:regions=4,skew=0.5``.  Unknown names and keys raise
    :class:`~repro.errors.ServingError` listing the valid choices.
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ServingError(
            f"unknown forecast {name!r}; choose from {sorted(_BUILDERS)}")
    kwargs: dict[str, float] = {}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ServingError(
                    f"malformed forecast parameter {item!r} "
                    "(expected key=value)")
            try:
                kwargs[key] = int(value) if key in _INT_PARAMS \
                    else float(value)
            except ValueError:
                raise ServingError(
                    f"forecast parameter {key!r} needs a number, "
                    f"got {value!r}") from None
    try:
        return builder(**kwargs)
    except TypeError:
        import inspect

        valid = sorted(inspect.signature(builder).parameters)
        raise ServingError(
            f"invalid parameters for forecast {name!r}: {sorted(kwargs)}; "
            f"valid keys: {valid}") from None


def scenarios(base: float = 2000.0, duration: float = DAY
              ) -> dict[str, TrafficSpec]:
    """The benchmark's standard scenario set at a common base intensity."""
    return {
        "diurnal": diurnal_spec(base=base, duration=duration),
        "flash": flash_spec(base=base, duration=duration),
        "ramp": ramp_spec(start=base / 4, end=base * 4, duration=duration),
        "regional": regional_spec(base=base, duration=duration),
    }
