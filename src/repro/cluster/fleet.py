"""A sharded fleet of nodes with capacity-aware routing.

The fleet serves traffic at two granularities:

* **Window (fluid)** — :meth:`Fleet.serve_window` serves one
  fixed-length window of demand: it picks the slice profile with the
  :class:`~repro.serving.ProfileTableController` rule generalized to
  fleet capacity (most accurate candidate whose demand fits), splits the
  demand over serving nodes least-loaded-first, and returns a
  :class:`WindowRecord`.  This is what lets the simulator sweep a day of
  millions-of-users traffic in milliseconds.
* **Request (discrete)** — :meth:`Fleet.runtime_pool` exposes every
  serving replica as one :class:`~repro.runtime.pool.ReplicaPool`, so a
  fleet plugs directly into the continuous-time
  :class:`~repro.runtime.InferenceRuntime` (same dispatch policies,
  fault model, and telemetry) when per-request fidelity matters.

The latency model mirrors the paper's Sec. 4.1 rule: batches form every
``T/2`` and must execute inside the remaining ``T/2``, so a window meets
the SLO exactly when per-replica demand stays under the chosen profile's
calibrated throughput; demand beyond the *cheapest* profile's capacity
is dropped (and counted against SLO attainment).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..errors import ServingError
from ..runtime.pool import DISPATCH_POLICIES, ReplicaPool
from .node import NODE_BOOTING, NODE_DRAINING, CostTable, Node, ProfileCost

_EPS = 1e-9


@dataclass
class WindowRecord:
    """What one simulated window looked like, fleet-wide."""

    index: int
    start: float
    demand_qps: float
    profile: str | None            # chosen profile label (None = no demand)
    accuracy: float                # of the chosen profile (0 if none)
    utilization: float             # demand / capacity at chosen profile
    served_qps: float
    dropped_qps: float
    nodes_active: int
    nodes_booting: int
    nodes_draining: int
    violated: bool                 # some requests missed the SLO (dropped)
    node_utilization: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "demand_qps": self.demand_qps,
            "profile": self.profile,
            "accuracy": self.accuracy,
            "utilization": self.utilization,
            "served_qps": self.served_qps,
            "dropped_qps": self.dropped_qps,
            "nodes_active": self.nodes_active,
            "nodes_booting": self.nodes_booting,
            "nodes_draining": self.nodes_draining,
            "violated": self.violated,
        }


class Fleet:
    """An elastic set of nodes sharing one profile table."""

    def __init__(self, nodes, table: CostTable, spec=None,
                 latency_profile=None, replicas_per_node: int | None = None,
                 dispatch: str = "least-loaded", seed: int = 0,
                 backend: str = "thread", model=None):
        if dispatch not in DISPATCH_POLICIES:
            raise ServingError(
                f"unknown dispatch {dispatch!r}; choose from "
                f"{DISPATCH_POLICIES}")
        if backend == "process" and model is None:
            raise ServingError("backend='process' needs a model to share")
        self.nodes: list[Node] = list(nodes)
        self.table = table
        self.spec = spec
        self.latency_profile = latency_profile
        self.replicas_per_node = replicas_per_node
        self.dispatch = dispatch
        self.seed = seed
        self.backend = backend
        self.model = model
        self._provisioned = len(self.nodes)

    # -- views ----------------------------------------------------------
    def serving_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.serving]

    def alive_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.alive]

    def count(self, state: str) -> int:
        return sum(1 for n in self.nodes if n.state == state)

    def capacity_qps(self, cost: ProfileCost) -> float:
        """Aggregate throughput of serving nodes at ``cost``'s profile."""
        return sum(n.capacity_qps(cost) for n in self.serving_nodes())

    def runtime_pool(self) -> ReplicaPool:
        """Every serving replica as one runtime dispatch pool.

        The returned pool is the bridge to the event-driven runtime:
        hand it to :class:`~repro.runtime.InferenceRuntime` together
        with ``table.controller(slo)`` and the fleet serves individual
        requests under the same dispatch policies the window model
        abstracts.
        """
        replicas = [r for node in self.serving_nodes() for r in node.pool]
        if not replicas:
            raise ServingError("no serving nodes in the fleet")
        return ReplicaPool(replicas, dispatch=self.dispatch, seed=self.seed)

    # -- elasticity -----------------------------------------------------
    def provision(self, count: int, ready_at: int) -> list[Node]:
        """Order ``count`` new nodes that boot at window ``ready_at``."""
        if self.spec is None or self.latency_profile is None \
                or self.replicas_per_node is None:
            raise ServingError(
                "fleet cannot provision without spec, latency_profile "
                "and replicas_per_node")
        added = []
        for _ in range(int(count)):
            node = Node(f"n{self._provisioned}", self.spec,
                        self.latency_profile, self.replicas_per_node,
                        state=NODE_BOOTING, ready_at=ready_at,
                        seed=self.seed, backend=self.backend,
                        model=self.model)
            self._provisioned += 1
            self.nodes.append(node)
            added.append(node)
        return added

    def drain_nodes(self, count: int) -> list[Node]:
        """Drain the ``count`` youngest active nodes (LIFO, deterministic)."""
        drained = []
        for node in reversed(self.serving_nodes()):
            if len(drained) == count:
                break
            node.drain()
            drained.append(node)
        return drained

    def tick(self, window_index: int) -> None:
        """Advance lifecycles: previous window's work completes, booted
        nodes enter rotation, idle drained nodes retire."""
        for node in self.nodes:
            if node.alive and node.in_flight:
                node.complete()
            if node.state == NODE_BOOTING and window_index >= node.ready_at:
                node.boot()
            if node.state == NODE_DRAINING and node.in_flight == 0:
                node.retire()

    # -- the window-level serving model ---------------------------------
    def choose_profile(self, demand_qps: float) -> ProfileCost | None:
        """Most accurate profile whose fleet capacity covers the demand.

        The :class:`~repro.serving.ProfileTableController` rule lifted
        from per-batch cost to fleet throughput: walk the cost-ordered
        table keeping the most expensive candidate that still fits;
        fall back to the cheapest (degraded, possibly overloaded) when
        nothing fits.
        """
        if demand_qps <= 0:
            return None
        chosen = None
        for entry in self.table:
            if demand_qps <= self.capacity_qps(entry) + _EPS:
                chosen = entry
        return chosen if chosen is not None else self.table.cheapest

    def split(self, demand_qps: float, cost: ProfileCost
              ) -> dict[str, float]:
        """Waterfill demand over serving nodes, least-loaded first.

        Each node takes traffic up to its capacity at the chosen
        profile; iteration order is by current in-flight load then node
        id, mirroring the replica pool's least-loaded scoring at node
        granularity.
        """
        nodes = sorted(self.serving_nodes(),
                       key=lambda n: (n.in_flight, n.node_id))
        total = self.capacity_qps(cost)
        shares: dict[str, float] = {}
        remaining = demand_qps
        if total <= 0:
            return shares
        for node in nodes:
            cap = node.capacity_qps(cost)
            take = min(remaining, cap)
            if take > 0:
                shares[node.node_id] = take
                remaining -= take
        return shares

    def serve_window(self, index: int, start: float, window_seconds: float,
                     demand_qps: float) -> WindowRecord:
        """Serve one window of fluid demand; returns its record."""
        active = self.count("active")
        record = WindowRecord(
            index=index, start=start, demand_qps=demand_qps,
            profile=None, accuracy=0.0, utilization=0.0,
            served_qps=0.0, dropped_qps=0.0,
            nodes_active=active,
            nodes_booting=self.count(NODE_BOOTING),
            nodes_draining=self.count(NODE_DRAINING),
            violated=False)
        cost = self.choose_profile(demand_qps)
        if cost is None:
            return record
        capacity = self.capacity_qps(cost)
        served = min(demand_qps, capacity)
        record.profile = cost.label()
        record.accuracy = cost.accuracy
        record.utilization = demand_qps / capacity if capacity > 0 \
            else float("inf")
        record.served_qps = served
        record.dropped_qps = demand_qps - served
        record.violated = record.dropped_qps > _EPS
        for node_id, share in self.split(served, cost).items():
            node = next(n for n in self.nodes if n.node_id == node_id)
            node.assign(round(share * window_seconds))
            record.node_utilization[node_id] = \
                share / max(node.capacity_qps(cost), _EPS)
        if obs.enabled():
            for state in ("active", "booting", "draining"):
                obs.gauge("cluster_nodes", self.count(state), state=state)
            for node_id, value in record.node_utilization.items():
                obs.gauge("cluster_node_utilization", value, node=node_id)
            obs.count("cluster_windows_total",
                      profile=record.profile or "none")
            served_count = round(served * window_seconds)
            demand_count = round(demand_qps * window_seconds)
            obs.count("cluster_requests_total", amount=served_count,
                      result="served")
            if demand_count > served_count:
                obs.count("cluster_requests_total",
                          amount=demand_count - served_count,
                          result="dropped")
            if record.violated:
                obs.count("cluster_slo_violations_total")
        return record
