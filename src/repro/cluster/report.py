"""Deterministic capacity reports: aligned tables plus stable JSON.

A :class:`CapacityReport` bundles the solver's :class:`CapacityPlan`
with any autoscaling :class:`SimulationResult` runs and renders both as
the ``repro sizing`` CLI output — a human-readable set of tables and a
machine-readable JSON document with sorted keys, byte-identical for a
fixed seed and forecast.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..utils.tables import format_table
from .simulate import SimulationResult, summary_table
from .solver import CapacityPlan


@dataclass
class CapacityReport:
    """Everything ``repro sizing`` prints or writes."""

    plan: CapacityPlan
    simulations: list[SimulationResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "simulations": [s.to_dict() for s in self.simulations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    # -- rendering -------------------------------------------------------
    def profile_table(self) -> str:
        return format_table(
            ["profile", "accuracy", "ms/sample", "flops",
             "param bytes", "act bytes/sample"],
            self.plan.table.to_rows(),
            title="Profile costs (SLO-feasible, cheapest first)")

    def elastic_table(self) -> str:
        plan = self.plan
        request = plan.request
        mix = ", ".join(f"{label}x{count}"
                        for label, count in plan.profile_mix().items())
        rows = [
            ["floor profile", plan.floor.label()],
            ["replicas / node", plan.replicas_per_node],
            ["peak nodes", plan.peak_nodes],
            ["node-hours", round(plan.node_hours, 1)],
            ["mean accuracy (planned)", round(plan.mean_accuracy, 4)],
            ["accuracy floor", request.accuracy_floor],
            ["profile mix (windows)", mix],
        ]
        return format_table(["knob", "value"], rows,
                            title="Elastic fleet plan")

    def fixed_table(self) -> str:
        best = self.plan.best_fixed
        rows = []
        for f in self.plan.fixed:
            marker = " <- best fixed" if best is f else ""
            rows.append([
                f.cost.label(), f.cost.accuracy, f.replicas_per_node,
                f.nodes_static, round(f.node_hours, 1),
                ("ok" + marker) if f.feasible else f.reason,
            ])
        return format_table(
            ["profile", "accuracy", "replicas/node", "static nodes",
             "node-hours", "admissible"],
            rows, title="Fixed-rate fleets (same forecast, same knobs)")

    def simulation_table(self) -> str | None:
        if not self.simulations:
            return None
        return summary_table(self.simulations)

    def render(self) -> str:
        plan = self.plan
        request = plan.request
        best = plan.best_fixed
        lines = [
            f"Capacity plan: {request.spec.name} forecast, "
            f"slo p95 {request.latency_slo * 1e3:g}ms, "
            f"floor {request.accuracy_floor:g}, "
            f"headroom {request.headroom:g}, "
            f"spares {request.ha_spares}",
            "",
            self.profile_table(), "",
            self.elastic_table(), "",
            self.fixed_table(),
        ]
        if best is not None:
            saved = best.node_hours - plan.node_hours
            pct = 100.0 * saved / best.node_hours if best.node_hours else 0.0
            lines += ["", f"Elastic saves {saved:.1f} node-hours "
                          f"({pct:.1f}%) vs best fixed fleet "
                          f"(rate {best.cost.label()})."]
        else:
            lines += ["", "No fixed-rate fleet is admissible at this "
                          "SLO and accuracy floor."]
        sims = self.simulation_table()
        if sims is not None:
            lines += ["", "Autoscaling simulation", sims]
        return "\n".join(lines)
