"""Nodes with memory/FLOPs budgets, and the per-profile cost tables.

A :class:`ProfileCost` bundles everything the fleet layer needs to know
about serving one slice profile: calibrated per-sample seconds (from a
:class:`~repro.runtime.replica.LatencyProfile`), expected accuracy,
multiply-adds per request (:func:`~repro.metrics.flops.measured_flops`),
and the memory footprint (:func:`~repro.metrics.flops.memory_of_profile`).
A :class:`CostTable` orders those entries cheapest-first — the same
ordering :class:`~repro.serving.ProfileTableController` degrades
through — and can build that controller directly for the discrete
runtime path.

A :class:`Node` is one machine: a memory budget that bounds how many
replicas it hosts, a FLOPs/second budget that caps its aggregate
throughput, and a :class:`~repro.runtime.pool.ReplicaPool` of calibrated
:class:`~repro.runtime.replica.Replica` objects so the fleet reuses the
runtime's dispatch abstractions rather than reinventing them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ServingError
from ..runtime.pool import ReplicaPool
from ..runtime.replica import LatencyProfile, Replica
from ..serving.controller import ProfileTableController
from ..slicing.profile import as_profile

# Node lifecycle states.
NODE_BOOTING = "booting"    # provisioned, not yet serving
NODE_ACTIVE = "active"      # in rotation, taking new traffic
NODE_DRAINING = "draining"  # no new traffic; finishing in-flight work
NODE_RETIRED = "retired"    # gone; no longer billed

GiB = float(1 << 30)


@dataclass(frozen=True)
class ProfileCost:
    """Serving costs of one slice profile (uniform rate or per-layer)."""

    profile: object            # SliceProfile (floats coerce on build)
    per_sample_s: float        # calibrated service seconds per request
    accuracy: float            # expected accuracy when serving at it
    flops: float               # multiply-adds per request
    param_bytes: float         # resident weight bytes (deployed alone)
    activation_bytes: float    # peak activation bytes per request
    kv_bytes_per_session: float = 0.0  # per-resident-session KV cache

    def __post_init__(self):
        if self.per_sample_s <= 0:
            raise ServingError("per_sample_s must be positive")
        if self.flops <= 0 or self.param_bytes <= 0:
            raise ServingError("flops and param_bytes must be positive")
        if self.kv_bytes_per_session < 0:
            raise ServingError("kv_bytes_per_session must be >= 0")

    def fingerprint(self) -> str:
        return as_profile(self.profile).fingerprint()

    def label(self) -> str:
        profile = as_profile(self.profile)
        return f"{float(profile):g}" if profile.uniform \
            else profile.fingerprint()

    def replica_qps(self) -> float:
        """Sustained throughput of one replica pipelining T/2 batches."""
        return 1.0 / self.per_sample_s

    def to_dict(self) -> dict:
        return {
            "profile": self.fingerprint(),
            "per_sample_s": self.per_sample_s,
            "accuracy": self.accuracy,
            "flops": self.flops,
            "param_bytes": self.param_bytes,
            "activation_bytes": self.activation_bytes,
            "kv_bytes_per_session": self.kv_bytes_per_session,
        }


class CostTable:
    """Cost-ordered profile candidates (cheapest first).

    The same ordering :class:`~repro.serving.ProfileTableController`
    uses: the fleet's window-level chooser walks it from cheap to
    expensive keeping the most accurate profile that fits, and the
    autoscaler degrades down it before adding nodes.
    """

    def __init__(self, entries: Sequence[ProfileCost]):
        entries = list(entries)
        if not entries:
            raise ServingError("CostTable needs at least one profile")
        self.entries = sorted(
            entries, key=lambda e: (e.per_sample_s,
                                    float(as_profile(e.profile)),
                                    e.fingerprint()))
        fingerprints = [e.fingerprint() for e in self.entries]
        if len(set(fingerprints)) != len(fingerprints):
            raise ServingError(f"duplicate profiles: {fingerprints}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def cheapest(self) -> ProfileCost:
        return self.entries[0]

    @property
    def widest(self) -> ProfileCost:
        return self.entries[-1]

    def get(self, profile) -> ProfileCost:
        fingerprint = as_profile(profile).fingerprint()
        for entry in self.entries:
            if entry.fingerprint() == fingerprint:
                return entry
        raise ServingError(f"no profile {fingerprint!r} in table")

    def feasible(self, latency_slo: float) -> "CostTable":
        """Entries able to serve a single request inside the T/2 window."""
        fits = [e for e in self.entries
                if e.per_sample_s <= latency_slo / 2.0]
        if not fits:
            raise ServingError(
                f"no profile serves one request within slo/2 = "
                f"{latency_slo / 2.0:g}s")
        return CostTable(fits)

    def floor_entry(self, accuracy_floor: float) -> ProfileCost:
        """The cheapest profile whose accuracy clears ``accuracy_floor``."""
        for entry in self.entries:
            if entry.accuracy >= accuracy_floor:
                return entry
        raise ServingError(
            f"no profile reaches accuracy floor {accuracy_floor:g}; "
            f"best is {self.widest.accuracy:g}")

    def controller(self, latency_slo: float) -> ProfileTableController:
        """A :class:`ProfileTableController` over this table's costs."""
        return ProfileTableController(
            {e.profile: e.per_sample_s for e in self.entries}, latency_slo)

    def accuracy_of_rate(self) -> dict:
        """``{profile: accuracy}`` in the runtime engine's expected form."""
        return {as_profile(e.profile): e.accuracy for e in self.entries}

    # -- cascade costing -----------------------------------------------
    def cascade_controller(self, latency_slo: float,
                           stage_profiles: Sequence | None = None,
                           reach_fractions: Sequence[float] | None = None):
        """A :class:`~repro.serving.CascadeController` over these costs.

        ``stage_profiles`` picks the cascade rungs (defaults to every
        entry, cheapest first); ``reach_fractions`` are the fraction of
        requests expected to reach each rung (worst case 1.0), which the
        runtime's measured escalation counters exist to calibrate.
        """
        from ..serving.controller import CascadeController

        if stage_profiles is None:
            stages = list(self.entries)
        else:
            stages = [self.get(profile) for profile in stage_profiles]
        return CascadeController(
            [e.profile for e in stages],
            {e.profile: e.per_sample_s for e in stages},
            latency_slo, reach_fractions=reach_fractions)

    def cascade_summary(self, stage_profiles: Sequence | None = None,
                        reach_fractions: Sequence[float] | None = None,
                        incremental_fractions: Sequence[float] | None = None
                        ) -> dict:
        """Planning-time expectations for a cascade over these entries.

        ``reach_fractions[k]`` is the fraction of requests reaching
        stage ``k`` (``[1.0, ...]`` worst case); the *exit* fraction of
        each stage follows.  ``incremental_fractions[k]`` optionally
        discounts escalated stages to the fraction of from-scratch
        multiply-adds an incremental
        :meth:`~repro.slicing.resume.ResumablePlan.widen` actually
        spends there (1.0 = recompute baseline).  Returns expected
        per-sample seconds, FLOPs and blended accuracy — the cluster
        planner's cascade analogue of a single :class:`ProfileCost` row.
        """
        if stage_profiles is None:
            stages = list(self.entries)
        else:
            stages = [self.get(profile) for profile in stage_profiles]
        if len(stages) < 2:
            raise ServingError("a cascade needs at least two stages")
        count = len(stages)
        reach = [1.0] * count if reach_fractions is None \
            else [float(f) for f in reach_fractions]
        inc = [1.0] * count if incremental_fractions is None \
            else [float(f) for f in incremental_fractions]
        if len(reach) != count or len(inc) != count:
            raise ServingError(
                f"expected {count} reach/incremental fractions")
        # Fraction exiting at stage k = reach_k - reach_{k+1}.
        exits = [reach[k] - (reach[k + 1] if k + 1 < count else 0.0)
                 for k in range(count)]
        if any(e < -1e-12 for e in exits):
            raise ServingError("reach fractions must be non-increasing")
        seconds = sum(r * e.per_sample_s * f
                      for r, e, f in zip(reach, stages, inc))
        flops = sum(r * e.flops * f for r, e, f in zip(reach, stages, inc))
        accuracy = sum(x * e.accuracy for x, e in zip(exits, stages))
        return {
            "stages": [e.label() for e in stages],
            "reach_fractions": reach,
            "exit_fractions": exits,
            "per_sample_s": seconds,
            "flops": flops,
            "expected_accuracy": accuracy,
        }

    def to_rows(self) -> list[list]:
        return [[e.label(), e.accuracy, e.per_sample_s * 1e3, e.flops,
                 e.param_bytes, e.activation_bytes] for e in self.entries]

    def to_dict(self) -> dict:
        return {"entries": [e.to_dict() for e in self.entries]}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_model(cls, model, input_shape: tuple[int, ...],
                   accuracy_of_rate: Mapping,
                   latency_profile: LatencyProfile,
                   input_builder=None) -> "CostTable":
        """Measure FLOPs and memory per profile; costs from the latency
        profile (analytic ``t * r**2`` unless calibrated per rate)."""
        from ..metrics.flops import measured_flops, memory_of_profile

        entries = []
        for rate, accuracy in accuracy_of_rate.items():
            profile = as_profile(rate)
            memory = memory_of_profile(model, input_shape, rate=profile,
                                       input_builder=input_builder)
            entries.append(ProfileCost(
                profile=profile,
                per_sample_s=latency_profile.per_sample(profile),
                accuracy=float(accuracy),
                flops=float(measured_flops(model, input_shape, rate=profile,
                                           input_builder=input_builder)),
                param_bytes=float(memory["param_bytes"]),
                activation_bytes=float(memory["peak_activation_bytes"])
                / max(memory["batch"], 1),
                kv_bytes_per_session=float(
                    memory.get("kv_cache_bytes_per_session", 0)),
            ))
        return cls(entries)


@dataclass(frozen=True)
class NodeSpec:
    """A machine shape: how much a node can hold and how fast it is."""

    memory_bytes: float = 16 * GiB
    flops_per_sec: float = 5e9
    max_replicas: int = 8
    serving_batch: int = 32   # per-replica batch the footprint plans for
    sessions_per_replica: int = 0  # resident decoding sessions budgeted

    def __post_init__(self):
        if self.memory_bytes <= 0 or self.flops_per_sec <= 0:
            raise ServingError("node budgets must be positive")
        if self.max_replicas < 1 or self.serving_batch < 1:
            raise ServingError(
                "max_replicas and serving_batch must be >= 1")
        if self.sessions_per_replica < 0:
            raise ServingError("sessions_per_replica must be >= 0")

    def replica_footprint(self, cost: ProfileCost,
                          resident: ProfileCost | None = None) -> float:
        """Bytes one replica needs: resident weights + a serving batch.

        ``resident`` names the profile whose *weights* stay loaded —
        for an elastic replica that slices one full model this is the
        widest entry; a fixed-rate replica deploys only its own prefix.
        Stateful decoder profiles additionally hold one KV cache per
        budgeted resident session (``sessions_per_replica``), priced at
        the *serving* profile's rate — narrow profiles cache fewer
        heads, so they admit more sessions in the same memory.
        """
        weights = (resident or cost).param_bytes
        return weights + cost.activation_bytes * self.serving_batch \
            + cost.kv_bytes_per_session * self.sessions_per_replica

    def max_sessions(self, cost: ProfileCost,
                     resident: ProfileCost | None = None) -> float:
        """Resident sessions one replica's leftover memory admits.

        The KV-residency ceiling at this profile: memory left after the
        weights and serving batch, divided by the per-session cache.
        ``inf`` for stateless profiles (no KV cache).
        """
        if cost.kv_bytes_per_session <= 0:
            return float("inf")
        weights = (resident or cost).param_bytes
        free = self.memory_bytes - weights \
            - cost.activation_bytes * self.serving_batch
        return max(0.0, free // cost.kv_bytes_per_session)

    def replicas_for(self, cost: ProfileCost,
                     resident: ProfileCost | None = None) -> int:
        """Replicas the memory budget admits (capped at ``max_replicas``)."""
        fit = int(self.memory_bytes // self.replica_footprint(cost, resident))
        if fit < 1:
            raise ServingError(
                f"node memory {self.memory_bytes:.3g}B cannot hold one "
                f"replica ({self.replica_footprint(cost, resident):.3g}B)")
        return min(fit, self.max_replicas)

    def capacity_qps(self, cost: ProfileCost, replicas: int) -> float:
        """Node throughput at a profile: replica- or FLOPs-bound."""
        if replicas < 1:
            raise ServingError("replicas must be >= 1")
        return min(replicas * cost.replica_qps(),
                   self.flops_per_sec / cost.flops)

    def to_dict(self) -> dict:
        return {
            "memory_bytes": self.memory_bytes,
            "flops_per_sec": self.flops_per_sec,
            "max_replicas": self.max_replicas,
            "serving_batch": self.serving_batch,
            "sessions_per_replica": self.sessions_per_replica,
        }


_node_ids = itertools.count()


class Node:
    """One machine in the fleet, hosting a pool of calibrated replicas."""

    def __init__(self, node_id: str, spec: NodeSpec,
                 latency_profile: LatencyProfile, replicas: int,
                 state: str = NODE_ACTIVE, ready_at: int = 0,
                 model=None, seed: int = 0, backend: str = "thread",
                 pool_kwargs: Mapping | None = None):
        if replicas < 1:
            raise ServingError("a node hosts at least one replica")
        if replicas > spec.max_replicas:
            raise ServingError(
                f"{replicas} replicas exceed the node cap "
                f"{spec.max_replicas}")
        self.node_id = str(node_id)
        self.spec = spec
        self.replicas = replicas
        self.state = state
        self.ready_at = ready_at        # window index the node boots at
        self.in_flight = 0              # requests assigned, not yet done
        self.backend = backend
        if backend == "process":
            # Simulated replica counts map to real worker processes
            # over one shared-memory arena per node.
            from ..runtime.workers import ProcessReplicaPool

            if model is None:
                raise ServingError(
                    "backend='process' needs a model to share")
            self.pool = ProcessReplicaPool(
                model, replicas, latency_profile, seed=seed,
                name_prefix=f"{self.node_id}/", **dict(pool_kwargs or {}))
        elif backend == "thread":
            self.pool = ReplicaPool(
                [Replica(f"{self.node_id}/r{i}", latency_profile,
                         model=model)
                 for i in range(replicas)],
                seed=seed)
        else:
            raise ServingError(
                f"unknown node backend {backend!r}; choose from "
                f"('thread', 'process')")

    def __repr__(self) -> str:
        return (f"Node({self.node_id!r}, {self.state}, "
                f"replicas={self.replicas})")

    # -- lifecycle ------------------------------------------------------
    @property
    def serving(self) -> bool:
        """Taking new traffic this window."""
        return self.state == NODE_ACTIVE

    @property
    def alive(self) -> bool:
        """Provisioned and billed (anything but retired)."""
        return self.state != NODE_RETIRED

    def boot(self) -> None:
        if self.state != NODE_BOOTING:
            raise ServingError(f"{self.node_id} is not booting")
        self.state = NODE_ACTIVE

    def drain(self) -> None:
        """Stop accepting traffic; in-flight work keeps running."""
        if self.state != NODE_ACTIVE:
            raise ServingError(f"can only drain an active node, "
                               f"{self.node_id} is {self.state}")
        self.state = NODE_DRAINING

    def retire(self) -> None:
        """Release the machine — only once nothing is in flight.

        Process-backed nodes stop their worker processes and unlink the
        shared-memory arena (the pool's ``shutdown`` is a no-op for the
        in-process backend).
        """
        if self.in_flight > 0:
            raise ServingError(
                f"{self.node_id} still has {self.in_flight} requests "
                "in flight; drain must never evict them")
        self.state = NODE_RETIRED
        self.pool.shutdown()

    # -- capacity -------------------------------------------------------
    def capacity_qps(self, cost: ProfileCost) -> float:
        return self.spec.capacity_qps(cost, self.replicas)

    def assign(self, requests: int) -> None:
        if not self.serving:
            raise ServingError(
                f"cannot assign new work to {self.state} node "
                f"{self.node_id}")
        self.in_flight += int(requests)

    def complete(self, requests: int | None = None) -> None:
        done = self.in_flight if requests is None else int(requests)
        if done > self.in_flight:
            raise ServingError("completing more requests than in flight")
        self.in_flight -= done


def fresh_node_id() -> str:
    """Process-unique default node id (``n0``, ``n1``, ...)."""
    return f"n{next(_node_ids)}"
