"""Window-level autoscaling simulation over a traffic scenario.

The simulator advances a :class:`~repro.cluster.fleet.Fleet` one window
at a time: lifecycles tick (boots land, drained nodes retire), the
window's sampled demand is served through the cost-ordered profile
table, then the :class:`~repro.cluster.autoscaler.Autoscaler` reacts.
Demand is a seeded Poisson draw per window around the scenario's
*realized* intensity, so a run is a pure function of its inputs — the
same seed yields a byte-identical :meth:`SimulationResult.to_json`.

Node-hours are billed for every *alive* window (booting and draining
nodes included): that is what a cloud bill charges, and it is the
quantity the elastic-vs-fixed benchmark compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import json

from ..errors import ServingError
from ..utils.tables import format_table
from .autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from .fleet import Fleet, WindowRecord
from .node import NODE_ACTIVE, CostTable, Node, NodeSpec
from .traffic import TrafficSpec


@dataclass(frozen=True)
class SimulationConfig:
    """How a scenario is run."""

    window_seconds: float = 300.0
    latency_slo: float = 0.1      # seconds, end-to-end (batches every T/2)
    seed: int = 0
    sample: bool = True           # Poisson-sample demand (False: use means)

    def __post_init__(self):
        if self.window_seconds <= 0 or self.latency_slo <= 0:
            raise ServingError(
                "window_seconds and latency_slo must be positive")

    def to_dict(self) -> dict:
        return {"window_seconds": self.window_seconds,
                "latency_slo": self.latency_slo,
                "seed": self.seed, "sample": self.sample}


@dataclass
class SimulationResult:
    """One fleet's run over one scenario, with the billing summary."""

    label: str
    scenario: str
    config: SimulationConfig
    records: list[WindowRecord]
    events: list[ScaleEvent]
    node_hours: float
    peak_nodes: int
    total_requests: int
    served_requests: int
    dropped_requests: int
    violated_windows: int
    mean_accuracy: float          # request-weighted over served traffic
    profile_windows: dict[str, int] = field(default_factory=dict)

    @property
    def slo_attainment(self) -> float:
        """Fraction of requests served inside the SLO."""
        if self.total_requests == 0:
            return 1.0
        return self.served_requests / self.total_requests

    @property
    def meets_slo(self) -> bool:
        """True when every request of the run was served in time."""
        return self.dropped_requests == 0

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "scenario": self.scenario,
            "config": self.config.to_dict(),
            "node_hours": round(self.node_hours, 6),
            "peak_nodes": self.peak_nodes,
            "total_requests": self.total_requests,
            "served_requests": self.served_requests,
            "dropped_requests": self.dropped_requests,
            "violated_windows": self.violated_windows,
            "slo_attainment": round(self.slo_attainment, 6),
            "meets_slo": self.meets_slo,
            "mean_accuracy": round(self.mean_accuracy, 6),
            "profile_windows": dict(sorted(self.profile_windows.items())),
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1)

    def summary_row(self) -> list:
        return [self.label, round(self.node_hours, 1), self.peak_nodes,
                self.violated_windows, round(self.slo_attainment, 4),
                round(self.mean_accuracy, 4)]


def summary_table(results: list[SimulationResult]) -> str:
    """Compare several runs of one scenario side by side."""
    return format_table(
        ["fleet", "node-hours", "peak nodes", "violated windows",
         "slo attainment", "mean accuracy"],
        [r.summary_row() for r in results])


def simulate_autoscaling(spec: TrafficSpec, table: CostTable,
                         node_spec: NodeSpec, config: SimulationConfig,
                         autoscaler_config: AutoscalerConfig,
                         replicas_per_node: int,
                         schedule=None, initial_nodes: int | None = None,
                         label: str = "elastic", static: bool = False,
                         planning_cost=None) -> SimulationResult:
    """Run one fleet policy over one scenario.

    ``table`` defines what the fleet can degrade through — a
    single-entry table is a fixed-rate fleet.  ``schedule`` (nodes per
    window, from the solver) makes scaling predictive; without it the
    autoscaler is purely reactive.  ``static=True`` disables scaling
    entirely: the fleet holds ``initial_nodes`` for the whole run (the
    peak-provisioned baseline).
    """
    serving = table.feasible(config.latency_slo)
    windows = spec.window_count(config.window_seconds)
    rng = np.random.default_rng(config.seed)
    demand = spec.sample_windows(config.window_seconds, rng) \
        if config.sample else spec.realized_windows(config.window_seconds)

    planning = planning_cost if planning_cost is not None \
        else serving.widest
    scaler = Autoscaler(autoscaler_config, node_spec,
                        planning_cost=planning,
                        replicas_per_node=replicas_per_node,
                        schedule=schedule)
    if initial_nodes is None:
        if schedule is not None:
            initial_nodes = int(schedule[0])
        else:
            initial_nodes = scaler.reactive_desired(float(spec.forecast(
                0.5 * config.window_seconds)))
    initial_nodes = max(int(initial_nodes), autoscaler_config.min_nodes)

    latency_profile = _latency_profile_of(table)
    nodes = [Node(f"n{i}", node_spec, latency_profile, replicas_per_node,
                  state=NODE_ACTIVE, seed=config.seed)
             for i in range(initial_nodes)]
    fleet = Fleet(nodes, serving, spec=node_spec,
                  latency_profile=latency_profile,
                  replicas_per_node=replicas_per_node, seed=config.seed)

    records: list[WindowRecord] = []
    node_hours = 0.0
    peak_nodes = 0
    served_requests = 0
    total_requests = 0
    accuracy_weight = 0.0
    profile_windows: dict[str, int] = {}
    for w in range(windows):
        fleet.tick(w)
        alive = len(fleet.alive_nodes())
        peak_nodes = max(peak_nodes, alive)
        node_hours += alive * config.window_seconds / 3600.0
        record = fleet.serve_window(w, w * config.window_seconds,
                                    config.window_seconds, float(demand[w]))
        records.append(record)
        requests = round(record.demand_qps * config.window_seconds)
        served = round(record.served_qps * config.window_seconds)
        total_requests += requests
        served_requests += served
        accuracy_weight += served * record.accuracy
        if record.profile is not None:
            profile_windows[record.profile] = \
                profile_windows.get(record.profile, 0) + 1
        if not static:
            scaler.step(w, float(demand[w]), record.violated, fleet)
    fleet.tick(windows)  # final completions so drained nodes retire

    return SimulationResult(
        label=label, scenario=spec.name, config=config,
        records=records, events=list(scaler.events),
        node_hours=node_hours, peak_nodes=peak_nodes,
        total_requests=total_requests, served_requests=served_requests,
        dropped_requests=total_requests - served_requests,
        violated_windows=sum(1 for r in records if r.violated),
        mean_accuracy=accuracy_weight / served_requests
        if served_requests else serving.widest.accuracy,
        profile_windows=profile_windows)


def _latency_profile_of(table: CostTable):
    """Reconstruct a LatencyProfile consistent with the table's costs."""
    from ..runtime.replica import LatencyProfile
    from ..slicing.profile import as_profile

    widest = table.widest
    per_rate = {as_profile(e.profile): e.per_sample_s for e in table}
    return LatencyProfile(full_per_sample=widest.per_sample_s,
                          per_rate=per_rate)
