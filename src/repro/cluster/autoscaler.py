"""The autoscaler: add nodes, drain nodes, or degrade through profiles.

Scaling follows a *planning profile* — the cheapest table entry whose
accuracy clears the floor: the autoscaler provisions enough capacity to
serve forecastable demand at that profile, and lets the fleet's
cost-ordered degradation (the
:class:`~repro.serving.ProfileTableController` rule) absorb everything
faster than a node boot: sampling noise, forecast error, flash crowds.
That substitution — degradation headroom instead of capacity headroom —
is the paper's elasticity argument at fleet granularity.

Two sources feed the desired node count:

* a **schedule** (from :func:`repro.cluster.solver.plan_capacity`),
  followed with ``boot_windows`` of lead time so capacity lands when
  the forecast needs it;
* the **reactive** rule ``ceil(demand / (node_capacity *
  target_utilization))`` when no schedule is given, plus an emergency
  scale-up whenever a window violated the SLO (which bypasses the
  up-cooldown).

Scale-down drains the youngest nodes only after ``scale_down_patience``
consecutive low windows; a draining node takes no new traffic and is
retired only once its in-flight requests complete — never evicted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .. import obs
from ..errors import ServingError
from .fleet import Fleet
from .node import NodeSpec, ProfileCost


@dataclass(frozen=True)
class AutoscalerConfig:
    """Tunables of the scaling policy."""

    target_utilization: float = 0.7
    boot_windows: int = 2            # provision-to-serving delay
    up_cooldown: int = 1             # windows between ordinary scale-ups
    scale_down_patience: int = 2     # consecutive low windows before drain
    min_nodes: int = 1
    max_nodes: int = 4096

    def __post_init__(self):
        if not 0.0 < self.target_utilization <= 1.0:
            raise ServingError("target_utilization must be in (0, 1]")
        if self.boot_windows < 0 or self.up_cooldown < 0:
            raise ServingError("delays must be >= 0")
        if self.scale_down_patience < 1:
            raise ServingError("scale_down_patience must be >= 1")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ServingError("need 1 <= min_nodes <= max_nodes")


@dataclass
class ScaleEvent:
    """One autoscaling decision, for the report and the trace."""

    window: int
    action: str        # "scale-up" | "drain"
    count: int
    reason: str        # "schedule" | "demand" | "slo-violation"
    nodes_after: int   # alive nodes once the action lands

    def to_dict(self) -> dict:
        return {"window": self.window, "action": self.action,
                "count": self.count, "reason": self.reason,
                "nodes_after": self.nodes_after}


class Autoscaler:
    """Scale a :class:`~repro.cluster.fleet.Fleet` window by window."""

    def __init__(self, config: AutoscalerConfig, node_spec: NodeSpec,
                 planning_cost: ProfileCost, replicas_per_node: int,
                 schedule: Sequence[int] | None = None):
        self.config = config
        self.node_spec = node_spec
        self.planning_cost = planning_cost
        self.replicas_per_node = replicas_per_node
        self.schedule = None if schedule is None \
            else [int(n) for n in schedule]
        self.events: list[ScaleEvent] = []
        self._last_up = -10**9
        self._low_streak = 0

    # -- targets --------------------------------------------------------
    def node_capacity(self) -> float:
        """One node's throughput at the planning profile."""
        return self.node_spec.capacity_qps(self.planning_cost,
                                           self.replicas_per_node)

    def reactive_desired(self, demand_qps: float) -> int:
        """Nodes to hold ``demand_qps`` at the target utilization."""
        capacity = self.node_capacity() * self.config.target_utilization
        desired = math.ceil(demand_qps / capacity) if demand_qps > 0 else 0
        return min(max(desired, self.config.min_nodes),
                   self.config.max_nodes)

    def desired(self, window: int, demand_qps: float) -> tuple[int, str]:
        """``(nodes, reason)`` for this window's target."""
        if self.schedule is not None:
            # Look ahead one boot delay so scheduled capacity is serving
            # by the window the plan needs it.
            ahead = min(window + self.config.boot_windows,
                        len(self.schedule) - 1)
            target = min(max(self.schedule[ahead], self.config.min_nodes),
                         self.config.max_nodes)
            return target, "schedule"
        return self.reactive_desired(demand_qps), "demand"

    # -- the per-window decision ----------------------------------------
    def step(self, window: int, demand_qps: float, violated: bool,
             fleet: Fleet) -> list[ScaleEvent]:
        """Observe one served window and adjust the fleet."""
        target, reason = self.desired(window, demand_qps)
        alive = fleet.count("active") + fleet.count("booting")
        events: list[ScaleEvent] = []

        if violated:
            # Degradation was not enough: force capacity out now, past
            # any cooldown.  (It still takes boot_windows to arrive;
            # degradation carries the fleet meanwhile.)
            target = max(target, alive + 1)
            reason = "slo-violation"

        if target > alive:
            off_cooldown = (window - self._last_up
                            >= self.config.up_cooldown)
            if violated or off_cooldown:
                count = min(target, self.config.max_nodes) - alive
                fleet.provision(count,
                                ready_at=window + self.config.boot_windows)
                self._last_up = window
                events.append(ScaleEvent(
                    window=window, action="scale-up", count=count,
                    reason=reason,
                    nodes_after=alive + count))
            self._low_streak = 0
        elif target < fleet.count("active"):
            self._low_streak += 1
            if self._low_streak >= self.config.scale_down_patience:
                excess = fleet.count("active") - target
                drained = fleet.drain_nodes(excess)
                self._low_streak = 0
                if drained:
                    events.append(ScaleEvent(
                        window=window, action="drain", count=len(drained),
                        reason=reason,
                        nodes_after=alive - len(drained)))
        else:
            self._low_streak = 0

        if obs.enabled():
            for event in events:
                obs.count("cluster_autoscale_events_total",
                          action=event.action)
                obs.event("cluster.autoscale", at=float(window),
                          action=event.action, count=event.count,
                          reason=event.reason,
                          nodes_after=event.nodes_after)
        self.events.extend(events)
        return events
