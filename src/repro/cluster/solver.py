"""Analytic capacity solver: forecast + SLO + knobs -> a fleet plan.

Given a traffic forecast, a latency SLO, an accuracy floor and the
operational knobs (headroom, HA spares), the solver sizes an *elastic*
fleet — every node hosts the full sliceable model and degrades through
the cost-ordered table — against one *fixed-rate* fleet per profile:

* **Fixed fleets** deploy a single materialized subnet per replica, so
  a node fits more replicas of a narrow model but can never trade
  accuracy for throughput.  A fixed fleet is admissible only when its
  profile both meets the SLO (``per_sample <= T/2``) and clears the
  accuracy floor outright.
* The **elastic schedule** starts by provisioning every window at the
  *floor profile* (cheapest entry whose accuracy clears the floor) and
  then greedily shaves the tallest windows: remove one node from the
  currently most expensive window as long as (a) the cheapest profile
  still covers that window's demand — nothing is dropped, only
  degraded — and (b) the forecast-weighted mean accuracy stays at or
  above the floor.  Off-peak windows serve *above* the floor (spare
  capacity widens the profile), which is exactly the accuracy budget
  the shave spends at peak.  This is the paper's accuracy/cost dial
  applied to the cloud bill.

All arithmetic is deterministic; the plan's :meth:`CapacityPlan.to_dict`
is stable under a fixed forecast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ServingError
from .node import CostTable, NodeSpec, ProfileCost
from .traffic import TrafficSpec

_EPS = 1e-9


@dataclass(frozen=True)
class SizingRequest:
    """What the operator asks the solver for."""

    spec: TrafficSpec
    window_seconds: float = 300.0
    latency_slo: float = 0.1        # seconds, end-to-end p95 target
    accuracy_floor: float = 0.9     # demand-weighted mean must clear this
    headroom: float = 0.15          # capacity margin over the forecast
    ha_spares: int = 1              # always-on spare nodes

    def __post_init__(self):
        if self.latency_slo <= 0:
            raise ServingError("latency_slo must be positive")
        if self.headroom < 0 or self.ha_spares < 0:
            raise ServingError("headroom and ha_spares must be >= 0")

    def to_dict(self) -> dict:
        return {
            "scenario": self.spec.to_dict(),
            "window_seconds": self.window_seconds,
            "latency_slo": self.latency_slo,
            "accuracy_floor": self.accuracy_floor,
            "headroom": self.headroom,
            "ha_spares": self.ha_spares,
        }


@dataclass
class FixedPlan:
    """A single-profile fleet sized for the same forecast."""

    cost: ProfileCost
    feasible: bool
    reason: str                    # "" when feasible
    replicas_per_node: int
    node_capacity_qps: float
    nodes_static: int              # peak-provisioned, incl. spares
    node_hours: float              # predictive schedule, incl. spares
    schedule: np.ndarray = field(repr=False)

    def to_dict(self) -> dict:
        return {
            "profile": self.cost.label(),
            "accuracy": self.cost.accuracy,
            "feasible": self.feasible,
            "reason": self.reason,
            "replicas_per_node": self.replicas_per_node,
            "node_capacity_qps": round(self.node_capacity_qps, 3),
            "nodes_static": self.nodes_static,
            "node_hours": round(self.node_hours, 6),
        }


@dataclass
class CapacityPlan:
    """The solver's answer: elastic schedule plus fixed-fleet baselines."""

    request: SizingRequest
    node_spec: NodeSpec
    table: CostTable               # SLO-feasible entries only
    floor: ProfileCost
    replicas_per_node: int         # elastic replica mix per node
    schedule: np.ndarray           # nodes per window, incl. spares
    profile_per_window: list[str]
    mean_accuracy: float           # forecast-weighted, planned
    peak_nodes: int
    node_hours: float
    fixed: list[FixedPlan]

    @property
    def best_fixed(self) -> FixedPlan | None:
        """The admissible fixed fleet with the fewest node-hours."""
        feasible = [f for f in self.fixed if f.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda f: (f.node_hours, f.nodes_static))

    def profile_mix(self) -> dict[str, int]:
        mix: dict[str, int] = {}
        for label in self.profile_per_window:
            mix[label] = mix.get(label, 0) + 1
        return dict(sorted(mix.items()))

    def to_dict(self) -> dict:
        best = self.best_fixed
        return {
            "request": self.request.to_dict(),
            "node_spec": self.node_spec.to_dict(),
            "table": self.table.to_dict(),
            "elastic": {
                "floor_profile": self.floor.label(),
                "replicas_per_node": self.replicas_per_node,
                "peak_nodes": self.peak_nodes,
                "node_hours": round(self.node_hours, 6),
                "mean_accuracy": round(self.mean_accuracy, 6),
                "profile_mix": self.profile_mix(),
                "schedule": [int(n) for n in self.schedule],
            },
            "fixed": [f.to_dict() for f in self.fixed],
            "best_fixed": best.cost.label() if best else None,
            "savings_node_hours": round(best.node_hours - self.node_hours, 6)
            if best else None,
            "savings_nodes_peak": best.nodes_static - self.peak_nodes
            if best else None,
        }


def plan_capacity(request: SizingRequest, table: CostTable,
                  node_spec: NodeSpec) -> CapacityPlan:
    """Solve the sizing problem for an elastic and all fixed fleets."""
    serving = table.feasible(request.latency_slo)
    floor = serving.floor_entry(request.accuracy_floor)
    demand = request.spec.forecast_windows(request.window_seconds) \
        * (1.0 + request.headroom)

    # Elastic replicas: every replica keeps the widest weights resident.
    replicas = node_spec.replicas_for(serving.widest,
                                     resident=serving.widest)
    capacity = {e.fingerprint(): node_spec.capacity_qps(e, replicas)
                for e in serving}

    def best_entry(qps: float, nodes: int) -> ProfileCost:
        """Most accurate profile ``nodes`` nodes can serve ``qps`` at."""
        chosen = serving.cheapest
        for entry in serving:
            if qps <= nodes * capacity[entry.fingerprint()] + _EPS:
                chosen = entry
        return chosen

    floor_cap = capacity[floor.fingerprint()]
    cheap_cap = capacity[serving.cheapest.fingerprint()]
    n = np.array([max(math.ceil(d / floor_cap), 1) for d in demand])
    n_min = np.array([max(math.ceil(d / cheap_cap), 1) for d in demand])

    weights = np.maximum(demand, 0.0)
    total = float(weights.sum())

    def window_accuracy(idx: int, nodes: int) -> float:
        if weights[idx] <= 0:
            return serving.widest.accuracy
        return best_entry(float(demand[idx]), nodes).accuracy

    accuracy = np.array([window_accuracy(i, int(n[i]))
                         for i in range(len(n))])
    if total > 0:
        mean = float((accuracy * weights).sum() / total)
        frozen = np.zeros(len(n), dtype=bool)
        # Greedy peak shave: drop a node from the tallest unfrozen
        # window while the accuracy budget and the cheapest profile's
        # capacity both still hold.
        while True:
            candidates = np.flatnonzero(~frozen & (n > n_min))
            if candidates.size == 0:
                break
            idx = int(candidates[np.argmax(n[candidates])])
            trial = window_accuracy(idx, int(n[idx]) - 1)
            new_mean = mean + (trial - accuracy[idx]) \
                * float(weights[idx]) / total
            if new_mean + _EPS >= request.accuracy_floor:
                n[idx] -= 1
                mean = new_mean
                accuracy[idx] = trial
            else:
                frozen[idx] = True
        mean_accuracy = mean
    else:
        mean_accuracy = serving.widest.accuracy

    schedule = n + request.ha_spares
    profiles = [best_entry(float(demand[i]), int(n[i])).label()
                for i in range(len(n))]
    hours = float(schedule.sum()) * request.window_seconds / 3600.0

    fixed = [_fixed_plan(entry, request, table, node_spec, demand)
             for entry in table]

    return CapacityPlan(
        request=request, node_spec=node_spec, table=serving, floor=floor,
        replicas_per_node=replicas, schedule=schedule,
        profile_per_window=profiles, mean_accuracy=mean_accuracy,
        peak_nodes=int(schedule.max()), node_hours=hours, fixed=fixed)


def _fixed_plan(entry: ProfileCost, request: SizingRequest,
                table: CostTable, node_spec: NodeSpec,
                demand: np.ndarray) -> FixedPlan:
    """Size a single-profile fleet for the same forecast and knobs."""
    reasons = []
    if entry.per_sample_s > request.latency_slo / 2.0:
        reasons.append(
            f"per-sample {entry.per_sample_s * 1e3:.2f}ms exceeds "
            f"slo/2 = {request.latency_slo * 500:.2f}ms")
    if entry.accuracy + _EPS < request.accuracy_floor:
        reasons.append(
            f"accuracy {entry.accuracy:g} below floor "
            f"{request.accuracy_floor:g}")
    # A fixed replica deploys only its own (materialized) subnet.
    replicas = node_spec.replicas_for(entry, resident=entry)
    cap = node_spec.capacity_qps(entry, replicas)
    schedule = np.array([max(math.ceil(d / cap), 1) for d in demand]) \
        + request.ha_spares
    peak = float(demand.max()) if len(demand) else 0.0
    return FixedPlan(
        cost=entry,
        feasible=not reasons,
        reason="; ".join(reasons),
        replicas_per_node=replicas,
        node_capacity_qps=cap,
        nodes_static=max(math.ceil(peak / cap), 1) + request.ha_spares,
        node_hours=float(schedule.sum()) * request.window_seconds / 3600.0,
        schedule=schedule)
