"""Experiment suites reproducing every table and figure of the paper.

Each suite function is deterministic, returns a JSON-serializable dict,
and caches its result on disk (see :class:`~repro.experiments.cache.ExperimentCache`),
because several artifacts share trained models.  The benchmark harness
under ``benchmarks/`` consumes these and prints the paper-style rows.
"""

from .cache import ExperimentCache
from .config import (
    RATE_GRID_4,
    RATE_GRID_8,
    ImageExperimentConfig,
    ServingExperimentConfig,
    TextExperimentConfig,
)
from . import (
    ablation_suite,
    cascade_suite,
    harness,
    nnlm_suite,
    resnet_suite,
    serving_suite,
    vgg_suite,
)

__all__ = [
    "ExperimentCache",
    "ImageExperimentConfig",
    "TextExperimentConfig",
    "ServingExperimentConfig",
    "RATE_GRID_4",
    "RATE_GRID_8",
    "harness",
    "ablation_suite",
    "vgg_suite",
    "resnet_suite",
    "nnlm_suite",
    "cascade_suite",
    "serving_suite",
]
