"""ResNet experiment suite — the series behind Figure 2 and Table 4 rows.

Series produced (all accuracy-vs-FLOPs points on the shared dataset):

* model slicing on two backbones (narrow ResNet and a 2x-wide one, the
  paper's L164 vs L56-2 comparison: slicing works better on wider nets);
* ensemble of fixed-width ResNets (strongest baseline);
* ensemble of varying-depth ResNets (weaker baseline);
* multi-classifier early exit (depth slicing, degrades fast);
* MSDNet-like anytime model with adaptive loss balancing;
* SkipNet-like dynamic routing at several skip penalties.
"""

from __future__ import annotations

import numpy as np

from ..baselines.multi_classifier import MSDNetLike, MultiClassifierResNet
from ..baselines.skipnet import SkipNetLike
from ..metrics import measured_flops
from ..optim import SGD, MultiStepLR
from ..slicing import FixedScheme
from ..tensor import Tensor, cross_entropy, no_grad
from .cache import ExperimentCache, experiment_key
from .config import ImageExperimentConfig
from .harness import (
    accuracy_table,
    build_image_task,
    default_scheme,
    make_resnet,
    predictions_at_rates,
    train_loader_fn,
    train_model,
)


def _input_shape(cfg: ImageExperimentConfig) -> tuple[int, ...]:
    return (1, 3, cfg.image_size, cfg.image_size)


def sliced_resnet_experiment(cfg: ImageExperimentConfig,
                             cache: ExperimentCache,
                             widen: int = 1) -> dict:
    """Model slicing on a ResNet backbone (optionally widened)."""
    key = experiment_key(f"resnet_sliced_w{widen}", cfg)

    def compute() -> dict:
        import dataclasses

        sliced_cfg = dataclasses.replace(cfg, lr=cfg.resnet_sliced_lr)
        splits = build_image_task(sliced_cfg)
        model = make_resnet(sliced_cfg, widen=widen)
        train_model(sliced_cfg, model, default_scheme(sliced_cfg), splits,
                    trainer_seed=100 + widen)
        preds = predictions_at_rates(model, splits["test"].inputs, cfg.rates)
        labels = splits["test"].targets
        flops = {r: measured_flops(model, _input_shape(cfg), r)
                 for r in cfg.rates}
        return {
            "rates": cfg.rates,
            "accuracy": {str(r): a for r, a in
                         accuracy_table(preds, labels).items()},
            "flops": {str(r): int(f) for r, f in flops.items()},
            "predictions": {str(r): p.tolist() for r, p in preds.items()},
            "labels": labels.tolist(),
        }

    return cache.get_or_compute(key, compute)


def fixed_resnet_ensemble_experiment(cfg: ImageExperimentConfig,
                                     cache: ExperimentCache) -> dict:
    """Ensemble of fixed-width ResNets, one per rate.

    Uses the same stabilized member recipe as the VGG ensemble (gentler
    LR, best-of-two seeds for very narrow members) — see
    :mod:`repro.experiments.vgg_suite`.
    """
    import dataclasses

    from .vgg_suite import FIXED_RETRY_BELOW

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        # Fixed ResNet members train well at the base LR (the residual
        # topology is less LR-sensitive than the plain VGG's narrow
        # members); narrow members still get best-of-two seeds.
        member_cfg = dataclasses.replace(cfg)
        out: dict = {"rates": cfg.rates, "accuracy": {}, "flops": {},
                     "predictions": {}, "labels": labels.tolist()}
        for i, rate in enumerate(cfg.rates):
            seeds = [cfg.seed + 110 + i]
            if rate < FIXED_RETRY_BELOW:
                seeds.append(cfg.seed + 210 + i)
            best = None
            for s in seeds:
                model = make_resnet(member_cfg, seed=s)
                train_model(member_cfg, model, FixedScheme(rate), splits,
                            trainer_seed=s + 1)
                train_preds = predictions_at_rates(
                    model, splits["train"].inputs, [rate])
                score = float(
                    (train_preds[rate] == splits["train"].targets).mean())
                if best is None or score > best[0]:
                    best = (score, model)
            model = best[1]
            preds = predictions_at_rates(model, splits["test"].inputs, [rate])
            out["accuracy"][str(rate)] = float((preds[rate] == labels).mean())
            out["predictions"][str(rate)] = preds[rate].tolist()
            out["flops"][str(rate)] = int(
                measured_flops(model, _input_shape(cfg), rate)
            )
        return out

    return cache.get_or_compute(experiment_key("resnet_fixed_ensemble", cfg), compute)


def depth_ensemble_resnet_experiment(cfg: ImageExperimentConfig,
                                     cache: ExperimentCache) -> dict:
    """Ensemble of full-width ResNets of varying depth."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        out: dict = {"members": {}}
        for i, blocks in enumerate((1, 2, 3)):
            model = make_resnet(cfg, seed=cfg.seed + 120 + i, blocks=blocks)
            train_model(cfg, model, FixedScheme(1.0), splits,
                        trainer_seed=120 + i)
            preds = predictions_at_rates(model, splits["test"].inputs, [1.0])
            out["members"][f"blocks-{blocks}"] = {
                "accuracy": float((preds[1.0] == labels).mean()),
                "flops": int(measured_flops(model, _input_shape(cfg), 1.0)),
            }
        return out

    return cache.get_or_compute(experiment_key("resnet_depth_ensemble", cfg), compute)


def multi_classifier_experiment(cfg: ImageExperimentConfig,
                                cache: ExperimentCache,
                                adaptive: bool = False) -> dict:
    """Early-exit baselines: plain multi-classifier and MSDNet-like."""
    key = experiment_key("resnet_msdnet_like" if adaptive else "resnet_multi_classifier", cfg)

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        backbone = make_resnet(cfg, seed=cfg.seed + 130 + int(adaptive))
        cls = MSDNetLike if adaptive else MultiClassifierResNet
        model = cls(backbone, seed=cfg.seed + 130)
        optimizer = SGD(model.parameters(), lr=cfg.lr, momentum=cfg.momentum,
                        weight_decay=cfg.weight_decay)
        schedule = MultiStepLR.cifar_recipe(optimizer, cfg.epochs)
        loader_fn = train_loader_fn(cfg, splits, seed_offset=130)
        for _ in range(cfg.epochs):
            epoch_losses = np.zeros(model.num_exits)
            batches = 0
            model.train()
            for inputs, targets in loader_fn():
                optimizer.zero_grad()
                exits = model(Tensor(inputs))
                loss = model.joint_loss(exits, targets)
                loss.backward()
                optimizer.step()
                for k, logits in enumerate(exits):
                    epoch_losses[k] += cross_entropy(
                        logits.detach(), targets).item()
                batches += 1
            if adaptive and batches:
                model.update_weights(epoch_losses / batches)
            schedule.step()
        # Per-exit accuracy and realized prefix FLOPs.
        model.eval()
        out: dict = {"exits": {}}
        inputs = splits["test"].inputs
        for k in range(model.num_exits):
            preds = []
            with no_grad():
                for start in range(0, len(inputs), cfg.eval_batch_size):
                    logits = model.forward_exit(
                        Tensor(inputs[start:start + cfg.eval_batch_size]), k)
                    preds.append(logits.data.argmax(axis=1))
            predictions = np.concatenate(preds)
            from ..tensor import count_flops
            with no_grad():
                with count_flops() as counter:
                    model.forward_exit(
                        Tensor(inputs[:1].astype(np.float32)), k)
            out["exits"][str(k)] = {
                "accuracy": float((predictions == labels).mean()),
                "flops": int(counter.total),
            }
        return out

    return cache.get_or_compute(key, compute)


def skipnet_experiment(cfg: ImageExperimentConfig,
                       cache: ExperimentCache,
                       penalties=(0.02, 0.1, 0.3)) -> dict:
    """SkipNet-like dynamic routing at several skip penalties."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        out: dict = {"points": {}}
        for i, penalty in enumerate(penalties):
            backbone = make_resnet(cfg, seed=cfg.seed + 140 + i, blocks=3)
            model = SkipNetLike(backbone, skip_penalty=penalty,
                                seed=cfg.seed + 140 + i)
            optimizer = SGD(model.parameters(), lr=cfg.lr,
                            momentum=cfg.momentum,
                            weight_decay=cfg.weight_decay)
            schedule = MultiStepLR.cifar_recipe(optimizer, cfg.epochs)
            loader_fn = train_loader_fn(cfg, splits, seed_offset=140 + i)
            for _ in range(cfg.epochs):
                model.train()
                for inputs, targets in loader_fn():
                    optimizer.zero_grad()
                    loss = model.loss(Tensor(inputs), targets)
                    loss.backward()
                    optimizer.step()
                schedule.step()
            # Hard-gated evaluation: accuracy + realized mean FLOPs.
            model.eval()
            inputs = splits["test"].inputs
            preds = []
            total_flops = 0
            from ..tensor import count_flops
            with no_grad():
                for start in range(0, len(inputs), cfg.eval_batch_size):
                    batch = Tensor(inputs[start:start + cfg.eval_batch_size])
                    with count_flops() as counter:
                        logits, _ = model(batch, hard=True)
                    total_flops += counter.total
                    preds.append(logits.data.argmax(axis=1))
            predictions = np.concatenate(preds)
            out["points"][str(penalty)] = {
                "accuracy": float((predictions == labels).mean()),
                "flops_per_sample": int(total_flops / len(inputs)),
                "execution_fraction": model.execution_fraction(
                    Tensor(inputs[:64])),
            }
        return out

    return cache.get_or_compute(experiment_key("resnet_skipnet", cfg), compute)
