"""Dynamic-workload serving experiment (Sec. 4.1's example application).

Compares three policies on the same 16x-volatile arrival trace under one
latency SLO:

* the paper's elastic controller (slice rate chosen per batch, Eq. 3);
* a fixed full-width policy (sheds load at peak);
* a fixed narrow policy (meets the SLO but wastes accuracy off-peak).

Accuracy per rate comes from the trained sliced VGG's measured accuracy
table, so the reported quality degradation is real, not assumed.
"""

from __future__ import annotations

import numpy as np

from ..serving import (
    AdaptiveSliceRateController,
    FixedRateController,
    SliceRateController,
    diurnal_rate,
    generate_arrivals,
    peak_to_trough,
    simulate_serving,
    spike_rate,
)
from .cache import ExperimentCache, experiment_key
from .config import ImageExperimentConfig, ServingExperimentConfig
from .vgg_suite import sliced_vgg_experiment


def serving_experiment(image_cfg: ImageExperimentConfig,
                       serving_cfg: ServingExperimentConfig,
                       cache: ExperimentCache) -> dict:
    """Run the three policies over the same trace; return the summary."""

    def compute() -> dict:
        sliced = sliced_vgg_experiment(image_cfg, cache)
        accuracy_of_rate = {float(r): a for r, a in sliced["accuracy"].items()}
        rates = sorted(accuracy_of_rate)

        base = diurnal_rate(serving_cfg.base_rate, serving_cfg.peak_ratio,
                            serving_cfg.period)
        intensity = spike_rate(base, [(serving_cfg.spike_start,
                                       serving_cfg.spike_duration,
                                       serving_cfg.spike_factor)])
        arrivals = generate_arrivals(
            intensity, serving_cfg.duration,
            np.random.default_rng(serving_cfg.seed),
        )
        volatility = peak_to_trough(intensity, serving_cfg.duration)

        controllers = {
            "model_slicing": SliceRateController(
                rates, serving_cfg.full_latency_per_sample,
                serving_cfg.latency_slo),
            "fixed_full": FixedRateController(
                1.0, serving_cfg.full_latency_per_sample,
                serving_cfg.latency_slo),
            "fixed_small": FixedRateController(
                min(rates), serving_cfg.full_latency_per_sample,
                serving_cfg.latency_slo),
        }
        out: dict = {
            "volatility": volatility,
            "arrivals": int(len(arrivals)),
            "policies": {},
        }
        window = serving_cfg.latency_slo / 2.0
        for name, controller in controllers.items():
            report = simulate_serving(
                arrivals, controller,
                serving_cfg.full_latency_per_sample,
                serving_cfg.latency_slo, accuracy_of_rate,
                serving_cfg.duration,
            )
            out["policies"][name] = {
                "drop_fraction": report.drop_fraction,
                "slo_violations": report.slo_violations,
                "mean_accuracy": report.mean_accuracy,
                "mean_rate": report.mean_rate,
                "utilization": report.utilization(window),
            }
        return out

    return cache.get_or_compute(
        experiment_key("serving_app", image_cfg, serving_cfg), compute)


def adaptive_serving_experiment(image_cfg: ImageExperimentConfig,
                                serving_cfg: ServingExperimentConfig,
                                cache: ExperimentCache,
                                misestimate: float = 4.0) -> dict:
    """Self-calibrating controller vs. the oracle-latency controller.

    Both run the standard trace, but the adaptive controller starts with
    a latency estimate that is ``misestimate``-times too *optimistic*
    and must converge from observations; the oracle knows the true
    latency from the start.
    """

    def compute() -> dict:
        sliced = sliced_vgg_experiment(image_cfg, cache)
        accuracy_of_rate = {float(r): a for r, a in sliced["accuracy"].items()}
        rates = sorted(accuracy_of_rate)
        base = diurnal_rate(serving_cfg.base_rate, serving_cfg.peak_ratio,
                            serving_cfg.period)
        arrivals = generate_arrivals(
            base, serving_cfg.duration,
            np.random.default_rng(serving_cfg.seed),
        )
        true_latency = serving_cfg.full_latency_per_sample
        adaptive = AdaptiveSliceRateController(
            rates, true_latency / misestimate, serving_cfg.latency_slo,
            smoothing=0.5,
        )

        # Drive the adaptive controller window by window, feeding back
        # the *true* processing time of each batch.
        window = serving_cfg.latency_slo / 2.0
        edges = np.arange(0.0, serving_cfg.duration + window, window)
        counts, _ = np.histogram(arrivals, bins=edges)
        violations = 0
        estimates = []
        for n in counts:
            n = int(n)
            if n == 0:
                continue
            rate = adaptive.choose(n)
            if rate is None:
                continue
            elapsed = n * rate * rate * true_latency
            if elapsed > window + 1e-9:
                violations += 1
            adaptive.observe(n, rate, elapsed)
            estimates.append(adaptive.full_latency)

        oracle = SliceRateController(rates, true_latency,
                                     serving_cfg.latency_slo)
        oracle_report = simulate_serving(
            arrivals, oracle, true_latency, serving_cfg.latency_slo,
            accuracy_of_rate, serving_cfg.duration)
        return {
            "misestimate": misestimate,
            "initial_estimate": true_latency / misestimate,
            "true_latency": true_latency,
            "final_estimate": estimates[-1] if estimates else None,
            "early_violations": violations,
            "oracle_violations": oracle_report.slo_violations,
            "estimate_trajectory": estimates[:50],
        }

    return cache.get_or_compute(
        experiment_key("serving_adaptive", image_cfg, serving_cfg), compute)
