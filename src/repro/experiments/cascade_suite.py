"""Cascade ranking experiment — Table 5.

Pure post-processing of the cached VGG predictions: the cascade's
per-stage precision and aggregate recall only depend on each stage's
predicted labels, which the VGG suite already produced for both the sliced
model's subnets and the independently trained fixed models.
"""

from __future__ import annotations

import numpy as np

from .cache import ExperimentCache, experiment_key
from .config import ImageExperimentConfig
from .vgg_suite import fixed_vgg_ensemble_experiment, sliced_vgg_experiment

#: The six stage widths of the paper's Table 5.
STAGE_RATES = [0.375, 0.5, 0.625, 0.75, 0.875, 1.0]


def _cascade_rows(predictions: dict[str, list[int]], labels: np.ndarray,
                  rates: list[float]) -> list[dict]:
    correct_so_far = np.ones(len(labels), dtype=bool)
    rows = []
    for rate in rates:
        preds = np.asarray(predictions[str(rate)])
        correct = preds == labels
        correct_so_far &= correct
        rows.append({
            "rate": rate,
            "precision": float(correct.mean()),
            "aggregate_recall": float(correct_so_far.mean()),
        })
    return rows


def cascade_experiment(cfg: ImageExperimentConfig,
                       cache: ExperimentCache) -> dict:
    """Six-stage cascade: sliced subnets vs. independent fixed models."""

    def compute() -> dict:
        sliced = sliced_vgg_experiment(cfg, cache)
        fixed = fixed_vgg_ensemble_experiment(cfg, cache)
        labels = np.asarray(sliced["labels"])
        rates = [r for r in STAGE_RATES if str(r) in sliced["predictions"]]
        costs = sliced["costs"]
        rows_sliced = _cascade_rows(sliced["predictions"], labels, rates)
        rows_fixed = _cascade_rows(fixed["predictions"], labels, rates)
        for row in rows_sliced + rows_fixed:
            cost = costs[str(row["rate"])]
            row["flops"] = cost["flops"]
            row["params"] = cost["params"]
        # Deployment cost: the fixed cascade stores every member; the
        # sliced cascade stores one full model.
        total_fixed_params = sum(costs[str(r)]["params"] for r in rates)
        return {
            "rates": rates,
            "model_slicing": rows_sliced,
            "cascade_model": rows_fixed,
            "sliced_total_params": costs[str(max(rates))]["params"],
            "fixed_total_params": total_fixed_params,
        }

    return cache.get_or_compute(experiment_key("cascade_table5", cfg), compute)
