"""Standard experiment configurations.

One source of truth for the CPU-scale experiment protocol.  The paper's
protocol (300 epochs of VGG-13 on CIFAR-10, 100 epochs of ResNet-50 on
ImageNet, ...) is scaled to a single CPU core: the same training scheme,
schedulers and rate grids, applied to mini architectures on the seeded
synthetic datasets (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: The paper's 1/8-granularity rate grid from lb=0.25 to the full net.
RATE_GRID_8 = [0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0]
#: The coarse grid used by Table 1 and the scheduling study.
RATE_GRID_4 = [0.25, 0.5, 0.75, 1.0]


@dataclass
class ImageExperimentConfig:
    """Protocol for the CNN experiments (Tables 1, 4; Figures 2, 3, 5-8)."""

    num_classes: int = 8
    image_size: int = 16
    noise: float = 1.0
    components: int = 6
    data_seed: int = 7
    train_size: int = 1200
    test_size: int = 600
    batch_size: int = 64
    eval_batch_size: int = 256
    epochs: int = 24
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    vgg_width: int = 16
    resnet_blocks: int = 2
    resnet_base_channels: int = 8
    #: Sliced-ResNet training LR.  Gradient averaging across scheduled
    #: subnets shrinks the effective step, and the residual topology
    #: tolerates (and needs) a larger base LR than the plain VGG.
    resnet_sliced_lr: float = 0.15
    rates: list[float] = field(default_factory=lambda: list(RATE_GRID_8))
    coarse_rates: list[float] = field(default_factory=lambda: list(RATE_GRID_4))
    lower_bound: float = 0.25
    seed: int = 0


@dataclass
class TextExperimentConfig:
    """Protocol for the NNLM experiments (Table 2, Figure 4)."""

    vocab_size: int = 150
    num_states: int = 8
    train_tokens: int = 16000
    valid_tokens: int = 3000
    test_tokens: int = 3000
    data_seed: int = 11
    embed_dim: int = 48
    hidden_size: int = 48
    num_layers: int = 2
    dropout: float = 0.2
    batch_size: int = 16
    bptt: int = 20
    epochs: int = 8
    lr: float = 4.0
    grad_clip: float = 0.25
    rates: list[float] = field(default_factory=lambda: list(RATE_GRID_8))
    lower_bound: float = 0.375
    seed: int = 0


@dataclass
class ServingExperimentConfig:
    """Protocol for the dynamic-workload serving study (Sec. 4.1)."""

    latency_slo: float = 0.1
    full_latency_per_sample: float = 0.002
    base_rate: float = 100.0
    peak_ratio: float = 16.0
    period: float = 60.0
    duration: float = 120.0
    spike_start: float = 30.0
    spike_duration: float = 10.0
    spike_factor: float = 2.0
    seed: int = 3
