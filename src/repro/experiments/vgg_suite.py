"""VGG experiment suite.

Backs Table 1 (scheduling schemes), the VGG rows of Table 4, Figure 3
(lower-bound sweep), Figure 5 (accuracy/FLOPs trade-off), Figure 6 (GN
scale telemetry), Figure 7 (learning curves) and the prediction artifacts
behind Figure 8 and Table 5.

Every runner returns a JSON-serializable dict and is cached on disk.
"""

from __future__ import annotations

import numpy as np

from ..baselines.slimming import prune_vgg, sparsity_loss_fn
from ..metrics import cost_table, measured_flops
from ..models import SlicedVGG
from ..optim import SGD
from ..slicing import (
    FixedScheme,
    RandomScheme,
    RandomStaticScheme,
    SliceTrainer,
    StaticScheme,
)
from ..tensor import Tensor, no_grad
from .cache import ExperimentCache, experiment_key
from .config import ImageExperimentConfig
from .harness import (
    accuracy_table,
    build_image_task,
    default_scheme,
    make_vgg,
    predictions_at_rates,
    train_loader_fn,
    train_model,
)


def _input_shape(cfg: ImageExperimentConfig) -> tuple[int, ...]:
    return (1, 3, cfg.image_size, cfg.image_size)


def sliced_vgg_experiment(cfg: ImageExperimentConfig,
                          cache: ExperimentCache) -> dict:
    """Train the reporting sliced VGG; collect all derived telemetry."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        model = make_vgg(cfg)
        gn_layers = model.group_norm_layers()
        # Telemetry targets mirror Figure 6: a mid-depth and a late layer.
        probe_indices = [len(gn_layers) // 2, len(gn_layers) - 1]
        scale_history = {str(i): [] for i in probe_indices}
        curve_rates = [1.0, 0.75, 0.5, 0.375, 0.25]

        def epoch_hook(record, model_):
            for i in probe_indices:
                scale_history[str(i)].append(
                    gn_layers[i].group_scale_means().tolist()
                )

        trainer = train_model(cfg, model, default_scheme(cfg), splits,
                              epoch_hook=epoch_hook, eval_rates=curve_rates)
        preds = predictions_at_rates(model, splits["test"].inputs, cfg.rates)
        labels = splits["test"].targets
        costs = cost_table(model, _input_shape(cfg), cfg.rates)
        return {
            "rates": cfg.rates,
            "accuracy": {str(r): a for r, a in
                         accuracy_table(preds, labels).items()},
            "predictions": {str(r): p.tolist() for r, p in preds.items()},
            "labels": labels.tolist(),
            "costs": {str(r): c for r, c in costs.items()},
            "learning_curve": [
                {
                    "epoch": rec.epoch,
                    "eval_error": {str(r): e for r, e in rec.eval_error.items()},
                    "eval_loss": {str(r): l for r, l in rec.eval_loss.items()},
                    "train_loss": {str(r): l for r, l in rec.train_loss.items()},
                }
                for rec in trainer.history
            ],
            "gn_scale_history": scale_history,
            "gn_probe_indices": probe_indices,
        }

    return cache.get_or_compute(experiment_key("vgg_sliced", cfg), compute)


#: Learning rate for individually trained fixed-width members.  The very
#: narrow members (a handful of channels) diverge at the sliced model's
#: rate, so the ensemble baseline gets the gentler setting — this only
#: *strengthens* the baseline the sliced model is compared against.
FIXED_MEMBER_LR = 0.02
#: Narrow members are seed-sensitive at this scale; members below this
#: rate train twice and keep the better run (selected on training data).
FIXED_RETRY_BELOW = 0.5


def _train_fixed_member(cfg: ImageExperimentConfig, rate: float, splits,
                        seed: int, collect_curve: bool = False):
    """Train one fixed-width member with the stabilized recipe."""
    import dataclasses

    member_cfg = dataclasses.replace(cfg, lr=min(cfg.lr, FIXED_MEMBER_LR))
    seeds = [seed] if rate >= FIXED_RETRY_BELOW else [seed, seed + 100]
    best = None
    for s in seeds:
        model = make_vgg(member_cfg, seed=s)
        trainer = train_model(
            cfg=member_cfg, model=model, scheme=FixedScheme(rate),
            splits=splits, trainer_seed=s + 1,
            epoch_hook=(lambda rec, m: None) if collect_curve else None,
            eval_rates=[1.0] if collect_curve else None,
        )
        train_preds = predictions_at_rates(
            model, splits["train"].inputs, [rate])
        score = float((train_preds[rate] == splits["train"].targets).mean())
        if best is None or score > best[0]:
            best = (score, model, trainer)
    return best[1], best[2]


def fixed_vgg_ensemble_experiment(cfg: ImageExperimentConfig,
                                  cache: ExperimentCache) -> dict:
    """Individually trained fixed-width VGGs, one per rate."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        result: dict = {"rates": cfg.rates, "accuracy": {},
                        "predictions": {}, "labels": labels.tolist(),
                        "learning_curve_full": []}
        for i, rate in enumerate(cfg.rates):
            collect_curve = rate == 1.0
            model, trainer = _train_fixed_member(
                cfg, rate, splits, seed=cfg.seed + 10 + i,
                collect_curve=collect_curve)
            preds = predictions_at_rates(model, splits["test"].inputs, [rate])
            result["accuracy"][str(rate)] = float(
                (preds[rate] == labels).mean()
            )
            result["predictions"][str(rate)] = preds[rate].tolist()
            if collect_curve:
                result["learning_curve_full"] = [
                    {"epoch": rec.epoch,
                     "eval_error": {str(r): e for r, e in rec.eval_error.items()},
                     "eval_loss": {str(r): l for r, l in rec.eval_loss.items()}}
                    for rec in trainer.history
                ]
        return result

    return cache.get_or_compute(experiment_key("vgg_fixed_ensemble", cfg), compute)


def direct_slicing_experiment(cfg: ImageExperimentConfig,
                              cache: ExperimentCache) -> dict:
    """Conventionally trained VGG (lb=1.0) sliced directly at eval time."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        model = make_vgg(cfg, seed=cfg.seed + 5)
        train_model(cfg, model, FixedScheme(1.0), splits, trainer_seed=30)
        preds = predictions_at_rates(model, splits["test"].inputs, cfg.rates)
        labels = splits["test"].targets
        return {
            "rates": cfg.rates,
            "accuracy": {str(r): a for r, a in
                         accuracy_table(preds, labels).items()},
        }

    return cache.get_or_compute(experiment_key("vgg_direct_slicing", cfg), compute)


def lower_bound_experiment(cfg: ImageExperimentConfig,
                           cache: ExperimentCache,
                           lower_bounds=(0.25, 0.375, 0.5, 0.75, 1.0)) -> dict:
    """Figure 3: sweep the training lower bound, evaluate on the full grid."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        out: dict = {"eval_rates": cfg.rates, "by_lower_bound": {}}
        for i, lb in enumerate(lower_bounds):
            train_rates = [r for r in cfg.rates if r >= lb - 1e-9]
            model = make_vgg(cfg, seed=cfg.seed + 40 + i)
            train_model(cfg, model, default_scheme(cfg, train_rates), splits,
                        trainer_seed=40 + i)
            preds = predictions_at_rates(model, splits["test"].inputs,
                                         cfg.rates)
            out["by_lower_bound"][str(lb)] = {
                str(r): float((p == labels).mean()) for r, p in preds.items()
            }
        return out

    return cache.get_or_compute(experiment_key("vgg_lower_bound", cfg), compute)


def scheduling_experiment(cfg: ImageExperimentConfig,
                          cache: ExperimentCache) -> dict:
    """Table 1: compare slice-rate scheduling schemes on the coarse grid."""
    rates = cfg.coarse_rates

    def scheme_table() -> dict:
        # Probabilities align with ascending rates; the paper's weight list
        # (0.5, 0.125, 0.125, 0.25) is ordered from the full net down.
        weighted = [0.25, 0.125, 0.125, 0.5]
        return {
            "R-uniform-2": (RandomScheme(rates, num_samples=2), "group"),
            "R-weighted-2": (RandomScheme(rates, probabilities=weighted,
                                          num_samples=2), "group"),
            "R-weighted-3": (RandomScheme(rates, probabilities=weighted,
                                          num_samples=3), "group"),
            "Static": (StaticScheme(rates), "group"),
            "R-min": (RandomStaticScheme(rates, include_min=True,
                                         include_max=False), "group"),
            "R-max": (RandomStaticScheme(rates, include_min=False,
                                         include_max=True), "group"),
            "R-min-max": (RandomStaticScheme(rates), "group"),
            "Slimmable": (StaticScheme(rates), "multi_bn"),
        }

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        out: dict = {"rates": rates, "schemes": {}}
        for i, (name, (scheme, norm)) in enumerate(scheme_table().items()):
            model = make_vgg(cfg, seed=cfg.seed + 60 + i, norm=norm,
                             rates=rates if norm == "multi_bn" else None)
            train_model(cfg, model, scheme, splits, trainer_seed=60 + i)
            preds = predictions_at_rates(model, splits["test"].inputs, rates)
            out["schemes"][name] = {
                str(r): float((p == labels).mean()) for r, p in preds.items()
            }
        # The "Fixed" column is the fixed-width ensemble at the same rates.
        fixed = fixed_vgg_ensemble_experiment(cfg, cache)
        out["schemes"]["Fixed"] = {
            str(r): fixed["accuracy"][str(r)] for r in rates
        }
        return out

    return cache.get_or_compute(experiment_key("vgg_scheduling", cfg), compute)


def depth_ensemble_experiment(cfg: ImageExperimentConfig,
                              cache: ExperimentCache) -> dict:
    """Ensemble of VGGs of varying depth (Figure 5's weaker baseline)."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        out: dict = {"members": {}}
        variants = {
            "depth-1": dict(convs_per_stage=1, stages=2),
            "depth-2": dict(convs_per_stage=1, stages=3),
            "depth-3": dict(convs_per_stage=2, stages=3),
        }
        for i, (name, kwargs) in enumerate(variants.items()):
            model = SlicedVGG.cifar_mini(
                num_classes=cfg.num_classes, width=cfg.vgg_width,
                seed=cfg.seed + 80 + i, **kwargs,
            )
            train_model(cfg, model, FixedScheme(1.0), splits,
                        trainer_seed=80 + i)
            preds = predictions_at_rates(model, splits["test"].inputs, [1.0])
            flops = measured_flops(model, _input_shape(cfg), 1.0)
            out["members"][name] = {
                "accuracy": float((preds[1.0] == labels).mean()),
                "flops": int(flops),
            }
        return out

    return cache.get_or_compute(experiment_key("vgg_depth_ensemble", cfg), compute)


def slimming_experiment(cfg: ImageExperimentConfig,
                        cache: ExperimentCache,
                        keep_fractions=(0.75, 0.5, 0.3)) -> dict:
    """Network Slimming points: sparsity-train, prune, fine-tune."""

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        model = make_vgg(cfg, seed=cfg.seed + 90)
        loss_fn = sparsity_loss_fn(model, l1_weight=1e-4)
        train_model(cfg, model, FixedScheme(1.0), splits, loss_fn=loss_fn,
                    trainer_seed=90)
        out: dict = {"points": {}}
        for j, keep in enumerate(keep_fractions):
            pruned = prune_vgg(model, keep)
            optimizer = SGD(pruned.parameters(), lr=cfg.lr / 2,
                            momentum=cfg.momentum,
                            weight_decay=cfg.weight_decay)
            trainer = SliceTrainer(pruned, FixedScheme(1.0), optimizer,
                                   rng=np.random.default_rng(cfg.seed + 91 + j))
            trainer.fit(train_loader_fn(cfg, splits, seed_offset=91 + j),
                        epochs=max(2, cfg.epochs // 3))
            preds = []
            pruned.eval()
            inputs = splits["test"].inputs
            with no_grad():
                for start in range(0, len(inputs), cfg.eval_batch_size):
                    logits = pruned(Tensor(inputs[start:start + cfg.eval_batch_size]))
                    preds.append(logits.data.argmax(axis=1))
            predictions = np.concatenate(preds)
            flops = measured_flops(pruned, _input_shape(cfg), 1.0)
            out["points"][str(keep)] = {
                "accuracy": float((predictions == labels).mean()),
                "flops": int(flops),
                "params": int(pruned.num_parameters()),
            }
        return out

    return cache.get_or_compute(experiment_key("vgg_slimming", cfg), compute)
