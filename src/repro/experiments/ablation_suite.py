"""Ablations of the design choices DESIGN.md calls out.

* **Normalization under slicing** — the paper's GN solution vs. naive
  single-stats BN vs. SlimmableNet's multi-BN (Sec. 3.2 discussion).
* **Output rescaling** for sliced dense layers (the NNLM's stabilizer).
* **Slice granularity G** — how many groups per layer.
* **Incremental widening** (Sec. 3.5) — measured FLOPs saved and the
  approximation error of reusing ``ya``.
"""

from __future__ import annotations

import numpy as np

from ..models import MLP
from ..optim import SGD
from ..slicing import RandomStaticScheme, SliceTrainer, slice_rate
from ..slicing.incremental import forward_narrow, full_cost, widen
from ..tensor import Tensor
from .cache import ExperimentCache, experiment_key
from .config import ImageExperimentConfig
from .harness import (
    accuracy_table,
    build_image_task,
    default_scheme,
    make_vgg,
    predictions_at_rates,
    train_model,
)


def normalization_ablation(cfg: ImageExperimentConfig,
                           cache: ExperimentCache) -> dict:
    """GN vs. naive BN vs. multi-BN, trained identically with slicing."""
    rates = cfg.coarse_rates

    def compute() -> dict:
        splits = build_image_task(cfg)
        labels = splits["test"].targets
        out: dict = {"rates": rates, "variants": {}}
        for i, norm in enumerate(("group", "batch", "multi_bn")):
            model = make_vgg(cfg, seed=cfg.seed + 300 + i, norm=norm,
                             rates=rates if norm == "multi_bn" else None)
            train_model(cfg, model, default_scheme(cfg, rates), splits,
                        trainer_seed=300 + i)
            preds = predictions_at_rates(model, splits["test"].inputs, rates)
            out["variants"][norm] = {
                str(r): float((p == labels).mean()) for r, p in preds.items()
            }
        return out

    return cache.get_or_compute(experiment_key("ablation_normalization", cfg), compute)


def granularity_ablation(cfg: ImageExperimentConfig,
                         cache: ExperimentCache,
                         group_counts=(4, 8, 16)) -> dict:
    """Slice-group count G: coarser vs. finer width control."""
    rates = cfg.coarse_rates

    def compute() -> dict:
        from ..models import SlicedVGG

        splits = build_image_task(cfg)
        labels = splits["test"].targets
        out: dict = {"rates": rates, "by_groups": {}}
        for i, groups in enumerate(group_counts):
            model = SlicedVGG.cifar_mini(
                num_classes=cfg.num_classes, width=cfg.vgg_width,
                num_groups=groups, seed=cfg.seed + 310 + i,
            )
            train_model(cfg, model, default_scheme(cfg, rates), splits,
                        trainer_seed=310 + i)
            preds = predictions_at_rates(model, splits["test"].inputs, rates)
            out["by_groups"][str(groups)] = {
                str(r): float((p == labels).mean()) for r, p in preds.items()
            }
        return out

    return cache.get_or_compute(experiment_key("ablation_granularity", cfg), compute)


def rescale_ablation(cache: ExperimentCache, seed: int = 0) -> dict:
    """Output rescaling on/off for a sliced MLP on a dense-feature task."""

    def compute() -> dict:
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(512, 16)).astype(np.float32)
        w = rng.normal(size=(16, 4))
        y = (x @ w + 0.5 * rng.normal(size=(512, 4))).argmax(axis=1)
        x_test = rng.normal(size=(256, 16)).astype(np.float32)
        y_test = (x_test @ w).argmax(axis=1)
        rates = [0.25, 0.5, 1.0]
        out: dict = {"rates": rates, "variants": {}}
        from ..data import ArrayDataset, DataLoader

        data = ArrayDataset(x, y)
        for rescale in (True, False):
            model = MLP(16, [32, 32], 4, rescale=rescale, seed=seed)
            opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
            trainer = SliceTrainer(
                model, RandomStaticScheme(rates, num_random=1), opt,
                rng=np.random.default_rng(seed + 1))
            for _ in range(30):
                trainer.train_epoch(DataLoader(
                    data, 64, shuffle=True,
                    rng=np.random.default_rng(seed + 2)))
            preds = predictions_at_rates(model, x_test, rates)
            out["variants"]["rescale" if rescale else "no_rescale"] = \
                accuracy_table(preds, y_test)
        return out

    raw = cache.get_or_compute(f"ablation_rescale-seed{seed}", compute)
    return raw


def incremental_ablation(cache: ExperimentCache, seed: int = 0) -> dict:
    """Sec. 3.5 computation reuse: cost saved and approximation error."""

    def compute() -> dict:
        from ..slicing.layers import SlicedLinear

        rng = np.random.default_rng(seed)
        layer = SlicedLinear(64, 64, rng=np.random.default_rng(seed))
        x_wide = rng.normal(size=(32, 64)).astype(np.float32)
        out: dict = {"pairs": {}}
        for narrow, wide in ((0.25, 0.5), (0.25, 1.0), (0.5, 1.0)):
            in_narrow = layer.in_partition.width_for(narrow)
            _, state = forward_narrow(layer, x_wide[:, :in_narrow], narrow)
            approx, spent = widen(layer, x_wide[
                :, :layer.in_partition.width_for(wide)], wide, state,
                exact=False)
            with slice_rate(wide):
                direct = layer(
                    Tensor(x_wide[:, :layer.in_partition.width_for(wide)])
                ).data
            err = float(np.abs(approx - direct).max())
            out["pairs"][f"{narrow}->{wide}"] = {
                "incremental_madds": int(spent),
                "from_scratch_madds": int(full_cost(layer, 32, wide)),
                "max_abs_error": err,
            }
        return out

    return cache.get_or_compute(f"ablation_incremental-seed{seed}", compute)
