"""Shared harness for the experiment suites.

Builds the standard datasets, loaders, models and training runs used by
the table/figure reproductions.  Every function is deterministic given the
config seeds.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data import ArrayDataset, DataLoader, SyntheticImageTask, pad_crop
from ..models import SlicedResNet, SlicedVGG
from ..nn.module import Module
from ..optim import SGD, MultiStepLR
from ..slicing import (
    FixedScheme,
    RandomStaticScheme,
    Scheme,
    SliceTrainer,
    slice_rate,
)
from ..tensor import Tensor, no_grad
from .config import ImageExperimentConfig


def build_image_task(cfg: ImageExperimentConfig) -> dict[str, ArrayDataset]:
    """The standard synthetic image splits for a config."""
    task = SyntheticImageTask(
        num_classes=cfg.num_classes, image_size=cfg.image_size,
        noise=cfg.noise, components=cfg.components, seed=cfg.data_seed,
    )
    return task.build(train_size=cfg.train_size, test_size=cfg.test_size)


def train_loader_fn(cfg: ImageExperimentConfig, splits,
                    augment: bool = True, seed_offset: int = 0) -> Callable:
    """A fresh-loader factory for :meth:`SliceTrainer.fit`.

    Augmentation is pad+crop only: the synthetic texture classes are
    orientation-defined, so horizontal flips would corrupt the labels.
    """
    transform = pad_crop(pad=2) if augment else None

    def make():
        return DataLoader(splits["train"], cfg.batch_size, shuffle=True,
                          transform=transform,
                          rng=np.random.default_rng(cfg.seed + 50 + seed_offset))

    return make


def eval_loader_fn(cfg: ImageExperimentConfig, splits) -> Callable:
    def make():
        return DataLoader(splits["test"], cfg.eval_batch_size)

    return make


def make_vgg(cfg: ImageExperimentConfig, seed: int | None = None,
             norm: str = "group", rates: Sequence[float] | None = None
             ) -> SlicedVGG:
    return SlicedVGG.cifar_mini(
        num_classes=cfg.num_classes, width=cfg.vgg_width, norm=norm,
        rates=rates, seed=cfg.seed if seed is None else seed,
    )


def make_resnet(cfg: ImageExperimentConfig, seed: int | None = None,
                blocks: int | None = None, widen: int = 1,
                norm: str = "group", rates: Sequence[float] | None = None
                ) -> SlicedResNet:
    return SlicedResNet.cifar_mini(
        num_classes=cfg.num_classes,
        blocks=cfg.resnet_blocks if blocks is None else blocks,
        base_channels=cfg.resnet_base_channels, widen=widen,
        norm=norm, rates=rates, seed=cfg.seed if seed is None else seed,
    )


def make_optimizer(cfg: ImageExperimentConfig, model: Module) -> SGD:
    return SGD(model.parameters(), lr=cfg.lr, momentum=cfg.momentum,
               weight_decay=cfg.weight_decay)


def default_scheme(cfg: ImageExperimentConfig,
                   rates: Sequence[float] | None = None) -> Scheme:
    """The reporting scheme: R-min-max (paper's choice for larger data)."""
    rates = list(cfg.rates) if rates is None else list(rates)
    if len(rates) == 1:
        return FixedScheme(rates[0])
    return RandomStaticScheme(rates, include_min=True, include_max=True,
                              num_random=2)


def train_model(cfg: ImageExperimentConfig, model: Module, scheme: Scheme,
                splits, loss_fn=None, epochs: int | None = None,
                epoch_hook=None, eval_rates: Sequence[float] | None = None,
                augment: bool = True, trainer_seed: int = 1) -> SliceTrainer:
    """Run the standard training recipe and return the trainer."""
    from ..tensor import cross_entropy

    epochs = cfg.epochs if epochs is None else epochs
    optimizer = make_optimizer(cfg, model)
    trainer = SliceTrainer(model, scheme, optimizer,
                           loss_fn=loss_fn or cross_entropy,
                           rng=np.random.default_rng(cfg.seed + trainer_seed))
    schedule = MultiStepLR.cifar_recipe(optimizer, epochs)
    eval_fn = eval_loader_fn(cfg, splits) if epoch_hook is not None else None
    trainer.fit(
        train_loader_fn(cfg, splits, augment=augment),
        eval_loader_fn=eval_fn,
        epochs=epochs, eval_rates=eval_rates, lr_schedule=schedule,
        epoch_hook=epoch_hook,
    )
    return trainer


def predictions_at_rates(model: Module, inputs: np.ndarray,
                         rates: Sequence[float],
                         batch_size: int = 256) -> dict[float, np.ndarray]:
    """Predicted labels of every ``Subnet-r`` on ``inputs``."""
    model.eval()
    out: dict[float, np.ndarray] = {}
    for rate in rates:
        preds = []
        with no_grad():
            with slice_rate(rate):
                for start in range(0, len(inputs), batch_size):
                    logits = model(Tensor(inputs[start:start + batch_size]))
                    preds.append(logits.data.argmax(axis=1))
        out[rate] = np.concatenate(preds)
    return out


def accuracy_table(predictions: dict[float, np.ndarray],
                   labels: np.ndarray) -> dict[float, float]:
    """Accuracy per rate from cached predictions."""
    return {rate: float((pred == labels).mean())
            for rate, pred in predictions.items()}
