"""Disk cache for experiment artifacts.

Training even the CPU-scale models takes tens of seconds, and several
tables/figures share the same trained models, so every experiment result
(a JSON-serializable dict) is cached on disk under a stable key.  Delete
the cache directory (``.exp_cache`` by default) to force recomputation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Callable

from .. import obs


def _default_root() -> str:
    """The cache directory, resolved *at call time*.

    Reading ``REPRO_CACHE_DIR`` lazily (rather than at import) lets tests
    and the CLI redirect the cache with a plain ``os.environ`` change —
    no re-import required.
    """
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), ".exp_cache"),
    )


class ExperimentCache:
    """A trivially simple key -> JSON store."""

    def __init__(self, root: str | None = None):
        self.root = root if root is not None else _default_root()

    def path(self, key: str) -> str:
        safe = key.replace("/", "_")
        return os.path.join(self.root, safe + ".json")

    def get(self, key: str):
        """The cached value for ``key``, or None."""
        path = self.path(key)
        if not os.path.exists(path):
            if obs.enabled():
                obs.count("expcache_misses_total")
            return None
        if obs.enabled():
            obs.count("expcache_hits_total")
        with open(path) as handle:
            return json.load(handle)

    def put(self, key: str, value) -> None:
        """Store a JSON-serializable ``value`` under ``key``."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path(key)
        with open(path, "w") as handle:
            json.dump(value, handle, indent=1, default=_jsonify)

    def get_or_compute(self, key: str, compute: Callable[[], object]):
        """Return the cached value, computing and storing it if absent."""
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return self.get(key)


def experiment_key(name: str, *configs) -> str:
    """Cache key for an experiment: the name plus a config fingerprint.

    Any change to any field of the governing config(s) invalidates the
    cached artifact, so stale results can never be served after a
    protocol change.
    """
    payload = [dataclasses.asdict(cfg) for cfg in configs]
    blob = json.dumps(payload, sort_keys=True, default=_jsonify)
    digest = hashlib.sha1(blob.encode()).hexdigest()[:10]
    return f"{name}-{digest}"


def _jsonify(value):
    import numpy as np

    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot serialize {type(value)}")
