"""NNLM experiment suite — Table 2 and Figure 4.

Three rows, as in the paper:

* ``NNLM-1.0``   — conventionally trained full model, sliced directly;
* ``NNLM-<lb>``  — trained with model slicing from the lower bound;
* ``NNLM-fixed`` — an ensemble of individually trained fixed-width models.

Training follows the paper's recipe scaled down: truncated BPTT, plain
SGD with gradient clipping, LR quartered when validation perplexity stops
improving.
"""

from __future__ import annotations

import numpy as np

from ..data import SyntheticTextCorpus, batchify, bptt_windows
from ..metrics import measured_flops, perplexity
from ..models import NNLM
from ..optim import SGD, PlateauDecay, clip_grad_norm
from ..slicing import (
    FixedScheme,
    RandomStaticScheme,
    Scheme,
    slice_rate,
)
from ..tensor import no_grad
from .cache import ExperimentCache, experiment_key
from .config import TextExperimentConfig


def build_text_task(cfg: TextExperimentConfig) -> dict[str, np.ndarray]:
    corpus = SyntheticTextCorpus(vocab_size=cfg.vocab_size,
                                 num_states=cfg.num_states,
                                 seed=cfg.data_seed)
    return corpus.build(train_tokens=cfg.train_tokens,
                        valid_tokens=cfg.valid_tokens,
                        test_tokens=cfg.test_tokens)


def make_nnlm(cfg: TextExperimentConfig, seed: int | None = None) -> NNLM:
    return NNLM(vocab_size=cfg.vocab_size, embed_dim=cfg.embed_dim,
                hidden_size=cfg.hidden_size, num_layers=cfg.num_layers,
                dropout=cfg.dropout,
                seed=cfg.seed if seed is None else seed)


def evaluate_ppl(model: NNLM, stream: np.ndarray,
                 cfg: TextExperimentConfig, rate: float) -> float:
    """Test perplexity of ``Subnet-rate``."""
    model.eval()
    batched = batchify(stream, cfg.batch_size)
    total_nll = 0.0
    total_tokens = 0
    with no_grad():
        with slice_rate(rate):
            for inputs, targets in bptt_windows(batched, cfg.bptt):
                nll = model.sequence_nll(inputs, targets)
                count = targets.size
                total_nll += nll.item() * count
                total_tokens += count
    return perplexity(total_nll / total_tokens)


def train_nnlm(cfg: TextExperimentConfig, scheme: Scheme,
               streams: dict[str, np.ndarray],
               seed: int = 0) -> NNLM:
    """Train an NNLM under a slice-rate scheduling scheme."""
    model = make_nnlm(cfg, seed=cfg.seed + seed)
    optimizer = SGD(model.parameters(), lr=cfg.lr)
    plateau = PlateauDecay(optimizer, factor=0.25)
    rng = np.random.default_rng(cfg.seed + 200 + seed)
    train_batched = batchify(streams["train"], cfg.batch_size)
    for _ in range(cfg.epochs):
        model.train()
        for inputs, targets in bptt_windows(train_batched, cfg.bptt):
            optimizer.zero_grad()
            rates = scheme.sample(rng)
            for rate in rates:
                with slice_rate(rate):
                    loss = model.sequence_nll(inputs, targets)
                loss.backward()
            if len(rates) > 1:
                # Average across scheduled subnets (see SliceTrainer).
                inv = 1.0 / len(rates)
                for param in optimizer.params:
                    if param.grad is not None:
                        param.grad *= inv
            clip_grad_norm(model.parameters(), cfg.grad_clip)
            optimizer.step()
        valid_ppl = evaluate_ppl(model, streams["valid"], cfg,
                                 scheme.max_rate)
        plateau.step(valid_ppl)
    return model


def nnlm_experiment(cfg: TextExperimentConfig,
                    cache: ExperimentCache) -> dict:
    """Produce the three Table 2 rows plus per-rate measured FLOPs."""

    def compute() -> dict:
        streams = build_text_task(cfg)
        rates = cfg.rates
        lb_rates = [r for r in rates if r >= cfg.lower_bound - 1e-9]

        # Row 2: model slicing with the configured lower bound.
        sliced = train_nnlm(
            cfg, RandomStaticScheme(lb_rates, num_random=1), streams, seed=1,
        )
        sliced_ppl = {str(r): evaluate_ppl(sliced, streams["test"], cfg, r)
                      for r in rates}

        # Row 1: conventional training, direct slicing.
        full = train_nnlm(cfg, FixedScheme(1.0), streams, seed=2)
        full_ppl = {str(r): evaluate_ppl(full, streams["test"], cfg, r)
                    for r in rates}

        # Row 3: individually trained fixed models.
        fixed_ppl = {}
        for i, rate in enumerate(rates):
            member = train_nnlm(cfg, FixedScheme(rate), streams, seed=3 + i)
            fixed_ppl[str(rate)] = evaluate_ppl(member, streams["test"],
                                                cfg, rate)

        # Measured computation per rate (multiply-adds of one window).
        def token_input(shape):
            return np.zeros((cfg.bptt, 1), dtype=np.int64)

        flops = {
            str(r): int(measured_flops(sliced, (cfg.bptt, 1), rate=r,
                                       input_builder=token_input))
            for r in rates
        }
        return {
            "rates": rates,
            "lower_bound": cfg.lower_bound,
            "ppl_direct": full_ppl,
            "ppl_sliced": sliced_ppl,
            "ppl_fixed": fixed_ppl,
            "flops": flops,
        }

    return cache.get_or_compute(experiment_key("nnlm_table2", cfg), compute)
