"""Discrete-window serving simulator (the Sec. 4.1 example application).

Time is divided into ``T/2`` windows.  Arrivals landing in window ``k``
form the batch processed during window ``k+1``.  A controller picks the
slice rate per batch; a fixed-rate controller instead sheds the samples it
cannot fit (the paper's coarse degradation).  The simulator accounts, per
window: admitted/dropped samples, chosen rate, realized processing time,
SLO violations, and the accuracy implied by the chosen rate.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Mapping

import numpy as np

from ..errors import ServingError


@dataclass
class WindowStats:
    """Telemetry of one processing window."""

    start: float
    arrivals: int
    admitted: int
    dropped: int
    rate: float | None
    processing_time: float
    slo_met: bool
    expected_accuracy: float

    def to_dict(self) -> dict:
        data = asdict(self)
        if data["rate"] is not None \
                and not isinstance(data["rate"], (int, float)):
            data["rate"] = format(data["rate"])  # profile -> short label
        return data


@dataclass
class ServingReport:
    """Aggregate results of a serving simulation."""

    windows: list[WindowStats] = field(default_factory=list)

    @property
    def total_arrivals(self) -> int:
        return sum(w.arrivals for w in self.windows)

    @property
    def total_dropped(self) -> int:
        return sum(w.dropped for w in self.windows)

    @property
    def drop_fraction(self) -> float:
        total = self.total_arrivals
        return self.total_dropped / total if total else 0.0

    @property
    def slo_violations(self) -> int:
        return sum(1 for w in self.windows if not w.slo_met)

    @property
    def mean_accuracy(self) -> float:
        """Admitted-sample-weighted expected accuracy (dropped count as 0)."""
        total = self.total_arrivals
        if not total:
            return 0.0
        gained = sum(w.admitted * w.expected_accuracy for w in self.windows)
        return gained / total

    @property
    def mean_rate(self) -> float:
        rates = [float(w.rate) for w in self.windows if w.rate is not None]
        return float(np.mean(rates)) if rates else 0.0

    def utilization(self, window_length: float) -> float:
        """Fraction of each processing window actually spent computing."""
        if not self.windows:
            return 0.0
        busy = sum(w.processing_time for w in self.windows)
        return busy / (len(self.windows) * window_length)

    def to_dict(self, include_windows: bool = True) -> dict:
        """Machine-readable summary (same aggregation as the runtime's).

        Reuses the shared percentile helper from
        :mod:`repro.runtime.telemetry` (imported lazily: the runtime
        builds *on* the serving layer) so both pipelines report latency
        statistics identically.
        """
        from ..runtime.telemetry import percentiles

        summary = {
            "total_arrivals": self.total_arrivals,
            "total_dropped": self.total_dropped,
            "drop_fraction": self.drop_fraction,
            "slo_violations": self.slo_violations,
            "mean_accuracy": self.mean_accuracy,
            "mean_rate": self.mean_rate,
            "processing_time": percentiles(
                w.processing_time for w in self.windows if w.arrivals),
        }
        if include_windows:
            summary["windows"] = [w.to_dict() for w in self.windows]
        return summary

    def to_json(self, include_windows: bool = True, indent: int = 1) -> str:
        return json.dumps(self.to_dict(include_windows=include_windows),
                          indent=indent)


def simulate_serving(arrivals: np.ndarray, controller,
                     full_latency_per_sample: float, latency_slo: float,
                     accuracy_of_rate: Mapping[float, float],
                     duration: float) -> ServingReport:
    """Run the window simulation.

    Parameters
    ----------
    arrivals:
        Sorted arrival timestamps.
    controller:
        Object with ``choose(batch_size) -> rate | None``; a ``None``
        answer makes the simulator shed samples down to the controller's
        ``max_batch`` (fixed-rate baseline) or drop the batch entirely if
        even one sample cannot be served.
    accuracy_of_rate:
        Measured accuracy of the deployed model at each candidate rate
        (from a trained model's evaluation).
    """
    if latency_slo <= 0:
        raise ServingError("latency_slo must be positive")
    window = latency_slo / 2.0
    report = ServingReport()
    edges = np.arange(0.0, duration + window, window)
    counts, _ = np.histogram(arrivals, bins=edges)
    for k, n in enumerate(counts):
        n = int(n)
        rate = controller.choose(n)
        if n == 0:
            report.windows.append(WindowStats(
                start=float(edges[k]), arrivals=0, admitted=0, dropped=0,
                rate=None, processing_time=0.0, slo_met=True,
                expected_accuracy=0.0,
            ))
            continue
        if rate is None:
            # Shed load until the controller can serve the remainder.
            capacity = controller.max_batch(getattr(controller, "rate", None)) \
                if hasattr(controller, "rate") else 0
            admitted = min(n, capacity)
            rate = controller.choose(admitted) if admitted else None
            dropped = n - admitted
        else:
            admitted, dropped = n, 0
        if rate is None:
            processing = 0.0
            accuracy = 0.0
            admitted = 0
            dropped = n
        else:
            processing = admitted * float(rate) ** 2 * full_latency_per_sample
            accuracy = accuracy_for_rate(accuracy_of_rate, rate)
        report.windows.append(WindowStats(
            start=float(edges[k]), arrivals=n, admitted=admitted,
            dropped=dropped, rate=rate, processing_time=processing,
            slo_met=processing <= window + 1e-9,
            expected_accuracy=accuracy,
        ))
    return report


def accuracy_for_rate(table: Mapping, rate) -> float:
    """Accuracy of the nearest measured rate (shared with the runtime).

    ``rate`` and the table keys may be scalars or slice profiles: an
    exact match (by value for scalars and uniform profiles, by
    fingerprint for non-uniform ones) wins, otherwise the nearest key by
    mean rate.
    """
    if rate in table:
        return table[rate]
    best = min(table, key=lambda r: abs(float(r) - float(rate)))
    return table[best]


def measured_accuracy_table(model, inputs, labels, rates,
                            plan_cache=None) -> dict:
    """Accuracy-of-rate table from real evaluation through cached plans.

    Evaluates ``model`` on ``(inputs, labels)`` at every rate via
    :mod:`repro.slicing.plans` (compiled once per rate, reused across
    calls through ``plan_cache`` — the shared cache by default), giving
    the controllers a measured table instead of an assumed one.

    ``rates`` may mix scalars and slice profiles; duplicates (by
    canonical fingerprint) collapse.  Uniform entries keep plain float
    keys so existing scalar-keyed consumers are unaffected; non-uniform
    profiles key by the profile object itself.
    """
    from ..slicing.plans import shared_cache
    from ..slicing.profile import as_profile

    cache = plan_cache if plan_cache is not None else shared_cache()
    labels = np.asarray(labels)
    unique = {as_profile(r).fingerprint(): as_profile(r) for r in rates}
    table: dict = {}
    for profile in sorted(unique.values(),
                          key=lambda p: (float(p), p.fingerprint())):
        predictions = np.argmax(cache.get(model, profile).run(inputs),
                                axis=-1)
        key = float(profile) if profile.uniform else profile
        table[key] = float((predictions == labels).mean())
    return table
