"""Dynamic-workload serving: the Sec. 4.1 example application."""

from .workload import (
    constant_rate,
    diurnal_rate,
    generate_arrivals,
    peak_to_trough,
    spike_rate,
)
from .controller import (
    AdaptiveSliceRateController,
    CascadeController,
    FixedRateController,
    ProfileTableController,
    SliceRateController,
)
from .simulator import (
    ServingReport,
    WindowStats,
    accuracy_for_rate,
    measured_accuracy_table,
    simulate_serving,
)

__all__ = [
    "constant_rate",
    "diurnal_rate",
    "spike_rate",
    "generate_arrivals",
    "peak_to_trough",
    "SliceRateController",
    "AdaptiveSliceRateController",
    "CascadeController",
    "FixedRateController",
    "ProfileTableController",
    "ServingReport",
    "WindowStats",
    "accuracy_for_rate",
    "measured_accuracy_table",
    "simulate_serving",
]
