"""Slice-rate controllers implementing the paper's degradation policy.

Sec. 4.1: queries stream in under a latency SLO ``T``.  The service builds
a mini-batch every ``T/2`` and spends the remaining ``T/2`` processing it,
choosing the largest slice rate with ``n * r**2 * t <= T/2``.  Under this
design no compute is wasted and every admitted sample meets the SLO.

Baselines: a fixed full-width policy (drops work under load) and a fixed
narrow policy (wastes accuracy off-peak).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .. import obs
from ..errors import BudgetError, ServingError
from ..slicing.budget import rate_for_latency
from ..slicing.profile import as_profile


def _record_decision(policy: str, batch_size: int, rate,
                     window: float, cost: float | None) -> None:
    """Count and trace one slice-rate decision (only while obs is on).

    The event carries the run-time budget (``window``, the paper's
    ``T/2``) and the planned spend at the chosen rate, so a trace shows
    *why* the controller degraded: the budget that forced the rate.  The
    ``profile`` field is the canonical fingerprint of the decision, so
    non-uniform choices are identifiable beyond their mean rate.
    """
    label = "none" if rate is None else f"{rate:g}"
    obs.count("controller_decisions_total", rate=label)
    obs.event("controller.decision", policy=policy, batch_size=batch_size,
              rate=None if rate is None else float(rate),
              profile=None if rate is None else as_profile(rate).fingerprint(),
              window=window, cost=cost)


class SliceRateController:
    """The paper's elastic policy: pick ``r`` per batch from its size.

    By default the per-sample cost at rate ``r`` follows the paper's
    quadratic model ``t * r**2``.  Passing ``cost_of_rate`` (a mapping of
    candidate rate to *measured* per-sample seconds, e.g. derived from
    :func:`repro.metrics.latency_table`) calibrates the controller to the
    real latency curve instead — small subnets rarely enjoy the full
    quadratic speedup on real hardware.
    """

    def __init__(self, rates: Sequence[float], full_latency_per_sample: float,
                 latency_slo: float,
                 cost_of_rate: Mapping[float, float] | None = None):
        if latency_slo <= 0 or full_latency_per_sample <= 0:
            raise ServingError("latencies must be positive")
        self.rates = sorted(float(r) for r in rates)
        self.full_latency = full_latency_per_sample
        self.latency_slo = latency_slo
        self.cost_of_rate = None if cost_of_rate is None else {
            float(r): float(c) for r, c in cost_of_rate.items()}
        if self.cost_of_rate is not None:
            missing = [r for r in self.rates if r not in self.cost_of_rate]
            if missing:
                raise ServingError(
                    f"cost_of_rate lacks candidate rates {missing}")
            if any(c <= 0 for c in self.cost_of_rate.values()):
                raise ServingError("per-rate costs must be positive")

    def per_sample_cost(self, rate: float) -> float:
        """Per-sample seconds at ``rate``: measured if calibrated, else
        the quadratic model."""
        if self.cost_of_rate is not None and rate in self.cost_of_rate:
            return self.cost_of_rate[rate]
        return self.full_latency * rate * rate

    def choose(self, batch_size: int) -> float | None:
        """Slice rate for a batch, or None if even the base net is too slow."""
        rate = self._decide(batch_size)
        if obs.enabled():
            cost = None if rate is None \
                else batch_size * self.per_sample_cost(rate)
            _record_decision("elastic", batch_size, rate,
                             self.latency_slo / 2.0, cost)
        return rate

    def _decide(self, batch_size: int) -> float | None:
        if batch_size == 0:
            return None
        if self.cost_of_rate is not None:
            window = self.latency_slo / 2.0
            fits = [r for r in self.rates
                    if batch_size * self.per_sample_cost(r) <= window]
            return max(fits) if fits else None
        try:
            return rate_for_latency(batch_size, self.full_latency,
                                    self.latency_slo, self.rates)
        except BudgetError:
            return None

    def max_batch(self, rate: float) -> int:
        """Largest batch the SLO admits at ``rate``."""
        window = self.latency_slo / 2.0
        return int(window / self.per_sample_cost(rate))


class AdaptiveSliceRateController(SliceRateController):
    """Elastic controller that calibrates its latency model online.

    The paper's rule needs the full-width per-sample latency ``t``.  In
    production ``t`` drifts (thermal throttling, co-located load), so
    this controller refines its estimate from *observed* processing
    times via an exponentially weighted moving average: after a batch of
    ``n`` samples at rate ``r`` takes ``elapsed`` seconds, the implied
    full-width latency is ``elapsed / (n * r**2)``.

    A safety factor > 1 makes the controller conservative: it plans with
    ``safety * t_est``, trading a slightly narrower subnet for fewer SLO
    violations while the estimate converges.
    """

    def __init__(self, rates, initial_latency: float, latency_slo: float,
                 smoothing: float = 0.3, safety: float = 1.0):
        super().__init__(rates, initial_latency, latency_slo)
        if not 0.0 < smoothing <= 1.0:
            raise ServingError("smoothing must be in (0, 1]")
        if safety < 1.0:
            raise ServingError("safety factor must be >= 1")
        self.smoothing = smoothing
        self.safety = safety
        self.observations = 0

    def _decide(self, batch_size: int) -> float | None:
        if batch_size == 0:
            return None
        try:
            return rate_for_latency(batch_size,
                                    self.full_latency * self.safety,
                                    self.latency_slo, self.rates)
        except BudgetError:
            return None

    def observe(self, batch_size: int, rate: float,
                elapsed: float) -> float:
        """Fold one observed batch into the latency estimate.

        Returns the updated full-width per-sample estimate.
        """
        if batch_size <= 0 or rate <= 0 or elapsed < 0:
            raise ServingError("invalid observation")
        implied = elapsed / (batch_size * rate * rate)
        self.full_latency = ((1 - self.smoothing) * self.full_latency
                             + self.smoothing * implied)
        self.observations += 1
        if obs.enabled():
            obs.gauge("controller_latency_estimate", self.full_latency)
        return self.full_latency


class ProfileTableController:
    """The elastic policy generalized to explicit slice profiles.

    Candidates are :class:`~repro.slicing.profile.SliceProfile` objects
    (scalar rates coerce to uniform profiles) with *measured* per-sample
    costs — e.g. the budget-search winners from
    :func:`repro.slicing.budget.search_profile_for_budget` calibrated via
    :func:`repro.metrics.latency_table`.  ``choose`` picks the most
    expensive candidate whose batch fits the ``T/2`` window, mirroring
    the paper's rule with cost standing in for ``r**2``; ``downgrade``
    steps to the next cheaper candidate for retry caps.
    """

    def __init__(self, cost_of_profile: Mapping, latency_slo: float):
        if latency_slo <= 0:
            raise ServingError("latency_slo must be positive")
        entries = [(as_profile(p), float(c))
                   for p, c in cost_of_profile.items()]
        if not entries:
            raise ServingError(
                "ProfileTableController needs at least one candidate")
        if any(c <= 0 for _, c in entries):
            raise ServingError("per-profile costs must be positive")
        # Cheapest first; mean rate breaks cost ties deterministically.
        self._entries = sorted(
            entries, key=lambda e: (e[1], float(e[0]), e[0].fingerprint()))
        self._costs = {p.fingerprint(): c for p, c in self._entries}
        self.latency_slo = latency_slo

    @property
    def rates(self) -> list:
        """Candidate profiles, cheapest first."""
        return [profile for profile, _ in self._entries]

    def per_sample_cost(self, rate) -> float:
        profile = as_profile(rate)
        cost = self._costs.get(profile.fingerprint())
        if cost is None:
            raise ServingError(f"unknown candidate profile {profile!r}")
        return cost

    def choose(self, batch_size: int):
        rate = self._decide(batch_size)
        if obs.enabled():
            cost = None if rate is None \
                else batch_size * self.per_sample_cost(rate)
            _record_decision("profile-table", batch_size, rate,
                             self.latency_slo / 2.0, cost)
        return rate

    def _decide(self, batch_size: int):
        if batch_size == 0:
            return None
        window = self.latency_slo / 2.0
        chosen = None
        for profile, cost in self._entries:
            if batch_size * cost <= window:
                chosen = profile
        return chosen

    def downgrade(self, rate):
        """The next cheaper candidate (or ``rate`` if already cheapest)."""
        fingerprint = as_profile(rate).fingerprint()
        previous = None
        for profile, _ in self._entries:
            if profile.fingerprint() == fingerprint:
                return previous if previous is not None else rate
            previous = profile
        # Unknown rate: the most expensive candidate narrower by mean.
        lower = [profile for profile, _ in self._entries
                 if float(profile) < float(rate) - 1e-9]
        return lower[-1] if lower else rate

    def max_batch(self, rate) -> int:
        """Largest batch the SLO admits at candidate ``rate``."""
        window = self.latency_slo / 2.0
        return int(window / self.per_sample_cost(rate))


class CascadeController:
    """Batch policy for confidence-cascade serving.

    Every batch *starts* at the cheapest cascade stage; widening happens
    per request inside the runtime's
    :class:`~repro.runtime.cascade.CascadeExecutor`, not here.  The
    controller's job is admission: budget the ``T/2`` window for the
    cascade's expected per-sample cost — the stage costs weighted by the
    fraction of requests expected to *reach* each stage (worst case 1.0
    everywhere: every request escalates to the top).

    ``cost_of_stage`` maps each stage rate to calibrated per-sample
    seconds; ``reach_fractions`` (optional, same length) are the
    planning-time escalation assumptions, which the runtime's measured
    ``cascade_escalations_total`` counters exist to calibrate.
    """

    def __init__(self, stage_rates: Sequence, cost_of_stage: Mapping,
                 latency_slo: float,
                 reach_fractions: Sequence[float] | None = None):
        if latency_slo <= 0:
            raise ServingError("latency_slo must be positive")
        self.stage_rates = list(stage_rates)
        if len(self.stage_rates) < 2:
            raise ServingError("a cascade needs at least two stages")
        self._costs = []
        for rate in self.stage_rates:
            key = rate if rate in cost_of_stage else float(rate)
            if key not in cost_of_stage:
                raise ServingError(f"cost_of_stage lacks stage rate {rate}")
            cost = float(cost_of_stage[key])
            if cost <= 0:
                raise ServingError("per-stage costs must be positive")
            self._costs.append(cost)
        if sorted(self._costs) != self._costs:
            raise ServingError("cascade stages must be cheapest-first")
        if reach_fractions is None:
            reach_fractions = [1.0] * len(self.stage_rates)
        self.reach_fractions = [float(f) for f in reach_fractions]
        if len(self.reach_fractions) != len(self.stage_rates):
            raise ServingError(
                f"{len(self.reach_fractions)} reach fractions for "
                f"{len(self.stage_rates)} stages")
        if self.reach_fractions[0] != 1.0 \
                or any(not 0.0 <= f <= 1.0 for f in self.reach_fractions):
            raise ServingError(
                "reach fractions must be in [0, 1] and start at 1.0")
        if any(b > a + 1e-12 for a, b in zip(self.reach_fractions,
                                             self.reach_fractions[1:])):
            raise ServingError("reach fractions must be non-increasing")
        self.latency_slo = latency_slo

    @property
    def rates(self) -> list:
        return list(self.stage_rates)

    @property
    def floor_rate(self):
        """The cheapest stage — where every batch starts."""
        return self.stage_rates[0]

    def per_sample_cost(self, rate=None) -> float:
        """Expected cascade seconds per request (escalations included).

        With an explicit ``rate``, the calibrated cost of that single
        stage instead (the cluster layer prices stages individually).
        """
        if rate is not None:
            for candidate, cost in zip(self.stage_rates, self._costs):
                if float(candidate) == float(rate):
                    return cost
            raise ServingError(f"unknown cascade stage rate {rate}")
        return sum(fraction * cost for fraction, cost
                   in zip(self.reach_fractions, self._costs))

    def choose(self, batch_size: int):
        """Stage-0 rate if the expected cascade fits ``T/2``, else None."""
        rate = self._decide(batch_size)
        if obs.enabled():
            cost = None if rate is None \
                else batch_size * self.per_sample_cost()
            _record_decision("cascade", batch_size, rate,
                             self.latency_slo / 2.0, cost)
        return rate

    def _decide(self, batch_size: int):
        if batch_size == 0:
            return None
        if batch_size * self.per_sample_cost() > self.latency_slo / 2.0:
            return None
        return self.floor_rate

    def downgrade(self, rate):
        """Retries re-enter at the cascade floor (already the cheapest)."""
        return self.floor_rate

    def max_batch(self, rate=None) -> int:
        """Largest batch whose *expected* cascade fits the window."""
        window = self.latency_slo / 2.0
        return int(window / self.per_sample_cost())


class FixedRateController:
    """Degenerate policy: always run at one rate (the baselines).

    ``cost_of_rate`` optionally calibrates the per-sample cost model the
    same way as :class:`SliceRateController`.
    """

    def __init__(self, rate: float, full_latency_per_sample: float,
                 latency_slo: float,
                 cost_of_rate: Mapping[float, float] | None = None):
        if not 0 < rate <= 1:
            raise ServingError(f"rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.full_latency = full_latency_per_sample
        self.latency_slo = latency_slo
        self.cost_of_rate = None if cost_of_rate is None else {
            float(r): float(c) for r, c in cost_of_rate.items()}

    def per_sample_cost(self, rate: float) -> float:
        if self.cost_of_rate is not None and rate in self.cost_of_rate:
            return self.cost_of_rate[rate]
        return self.full_latency * rate * rate

    def choose(self, batch_size: int) -> float | None:
        rate = self._decide(batch_size)
        if obs.enabled():
            cost = None if rate is None \
                else batch_size * self.per_sample_cost(rate)
            _record_decision("fixed", batch_size, rate,
                             self.latency_slo / 2.0, cost)
        return rate

    def _decide(self, batch_size: int) -> float | None:
        if batch_size == 0:
            return None
        cost = batch_size * self.per_sample_cost(self.rate)
        if cost > self.latency_slo / 2.0:
            return None  # cannot meet the SLO; the batch must shed load
        return self.rate

    def max_batch(self, rate: float | None = None) -> int:
        rate = self.rate if rate is None else rate
        window = self.latency_slo / 2.0
        return int(window / self.per_sample_cost(rate))
