"""Workload generators for the dynamic-serving experiments (Sec. 4.1).

The paper motivates model slicing with services whose peak workload is
3-10x (up to 16x) the off-peak level: diurnal cycles plus sudden spikes
(Singles' Day).  Since production traces are proprietary, these generators
produce parametric arrival processes with controllable peak-to-trough
ratios; the controller only ever sees arrival counts per window, so any
process with the right volatility exercises the same code path.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..errors import ServingError


def diurnal_rate(base: float, peak_ratio: float, period: float
                 ) -> Callable[[float], float]:
    """Sinusoidal day/night intensity with a given peak/trough ratio."""
    if base <= 0 or peak_ratio < 1:
        raise ServingError("base must be > 0 and peak_ratio >= 1")
    mean = base * (1 + peak_ratio) / 2.0
    amplitude = base * (peak_ratio - 1) / 2.0

    def rate(t: float) -> float:
        return mean + amplitude * math.sin(2 * math.pi * t / period)

    return rate


def spike_rate(base_fn: Callable[[float], float],
               spikes: Sequence[tuple[float, float, float]]
               ) -> Callable[[float], float]:
    """Overlay multiplicative spikes on a base intensity.

    ``spikes`` is a list of ``(start, duration, factor)`` triples —
    e.g. the paper's "10x in the first hour" flash-sale burst.
    """

    def rate(t: float) -> float:
        value = base_fn(t)
        for start, duration, factor in spikes:
            if start <= t < start + duration:
                value *= factor
        return value

    return rate


def constant_rate(value: float) -> Callable[[float], float]:
    """A flat arrival intensity."""
    if value <= 0:
        raise ServingError("rate must be positive")
    return lambda t: value


def generate_arrivals(rate_fn: Callable[[float], float], duration: float,
                      rng: np.random.Generator,
                      tick: float = 0.01) -> np.ndarray:
    """Sample arrival timestamps from an inhomogeneous Poisson process.

    Uses per-tick Poisson counts (adequate for the window-level consumer:
    the controller only counts arrivals per window).
    """
    if duration <= 0:
        raise ServingError("duration must be positive")
    times = []
    t = 0.0
    while t < duration:
        lam = max(rate_fn(t), 0.0) * tick
        count = rng.poisson(lam)
        if count:
            times.append(t + rng.random(count) * tick)
        t += tick
    if not times:
        return np.empty(0)
    arrivals = np.sort(np.concatenate(times))
    return arrivals[arrivals < duration]


def peak_to_trough(rate_fn: Callable[[float], float], duration: float,
                   samples: int = 1000) -> float:
    """Measured volatility of an intensity function over ``duration``."""
    grid = np.linspace(0, duration, samples, endpoint=False)
    values = np.array([rate_fn(float(t)) for t in grid])
    trough = values.min()
    if trough <= 0:
        raise ServingError("intensity reaches zero; ratio undefined")
    return float(values.max() / trough)
