"""Classification metrics."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy from logits or probabilities."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2 or len(logits) != len(targets):
        raise ShapeError("accuracy expects (N, C) logits and (N,) targets")
    return float((logits.argmax(axis=1) == targets).mean())


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int) -> float:
    """Top-k accuracy."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if not 1 <= k <= logits.shape[1]:
        raise ShapeError(f"k={k} out of range for {logits.shape[1]} classes")
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((top == targets[:, None]).any(axis=1).mean())


def error_rate(logits: np.ndarray, targets: np.ndarray) -> float:
    """1 - top-1 accuracy."""
    return 1.0 - accuracy(logits, targets)
