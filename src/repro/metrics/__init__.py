"""Metrics: classification, language modeling, cost and consistency."""

from .classification import accuracy, error_rate, top_k_accuracy
from .lm import perplexity
from .consistency import inclusion_coefficient, inclusion_matrix
from .flops import (
    active_params,
    cost_table,
    measured_flops,
    memory_of_profile,
    memory_table,
    param_bytes,
    peak_activation_bytes,
)
from .latency import (
    calibrate_full_latency,
    latency_table,
    measure_latency,
    measure_latency_stats,
)

__all__ = [
    "accuracy",
    "error_rate",
    "top_k_accuracy",
    "perplexity",
    "inclusion_coefficient",
    "inclusion_matrix",
    "active_params",
    "cost_table",
    "measured_flops",
    "memory_of_profile",
    "memory_table",
    "param_bytes",
    "peak_activation_bytes",
    "measure_latency",
    "measure_latency_stats",
    "latency_table",
    "calibrate_full_latency",
]
