"""Model-level cost accounting: FLOPs and active parameter counts.

``measured_flops`` runs an instrumented forward pass, so it reports the
*actual* multiply-adds of the sliced computation — the quantity behind the
``Ct`` rows of Tables 2 and 4.  ``active_params`` sums each sliced layer's
resident parameters under a rate (the ``Mt`` rows).
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..slicing.context import slice_profile
from ..slicing.profile import as_profile
from ..tensor import Tensor, count_flops, no_grad


def measured_flops(model: Module, input_shape: tuple[int, ...],
                   rate=1.0, input_builder=None) -> int:
    """Multiply-adds of one forward pass at ``rate``.

    Parameters
    ----------
    rate:
        A scalar slice rate or a :class:`~repro.slicing.profile.SliceProfile`;
        the forward runs under the corresponding ambient profile, so the
        count is exact for non-uniform per-layer profiles too.
    input_shape:
        Shape of a dummy input batch (e.g. ``(1, 3, 16, 16)``).
    input_builder:
        Optional callable producing the dummy model input from the shape
        (for models whose input is not a float tensor, e.g. token ids).
    """
    if input_builder is None:
        dummy = Tensor(np.zeros(input_shape, dtype=np.float32))
    else:
        dummy = input_builder(input_shape)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            with slice_profile(rate):
                with count_flops() as counter:
                    model(dummy)
    finally:
        model.train(was_training)
    return counter.total


def active_params(model: Module, rate=1.0) -> int:
    """Parameters resident in memory when the model is deployed at ``rate``.

    Sliced layers report their active prefix (resolved per slice point
    when ``rate`` is a profile); plain layers report their full size.
    """
    profile = as_profile(rate)
    total = 0
    for module in model.modules():
        if hasattr(module, "active_param_count"):
            layer_rate = profile.rate_for(getattr(module, "slice_point", None))
            total += module.active_param_count(layer_rate)
        else:
            total += sum(p.size for p in module._parameters.values())
    return total


def cost_table(model: Module, input_shape: tuple[int, ...],
               rates: list[float]) -> dict[float, dict[str, float]]:
    """Per-rate cost summary: flops, params, and fractions of the full model."""
    full_flops = measured_flops(model, input_shape, rate=1.0)
    full_params = active_params(model, rate=1.0)
    table: dict[float, dict[str, float]] = {}
    for rate in rates:
        flops = measured_flops(model, input_shape, rate=rate)
        params = active_params(model, rate=rate)
        table[rate] = {
            "flops": flops,
            "params": params,
            "flops_fraction": flops / full_flops,
            "params_fraction": params / full_params,
        }
    return table
