"""Model-level cost accounting: FLOPs, parameters, and memory footprints.

``measured_flops`` runs an instrumented forward pass, so it reports the
*actual* multiply-adds of the sliced computation — the quantity behind the
``Ct`` rows of Tables 2 and 4.  ``active_params`` sums each sliced layer's
resident parameters under a rate (the ``Mt`` rows).

The memory helpers extend the same accounting to bytes, per
:class:`~repro.slicing.profile.SliceProfile`: :func:`param_bytes` is the
weight storage a deployed subnet needs resident, and
:func:`peak_activation_bytes` measures the largest input+output
activation footprint any layer holds live during a forward pass.
Together (:func:`memory_of_profile`) they feed node memory budgets in
:mod:`repro.cluster` and the ``repro profile search`` report.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..nn.module import Module
from ..slicing.context import slice_profile
from ..slicing.profile import as_profile
from ..tensor import Tensor, count_flops, no_grad


def measured_flops(model: Module, input_shape: tuple[int, ...],
                   rate=1.0, input_builder=None) -> int:
    """Multiply-adds of one forward pass at ``rate``.

    Parameters
    ----------
    rate:
        A scalar slice rate or a :class:`~repro.slicing.profile.SliceProfile`;
        the forward runs under the corresponding ambient profile, so the
        count is exact for non-uniform per-layer profiles too.
    input_shape:
        Shape of a dummy input batch (e.g. ``(1, 3, 16, 16)``).
    input_builder:
        Optional callable producing the dummy model input from the shape
        (for models whose input is not a float tensor, e.g. token ids).
    """
    if input_builder is None:
        dummy = Tensor(np.zeros(input_shape, dtype=np.float32))
    else:
        dummy = input_builder(input_shape)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            with slice_profile(rate):
                with count_flops() as counter:
                    model(dummy)
    finally:
        model.train(was_training)
    return counter.total


def active_params(model: Module, rate=1.0) -> int:
    """Parameters resident in memory when the model is deployed at ``rate``.

    Sliced layers report their active prefix (resolved per slice point
    when ``rate`` is a profile); plain layers report their full size.
    """
    profile = as_profile(rate)
    total = 0
    for module in model.modules():
        if hasattr(module, "active_param_count"):
            layer_rate = profile.rate_for(getattr(module, "slice_point", None))
            total += module.active_param_count(layer_rate)
        else:
            total += sum(p.size for p in module._parameters.values())
    return total


# Activations are float32 throughout the library; token-id inputs are
# the one integer exception and report their true itemsize.
_DEFAULT_ITEMSIZE = 4


def param_bytes(model: Module, rate=1.0) -> int:
    """Weight bytes resident when the model is deployed at ``rate``.

    The byte counterpart of :func:`active_params`: sliced layers count
    their active prefix only (what a
    :func:`~repro.slicing.deploy.materialize_subnet` artifact ships),
    plain layers their full storage.  An elastic replica that serves
    *every* rate from one model hosts ``param_bytes(model, 1.0)``.
    """
    profile = as_profile(rate)
    total = 0
    for module in model.modules():
        if hasattr(module, "active_param_count"):
            layer_rate = profile.rate_for(getattr(module, "slice_point", None))
            itemsize = max((p.data.itemsize
                            for p in module._parameters.values()),
                           default=_DEFAULT_ITEMSIZE)
            total += module.active_param_count(layer_rate) * itemsize
        else:
            total += sum(p.data.nbytes
                         for p in module._parameters.values())
    return total


def _io_bytes(value) -> int:
    """Bytes of the tensors in a module input/output structure."""
    if isinstance(value, Tensor):
        return value.data.nbytes
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (tuple, list)):
        return sum(_io_bytes(v) for v in value)
    return 0


@contextlib.contextmanager
def _record_leaf_io(sizes: list[int]):
    """Record each leaf module's live input+output bytes during forwards.

    A leaf layer's input and output activations are simultaneously live
    while it executes, so ``max`` over leaves is the peak activation
    working set of the network (weights and kernel scratch excluded).
    """
    original = Module.__call__

    def recording(self, *args, **kwargs):
        out = original(self, *args, **kwargs)
        if not self._modules:
            sizes.append(_io_bytes(args) + _io_bytes(out))
        return out

    Module.__call__ = recording
    try:
        yield
    finally:
        Module.__call__ = original


def peak_activation_bytes(model: Module, input_shape: tuple[int, ...],
                          rate=1.0, input_builder=None) -> int:
    """Peak live activation bytes of one forward pass at ``rate``.

    Measured, not modeled: the forward runs under the ambient profile
    and every leaf layer reports its live input+output footprint, so
    non-uniform per-layer profiles are accounted exactly.  Scales
    linearly with the batch dimension of ``input_shape``.
    """
    if input_builder is None:
        dummy = Tensor(np.zeros(input_shape, dtype=np.float32))
    else:
        dummy = input_builder(input_shape)
    was_training = model.training
    model.eval()
    sizes: list[int] = []
    try:
        with no_grad():
            with slice_profile(rate):
                with _record_leaf_io(sizes):
                    model(dummy)
    finally:
        model.train(was_training)
    return max(sizes, default=_io_bytes(dummy))


def memory_of_profile(model: Module, input_shape: tuple[int, ...],
                      rate=1.0, input_builder=None) -> dict[str, int]:
    """Per-profile memory footprint: weights + peak activations.

    Returns ``{"param_bytes", "peak_activation_bytes", "total_bytes",
    "batch"}`` where ``batch`` is the leading dimension the activations
    were measured at (activation bytes scale linearly with it).

    Models that expose ``kv_cache_bytes(profile)`` (decoder LMs with
    per-session KV caches) additionally report
    ``"kv_cache_bytes_per_session"`` — the *per resident session* cache
    footprint at this profile, which the cluster planner budgets
    separately from the shared weights (``total_bytes`` deliberately
    excludes it: sessions scale with users, not replicas).
    """
    params = param_bytes(model, rate)
    activations = peak_activation_bytes(model, input_shape, rate=rate,
                                        input_builder=input_builder)
    result = {
        "param_bytes": params,
        "peak_activation_bytes": activations,
        "total_bytes": params + activations,
        "batch": int(input_shape[0]),
    }
    kv_fn = getattr(model, "kv_cache_bytes", None)
    if callable(kv_fn):
        result["kv_cache_bytes_per_session"] = int(kv_fn(rate))
    return result


def memory_table(model: Module, input_shape: tuple[int, ...],
                 rates: list) -> dict:
    """Per-rate (or per-profile) :func:`memory_of_profile` summary."""
    return {rate: memory_of_profile(model, input_shape, rate=rate)
            for rate in rates}


def cost_table(model: Module, input_shape: tuple[int, ...],
               rates: list[float]) -> dict[float, dict[str, float]]:
    """Per-rate cost summary: flops, params, and fractions of the full model."""
    full_flops = measured_flops(model, input_shape, rate=1.0)
    full_params = active_params(model, rate=1.0)
    table: dict[float, dict[str, float]] = {}
    for rate in rates:
        flops = measured_flops(model, input_shape, rate=rate)
        params = active_params(model, rate=rate)
        table[rate] = {
            "flops": flops,
            "params": params,
            "flops_fraction": flops / full_flops,
            "params_fraction": params / full_params,
        }
    return table
