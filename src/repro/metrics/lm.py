"""Language-modeling metrics."""

from __future__ import annotations

import math


def perplexity(mean_nll: float) -> float:
    """``exp`` of the mean per-token negative log-likelihood."""
    return math.exp(mean_nll)
