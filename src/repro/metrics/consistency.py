"""Prediction-consistency metrics (Figure 8, Table 5 of the paper)."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def inclusion_coefficient(errors_large: np.ndarray,
                          errors_small: np.ndarray) -> float:
    """Fraction of the larger model's errors shared with the smaller one.

    The paper's Figure 8 statistic: with ``E_l`` and ``E_s`` the
    wrongly-predicted sample sets, this is ``|E_l ∩ E_s| / |E_l|``
    (1.0 for identical error sets; ~chance overlap for independent
    models).  Both arguments are boolean error masks over the same
    evaluation set.
    """
    errors_large = np.asarray(errors_large, dtype=bool)
    errors_small = np.asarray(errors_small, dtype=bool)
    if errors_large.shape != errors_small.shape:
        raise ShapeError("error masks must cover the same samples")
    denom = errors_large.sum()
    if denom == 0:
        return 1.0
    return float((errors_large & errors_small).sum() / denom)


def inclusion_matrix(error_masks: dict[float, np.ndarray]) -> np.ndarray:
    """Pairwise inclusion coefficients, rows/cols ordered by the dict keys.

    Entry ``(i, j)`` is the inclusion of model ``i``'s errors in model
    ``j``'s, where model ``i`` is treated as the larger one.
    """
    keys = list(error_masks)
    n = len(keys)
    out = np.ones((n, n))
    for i, ki in enumerate(keys):
        for j, kj in enumerate(keys):
            if i != j:
                out[i, j] = inclusion_coefficient(error_masks[ki],
                                                  error_masks[kj])
    return out
