"""Wall-clock latency measurement per slice rate.

FLOPs predict cost analytically; this module measures it: median forward
wall-clock over repeated runs, per rate, with warm-up.  Used by the
serving example to calibrate ``t`` (the full-model per-sample latency the
controller of Sec. 4.1 needs) and by the Table 4 bench to show the
promised quadratic saving is real on this machine.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module
from ..slicing.context import slice_rate
from ..tensor import Tensor, no_grad


def measure_latency(model: Module, inputs: np.ndarray, rate: float,
                    repeats: int = 5, warmup: int = 1) -> float:
    """Median forward wall-clock (seconds) at ``rate`` for ``inputs``."""
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    was_training = model.training
    model.eval()
    batch = Tensor(np.asarray(inputs, dtype=np.float32))
    times = []
    try:
        with no_grad():
            with slice_rate(rate):
                for _ in range(warmup):
                    model(batch)
                for _ in range(repeats):
                    start = time.perf_counter()
                    model(batch)
                    times.append(time.perf_counter() - start)
    finally:
        model.train(was_training)
    return float(np.median(times))


def latency_table(model: Module, inputs: np.ndarray,
                  rates: list[float], repeats: int = 5
                  ) -> dict[float, dict[str, float]]:
    """Per-rate latency with per-sample cost and fraction of full."""
    rates = sorted(set(float(r) for r in rates))
    results: dict[float, dict[str, float]] = {}
    full = None
    for rate in sorted(rates, reverse=True):
        total = measure_latency(model, inputs, rate, repeats=repeats)
        if full is None:
            full = total
        results[rate] = {
            "latency": total,
            "per_sample": total / len(inputs),
            "fraction_of_full": total / full,
        }
    return results


def calibrate_full_latency(model: Module, input_shape: tuple[int, ...],
                           repeats: int = 5) -> float:
    """Per-sample full-width latency ``t`` for the Sec. 4.1 controller."""
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=input_shape).astype(np.float32)
    total = measure_latency(model, inputs, 1.0, repeats=repeats)
    return total / input_shape[0]
