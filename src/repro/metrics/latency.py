"""Wall-clock latency measurement per slice rate.

FLOPs predict cost analytically; this module measures it: forward
wall-clock over repeated runs, per rate, with warm-up.  Beyond the
median, :func:`measure_latency_stats` and :func:`latency_table` report
tail percentiles (p50/p95/p99) — the serving runtime calibrates each
replica's :class:`~repro.runtime.replica.LatencyProfile` from the p95
column, because a controller planning against the median misses its SLO
on every slow forward.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module
from ..slicing.context import slice_rate
from ..tensor import Tensor, no_grad

PERCENTILES = (50, 95, 99)


def _forward_times(model: Module, inputs: np.ndarray, rate: float,
                   repeats: int, warmup: int, use_plan: bool = False,
                   plan_cache=None) -> list[float]:
    """Raw forward wall-clock samples (seconds) at ``rate``.

    With ``use_plan=True`` the timed path is the compiled inference plan
    (fetched through ``plan_cache``, the shared cache by default) — the
    path the serving runtime actually executes — instead of the
    uncompiled sliced forward.
    """
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    times: list[float] = []
    if use_plan:
        from ..slicing.plans import shared_cache

        cache = plan_cache if plan_cache is not None else shared_cache()
        plan = cache.get(model, rate)
        arr = np.asarray(inputs)
        for _ in range(warmup):
            plan.run(arr)
        for _ in range(repeats):
            start = time.perf_counter()
            plan.run(arr)
            times.append(time.perf_counter() - start)
        return times
    was_training = model.training
    model.eval()
    arr = np.asarray(inputs)
    # Integer inputs are token ids (e.g. the NNLM) and are consumed raw.
    batch = arr if arr.dtype.kind in "iu" \
        else Tensor(arr.astype(np.float32, copy=False))
    try:
        with no_grad():
            with slice_rate(rate):
                for _ in range(warmup):
                    model(batch)
                for _ in range(repeats):
                    start = time.perf_counter()
                    model(batch)
                    times.append(time.perf_counter() - start)
    finally:
        model.train(was_training)
    return times


def measure_latency(model: Module, inputs: np.ndarray, rate: float,
                    repeats: int = 5, warmup: int = 1,
                    use_plan: bool = False, plan_cache=None) -> float:
    """Median forward wall-clock (seconds) at ``rate`` for ``inputs``."""
    return float(np.median(_forward_times(model, inputs, rate,
                                          repeats, warmup,
                                          use_plan=use_plan,
                                          plan_cache=plan_cache)))


def measure_latency_stats(model: Module, inputs: np.ndarray, rate: float,
                          repeats: int = 5, warmup: int = 1,
                          use_plan: bool = False, plan_cache=None
                          ) -> dict[str, float]:
    """Percentile statistics of the forward wall-clock at ``rate``.

    Returns ``{"p50", "p95", "p99", "mean", "min", "max"}`` in seconds.
    """
    times = np.asarray(_forward_times(model, inputs, rate, repeats, warmup,
                                      use_plan=use_plan,
                                      plan_cache=plan_cache))
    stats = {f"p{p}": float(np.percentile(times, p)) for p in PERCENTILES}
    stats["mean"] = float(times.mean())
    stats["min"] = float(times.min())
    stats["max"] = float(times.max())
    return stats


def latency_table(model: Module, inputs: np.ndarray,
                  rates: list[float], repeats: int = 5,
                  use_plan: bool = False, plan_cache=None
                  ) -> dict[float, dict[str, float]]:
    """Per-rate latency with per-sample cost, fraction of full, and tails.

    Each entry carries the median-derived columns (``latency``,
    ``per_sample``, ``fraction_of_full``), the percentile columns
    (``p50``/``p95``/``p99``, whole-batch seconds), and ``samples`` (the
    batch size), so consumers can derive per-sample tail latencies —
    see :meth:`repro.runtime.LatencyProfile.from_latency_table`.
    ``use_plan=True`` times the compiled plan path, so the calibration
    matches what the runtime's replicas actually execute.
    """
    rates = sorted(set(float(r) for r in rates))
    results: dict[float, dict[str, float]] = {}
    full = None
    for rate in sorted(rates, reverse=True):
        times = np.asarray(_forward_times(model, inputs, rate,
                                          repeats=repeats, warmup=1,
                                          use_plan=use_plan,
                                          plan_cache=plan_cache))
        total = float(np.median(times))
        if full is None:
            full = total
        entry = {
            "latency": total,
            "per_sample": total / len(inputs),
            "fraction_of_full": total / full,
            "samples": float(len(inputs)),
        }
        for p in PERCENTILES:
            entry[f"p{p}"] = float(np.percentile(times, p))
        results[rate] = entry
    return results


def calibrate_full_latency(model: Module, input_shape: tuple[int, ...],
                           repeats: int = 5) -> float:
    """Per-sample full-width latency ``t`` for the Sec. 4.1 controller."""
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=input_shape).astype(np.float32)
    total = measure_latency(model, inputs, 1.0, repeats=repeats)
    return total / input_shape[0]
