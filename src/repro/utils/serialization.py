"""Model (de)serialization to ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module


def save_model(model: Module, path: str) -> None:
    """Write the model's ``state_dict`` to ``path`` (npz archive)."""
    state = model.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_model(model: Module, path: str) -> Module:
    """Load a ``state_dict`` previously written by :func:`save_model`."""
    if not os.path.exists(path):
        raise ConfigError(f"no checkpoint at {path}")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
    return model
