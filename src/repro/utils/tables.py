"""Plain-text table rendering for benchmark output.

The benchmark harness prints each reproduced table/figure as aligned rows
so the output can be compared with the paper side by side.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a monospace table with aligned columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(v) for v in row])
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
