"""Terminal-friendly renderings of the paper's figures.

The benchmark harness reports tables; for the figure artifacts that are
inherently visual (heatmaps, curves) these helpers add an ASCII rendering
so the reproduced shape is visible at a glance in the benchmark output.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError

_SHADES = " .:-=+*#%@"


def heatmap(matrix: np.ndarray, row_labels: Sequence[str] | None = None,
            col_labels: Sequence[str] | None = None,
            vmin: float | None = None, vmax: float | None = None,
            title: str | None = None) -> str:
    """Render a matrix as a character-shade heatmap."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ConfigError("heatmap expects a 2D matrix")
    lo = matrix.min() if vmin is None else vmin
    hi = matrix.max() if vmax is None else vmax
    span = (hi - lo) or 1.0
    rows, cols = matrix.shape
    if row_labels is None:
        row_labels = [str(i) for i in range(rows)]
    if col_labels is None:
        col_labels = [str(j) for j in range(cols)]
    label_width = max(len(str(l)) for l in row_labels)

    lines = []
    if title:
        lines.append(title)
    header = " " * (label_width + 1) + " ".join(
        str(c)[:2].rjust(2) for c in col_labels)
    lines.append(header)
    for i in range(rows):
        cells = []
        for j in range(cols):
            level = (matrix[i, j] - lo) / span
            idx = int(round(level * (len(_SHADES) - 1)))
            idx = min(max(idx, 0), len(_SHADES) - 1)
            cells.append(_SHADES[idx] * 2)
        lines.append(str(row_labels[i]).rjust(label_width) + " "
                     + " ".join(cells))
    lines.append(f"scale: '{_SHADES[0]}'={lo:.3g} .. "
                 f"'{_SHADES[-1]}'={hi:.3g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a sequence as a one-line unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ConfigError("sparkline needs at least one value")
    if width is not None and values.size > width:
        # Downsample by averaging buckets.
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([values[a:b].mean() if b > a else values[a - 1]
                           for a, b in zip(edges, edges[1:])])
    lo, hi = values.min(), values.max()
    span = (hi - lo) or 1.0
    chars = []
    for value in values:
        idx = int(round((value - lo) / span * (len(blocks) - 1)))
        chars.append(blocks[min(max(idx, 0), len(blocks) - 1)])
    return "".join(chars)


def curve_panel(series: dict[str, Sequence[float]], width: int = 60,
                title: str | None = None) -> str:
    """Render several curves as labelled sparklines with endpoints."""
    if not series:
        raise ConfigError("curve_panel needs at least one series")
    label_width = max(len(name) for name in series)
    lines = [title] if title else []
    for name, values in series.items():
        values = list(values)
        spark = sparkline(values, width=width)
        lines.append(f"{name.rjust(label_width)} {spark} "
                     f"[{values[0]:.3g} -> {values[-1]:.3g}]")
    return "\n".join(lines)
