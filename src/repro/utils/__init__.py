"""Utilities: seeding, table formatting, serialization."""

from .seeding import child_rngs, rng_from
from .tables import format_table
from .serialization import load_model, save_model
from .ascii_plots import curve_panel, heatmap, sparkline

__all__ = ["rng_from", "child_rngs", "format_table", "save_model",
           "load_model", "heatmap", "sparkline", "curve_panel"]
