"""Deterministic seeding helpers."""

from __future__ import annotations

import numpy as np


def rng_from(seed: int) -> np.random.Generator:
    """A fresh generator for ``seed``."""
    return np.random.default_rng(seed)


def child_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Independent child generators derived from one master seed."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]
