"""Unified observability: one metrics registry + one trace, per process.

The library's hot paths — the Algorithm-1 trainer, the continuous-time
runtime, the serving controllers, the experiment cache — are
instrumented against the module-level helpers here (:func:`count`,
:func:`gauge`, :func:`observe`, :func:`span`, :func:`span_at`,
:func:`event`).  Observability is **disabled by default**: every helper
first checks one module-global flag and returns immediately, so the
instrumented code paths are numerically and behaviourally identical with
telemetry off, at near-zero overhead.

Typical use::

    from repro import obs

    registry, tracer = obs.configure(trace_path="run.jsonl",
                                     clock=obs.TickClock())
    ...   # train / serve; spans, events and metrics accumulate
    obs.shutdown()            # append the metrics snapshot, close the sink

    print(registry.to_prometheus())          # scrape-ready text format

Determinism: the tracer's clock is injectable (``WallClock`` by default,
``ManualClock``/``TickClock`` for reproducible runs), and the runtime
engine stamps its records with *simulated* timestamps, so a seeded
simulated-time run writes a byte-identical JSONL trace every time.

The metric catalog (names, kinds and help strings) lives in
``_CATALOG`` below and is documented in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .clock import ManualClock, TickClock, WallClock
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentiles_from_buckets,
)
from .trace import Tracer, dumps_record

__all__ = [
    "ManualClock",
    "TickClock",
    "WallClock",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentiles_from_buckets",
    "Tracer",
    "dumps_record",
    "enabled",
    "disabled",
    "configure",
    "disable",
    "shutdown",
    "registry",
    "tracer",
    "clock_now",
    "span",
    "span_at",
    "event",
    "count",
    "gauge",
    "observe",
]

# Help text per metric name, attached when a helper first creates the
# metric and exported in the Prometheus HELP lines.  Keep in sync with
# docs/observability.md.
_CATALOG = {
    # -- training (repro.slicing.trainer) --
    "train_steps_total": "Optimizer updates (Algorithm-1 batches).",
    "train_rate_scheduled_total":
        "Forward/backward passes per scheduled slice rate.",
    "train_loss": "Last observed training loss per slice rate.",
    "train_grad_norm":
        "Global gradient norm of the last accumulated update.",
    "train_step_seconds": "Wall (or injected-clock) time per train step.",
    # -- training fast path (repro.tensor.workspace / fused) --
    "train_fast_steps_total":
        "Train steps that ran under a pooled workspace arena.",
    "train_ws_pool_hits_total":
        "Workspace buffer requests served from the pool, by scope.",
    "train_ws_pool_misses_total":
        "Workspace buffer requests that allocated, by scope.",
    "train_ws_col_reuses_total":
        "Forward passes that reused the pinned input's im2col columns.",
    "train_ws_bytes": "Bytes resident in the workspace arena's pools.",
    "train_layer_seconds":
        "Fast-path kernel time by layer type and phase.",
    # -- runtime (repro.runtime) --
    "runtime_queue_depth": "Requests waiting in the admission queue.",
    "runtime_queue_backpressure": "Queue fullness in [0, 1].",
    "runtime_requests_total": "Finalized requests per terminal outcome.",
    "runtime_retries_total": "Failed-batch requests re-admitted for retry.",
    "runtime_batches_total": "Batches formed per chosen slice rate.",
    "runtime_batch_size": "Requests per formed batch.",
    "runtime_batch_occupancy":
        "Share of max_batch_size used by the last batch.",
    "runtime_dispatches_total": "Batches dispatched per replica.",
    "runtime_service_seconds":
        "Simulated service time per dispatched batch, by result cause.",
    "runtime_faults_total": "Injected fault events per kind.",
    "runtime_quarantines_total": "Replicas taken out of rotation.",
    "runtime_health_detections_total":
        "Crashed replicas detected by the periodic health check.",
    "runtime_replicas_in_rotation": "Replicas believed healthy.",
    # -- process workers (repro.runtime.workers) --
    "worker_requests_total":
        "Requests served by each worker process, per op.",
    "worker_ipc_seconds":
        "Parent-side round-trip time of worker pipe requests, per op.",
    "worker_refreshes_total":
        "Shared-arena version counters adopted by worker processes "
        "(each adoption invalidates that worker's stale plans).",
    # -- serving controllers (repro.serving.controller) --
    "controller_decisions_total":
        "Slice-rate decisions per chosen rate ('none' = infeasible).",
    "controller_latency_estimate":
        "Adaptive controller's full-width per-sample latency estimate.",
    # -- experiment cache (repro.experiments.cache) --
    "expcache_hits_total": "Experiment-cache lookups served from disk.",
    "expcache_misses_total": "Experiment-cache lookups that missed.",
    # -- inference plans (repro.slicing.plans) --
    "plan_cache_hits_total": "Plan-cache lookups served without recompiling.",
    "plan_cache_misses_total": "Plan-cache lookups that compiled a new plan.",
    "plan_cache_invalidations_total":
        "Cached plans dropped because model parameters changed.",
    "plan_cache_evictions_total": "Plans evicted by the cache's LRU policy.",
    "plan_cache_size": "Plans currently resident in the cache.",
    "plan_compiles_total": "Plan compilations per model class.",
    "plan_fallbacks_total":
        "Plans that fell back to the uncompiled sliced forward.",
    # -- cluster fleet (repro.cluster) --
    "cluster_nodes": "Fleet nodes per lifecycle state.",
    "cluster_node_utilization":
        "Per-node utilization at the window's chosen profile.",
    "cluster_windows_total": "Simulated windows per chosen slice profile.",
    "cluster_requests_total":
        "Windowed requests per result (served within SLO vs dropped).",
    "cluster_slo_violations_total":
        "Windows where demand exceeded the cheapest profile's capacity.",
    "cluster_autoscale_events_total":
        "Autoscaler actions per kind (scale-up vs drain).",
    # -- slice-quality diagnostics (repro.diagnose) --
    "diagnose_examples_total":
        "Examples evaluated by the diagnostic sweep, per profile.",
    "diagnose_errors_total":
        "Misclassified examples in the diagnostic sweep, per profile.",
    "diagnose_error_slices":
        "Embedding-space error slices found by the last diagnosis.",
    "diagnose_worst_slice_accuracy":
        "Accuracy of each profile's worst discovered data slice.",
    "diagnose_layer_divergence":
        "Activation divergence (1 - cosine) vs the full net, per "
        "slice point, at the diagnosed reference profile.",
    # -- per-slice serving telemetry (repro.runtime.engine) --
    "runtime_slice_requests_total":
        "Finalized requests per data-slice label and terminal outcome "
        "(only when the runtime is given slice labels).",
}

# Non-default histogram buckets per metric name.
_BUCKETS: dict[str, Sequence[float]] = {
    "runtime_batch_size": (1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
}

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()


# -- lifecycle ----------------------------------------------------------
def enabled() -> bool:
    """Whether telemetry is being recorded."""
    return _enabled


def disabled() -> bool:
    """The no-op fast path: True unless :func:`configure` has run."""
    return not _enabled


def configure(trace_path: str | None = None,
              clock: Callable[[], float] | None = None
              ) -> tuple[MetricsRegistry, Tracer]:
    """Enable observability with a fresh registry and tracer.

    ``trace_path`` directs span/event records to a JSONL file (in-memory
    otherwise); ``clock`` injects the tracer's time source (wall clock by
    default — pass :class:`ManualClock`/:class:`TickClock` for
    deterministic traces).
    """
    global _enabled, _registry, _tracer
    _registry = MetricsRegistry()
    _tracer = Tracer(trace_path, clock)
    _enabled = True
    return _registry, _tracer


def disable() -> None:
    """Stop recording; the current registry/tracer stay readable."""
    global _enabled
    _enabled = False


def shutdown(write_metrics: bool = True) -> None:
    """Snapshot the metrics into the trace, close the sink, disable."""
    global _enabled
    if _enabled and write_metrics and len(_registry):
        _tracer.write_metrics(_registry)
    _tracer.close()
    _enabled = False


def registry() -> MetricsRegistry:
    """The active (most recently configured) metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The active (most recently configured) tracer."""
    return _tracer


def clock_now() -> float:
    """One reading of the tracer's clock."""
    return _tracer.clock()


# -- instrumentation helpers (no-ops while disabled) ---------------------
class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """A clock-timed span context manager (no-op while disabled)."""
    if not _enabled:
        return _NULL_SPAN
    return _tracer.span(name, **attrs)


def span_at(name: str, start: float, end: float,
            parent: int | None = None, **attrs) -> int | None:
    """Record an explicit-timestamp span; returns its id (None if off)."""
    if not _enabled:
        return None
    return _tracer.span_at(name, start, end, parent=parent, **attrs)


def event(name: str, at: float | None = None,
          parent: int | None = None, **attrs) -> int | None:
    """Record a point event; returns its id (None while disabled)."""
    if not _enabled:
        return None
    return _tracer.event(name, at=at, parent=parent, **attrs)


def count(name: str, amount: float = 1.0, **labels) -> None:
    """Increment the counter ``name`` (auto-created from the catalog)."""
    if not _enabled:
        return
    _registry.counter(name, _CATALOG.get(name, "")).inc(amount, **labels)


def gauge(name: str, value: float, **labels) -> None:
    """Set the gauge ``name`` to ``value``."""
    if not _enabled:
        return
    _registry.gauge(name, _CATALOG.get(name, "")).set(value, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Record ``value`` into the histogram ``name``."""
    if not _enabled:
        return
    _registry.histogram(name, _CATALOG.get(name, ""),
                        buckets=_BUCKETS.get(name)).observe(value, **labels)
