"""Process-local metrics registry: counters, gauges, histograms.

A deliberately small, dependency-free re-implementation of the
Prometheus data model.  Metrics are created (or fetched) from a
:class:`MetricsRegistry` by name; each metric holds one time series per
distinct label set, keyed by the sorted ``(label, value)`` pairs so the
same labels in any order address the same series.  The registry exports
the standard Prometheus text exposition format (:meth:`to_prometheus`)
and a JSON-friendly dict (:meth:`to_dict`) that the trace sink embeds as
the end-of-run snapshot.

Everything is deterministic: series and metrics are emitted in sorted
order, so two identical runs export byte-identical snapshots.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..errors import ConfigError

# Label sets are canonicalized to sorted (name, value-as-str) tuples.
LabelKey = tuple[tuple[str, str], ...]

DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                   0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical hashable key for a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()
                   ) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base class: a named family of labelled time series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not name or not name.replace("_", "a").isalnum():
            raise ConfigError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help

    def labelled(self) -> list[LabelKey]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    def prometheus_lines(self) -> list[str]:
        raise NotImplementedError

    def header_lines(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(Metric):
    """A monotonically increasing count, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> float:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name} cannot decrease (inc {amount})")
        key = label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount
        return self._series[key]

    def value(self, **labels) -> float:
        return self._series.get(label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._series.values())

    def labelled(self) -> list[LabelKey]:
        return sorted(self._series)

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [{"labels": dict(key), "value": self._series[key]}
                        for key in sorted(self._series)],
        }

    def prometheus_lines(self) -> list[str]:
        return [f"{self.name}{_format_labels(key)} "
                f"{_format_value(self._series[key])}"
                for key in sorted(self._series)]


class Gauge(Counter):
    """A value that can go up and down (last-write-wins per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> float:
        self._series[label_key(labels)] = float(value)
        return float(value)

    def inc(self, amount: float = 1.0, **labels) -> float:
        key = label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount
        return self._series[key]

    def dec(self, amount: float = 1.0, **labels) -> float:
        return self.inc(-amount, **labels)


def percentiles_from_buckets(bounds: Sequence[float],
                             cumulative: Sequence[int], total: int,
                             ps: Sequence[int] = (50, 95, 99)
                             ) -> dict[str, float | None]:
    """Estimate percentiles from cumulative bucket counts.

    Standard Prometheus-style estimation: find the bucket owning each
    target rank and interpolate linearly inside it (the first finite
    bucket's lower edge is 0.0 for positive bounds; observations in the
    ``+Inf`` bucket clamp to the highest finite bound, so estimates
    never exceed it).  An empty series delegates to the runtime
    telemetry helper so the ``None``-per-percentile contract — and its
    ``-`` table rendering — is shared with exact-series percentiles.
    """
    if total <= 0:
        from ..runtime.telemetry import percentiles
        return percentiles((), ps)
    bounds = [float(b) for b in bounds]
    cumulative = [int(c) for c in cumulative]
    out: dict[str, float | None] = {}
    for p in ps:
        rank = total * p / 100.0
        result = bounds[-1]                  # +Inf bucket clamps here
        for i, (bound, cum) in enumerate(zip(bounds, cumulative)):
            if cum >= rank:
                lower = (0.0 if i == 0 and bound > 0.0 else
                         bounds[i - 1] if i > 0 else bound)
                prev = cumulative[i - 1] if i > 0 else 0
                in_bucket = cum - prev
                if in_bucket <= 0:
                    result = bound
                else:
                    frac = (rank - prev) / in_bucket
                    result = lower + (bound - lower) * min(max(frac, 0.0),
                                                           1.0)
                break
        out[f"p{p}"] = float(result)
    return out


class Histogram(Metric):
    """Cumulative-bucket histogram, one set of buckets per label set."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] | None = None):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in
                              (buckets if buckets is not None
                               else DEFAULT_BUCKETS)))
        if not bounds:
            raise ConfigError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ConfigError(f"histogram {name} has duplicate buckets")
        self.buckets = bounds
        # key -> [per-bucket counts..., +Inf count]; plus sum and count.
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        key = label_key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels) -> int:
        return sum(self._counts.get(label_key(labels), []))

    def sum(self, **labels) -> float:
        return self._sums.get(label_key(labels), 0.0)

    def mean(self, **labels) -> float:
        count = self.count(**labels)
        return self.sum(**labels) / count if count else 0.0

    def bucket_counts(self, **labels) -> dict[str, int]:
        """Cumulative counts per upper bound (Prometheus ``le`` semantics)."""
        counts = self._counts.get(label_key(labels),
                                  [0] * (len(self.buckets) + 1))
        out: dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out[_format_value(bound)] = running
        out["+Inf"] = running + counts[-1]
        return out

    def percentile_estimates(self, ps: Sequence[int] = (50, 95, 99),
                             **labels) -> dict[str, float | None]:
        """Bucket-interpolated percentile estimates for one label set."""
        counts = self._counts.get(label_key(labels),
                                  [0] * (len(self.buckets) + 1))
        cumulative = []
        running = 0
        for n in counts[:-1]:
            running += n
            cumulative.append(running)
        return percentiles_from_buckets(self.buckets, cumulative,
                                        sum(counts), ps)

    def labelled(self) -> list[LabelKey]:
        return sorted(self._counts)

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [{
                "labels": dict(key),
                "count": sum(self._counts[key]),
                "sum": self._sums.get(key, 0.0),
                "buckets": self.bucket_counts(**dict(key)),
                "percentiles": self.percentile_estimates(**dict(key)),
            } for key in sorted(self._counts)],
        }

    def prometheus_lines(self) -> list[str]:
        lines = []
        for key in sorted(self._counts):
            for bound, cumulative in self.bucket_counts(**dict(key)).items():
                lines.append(
                    f"{self.name}_bucket"
                    f"{_format_labels(key, (('le', bound),))} {cumulative}")
            lines.append(f"{self.name}_sum{_format_labels(key)} "
                         f"{_format_value(self._sums.get(key, 0.0))}")
            lines.append(f"{self.name}_count{_format_labels(key)} "
                         f"{sum(self._counts[key])}")
        return lines


class MetricsRegistry:
    """Get-or-create store of named metrics with uniform export."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def reset(self) -> None:
        self._metrics.clear()

    # -- get-or-create constructors -------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] | None = None) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
            return metric
        if type(existing) is not Histogram:
            raise ConfigError(
                f"metric {name!r} already registered as {existing.kind}")
        return existing

    def _register(self, name: str, cls, help: str):
        existing = self._metrics.get(name)
        if existing is None:
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric
        if type(existing) is not cls:
            raise ConfigError(
                f"metric {name!r} already registered as {existing.kind}")
        return existing

    # -- export ----------------------------------------------------------
    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (sorted, deterministic)."""
        lines: list[str] = []
        for metric in self:
            lines.extend(metric.header_lines())
            lines.extend(metric.prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        return {metric.name: metric.to_dict() for metric in self}

    def rows(self) -> list[tuple[str, str, float | None]]:
        """Flat ``(metric, labels, value)`` rows for table rendering.

        Histograms contribute ``_count`` / ``_mean`` plus bucket-
        estimated ``_p50`` / ``_p95`` / ``_p99`` rows (``None`` — rendered
        ``-`` — when the series is empty).
        """
        rows: list[tuple[str, str, float | None]] = []
        for metric in self:
            for key in metric.labelled():
                labels = _format_labels(key)
                if isinstance(metric, Histogram):
                    kwargs = dict(key)
                    rows.append((metric.name + "_count", labels,
                                 float(metric.count(**kwargs))))
                    rows.append((metric.name + "_mean", labels,
                                 metric.mean(**kwargs)))
                    estimates = metric.percentile_estimates(**kwargs)
                    for pname, value in estimates.items():
                        rows.append((f"{metric.name}_{pname}", labels,
                                     value))
                else:
                    rows.append((metric.name, labels,
                                 metric._series[key]))
        return rows
