"""Structured spans and events with a deterministic JSONL sink.

A :class:`Tracer` records three kinds of JSON-line records:

* ``span`` — a named interval with ``start``/``end``/``dur`` and
  arbitrary attributes.  Spans nest: the context-manager form
  (:meth:`Tracer.span`) maintains a stack, and every record carries the
  id of its enclosing span in ``parent``.  Timestamps come either from
  the injectable clock (context-manager spans) or are supplied
  explicitly (:meth:`span_at` — how the simulated-time runtime stamps
  request lifecycles without any wall-clock leakage).
* ``event`` — a named instant with attributes.
* ``metrics`` — an end-of-run snapshot of a
  :class:`~repro.obs.metrics.MetricsRegistry`.

Records are serialized with sorted keys and compact separators, and ids
are a plain monotone counter, so a deterministic program writes a
byte-identical trace on every run.
"""

from __future__ import annotations

import json
from typing import Callable

from ..errors import ConfigError
from .clock import WallClock


def _json_default(value):
    """Best-effort coercion for non-JSON scalars (numpy etc.)."""
    for cast in (float, str):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    raise TypeError(f"cannot serialize {type(value)}")  # pragma: no cover


def dumps_record(record: dict) -> str:
    """The canonical (deterministic) serialization of one trace record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


class _SpanContext:
    """Context manager recording one clock-timed span on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent", "start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = None
        self.parent = None
        self.start = None

    def __enter__(self) -> "_SpanContext":
        self.span_id = self._tracer._next_id()
        self.parent = self._tracer.current_span
        self._tracer._stack.append(self.span_id)
        self.start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._tracer.clock()
        self._tracer._stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._emit({
            "kind": "span", "id": self.span_id, "parent": self.parent,
            "name": self.name, "start": self.start, "end": end,
            "dur": end - self.start, "attrs": self.attrs,
        })


class Tracer:
    """Span/event recorder writing JSONL to a file or an in-memory list."""

    def __init__(self, path: str | None = None,
                 clock: Callable[[], float] | None = None):
        self.path = path
        self.clock = clock if clock is not None else WallClock()
        self.records: list[dict] = []      # in-memory sink (path is None)
        self._stack: list[int] = []
        self._count = 0
        self._handle = None
        self._closed = False

    # -- identity and nesting -------------------------------------------
    @property
    def current_span(self) -> int | None:
        """Id of the innermost open context-manager span, if any."""
        return self._stack[-1] if self._stack else None

    def _next_id(self) -> int:
        self._count += 1
        return self._count

    def __len__(self) -> int:
        return self._count

    # -- recording -------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanContext:
        """A clock-timed span as a context manager (nests via a stack)."""
        return _SpanContext(self, name, attrs)

    def span_at(self, name: str, start: float, end: float,
                parent: int | None = None, **attrs) -> int:
        """Record a span with explicit timestamps (simulated time).

        ``parent`` defaults to the innermost open context-manager span.
        Returns the span id, usable as the ``parent`` of child records.
        """
        if end < start:
            raise ConfigError(f"span {name!r} ends before it starts "
                              f"({end} < {start})")
        span_id = self._next_id()
        self._emit({
            "kind": "span", "id": span_id,
            "parent": parent if parent is not None else self.current_span,
            "name": name, "start": float(start), "end": float(end),
            "dur": float(end) - float(start), "attrs": attrs,
        })
        return span_id

    def event(self, name: str, at: float | None = None,
              parent: int | None = None, **attrs) -> int:
        """Record a point event (clock-stamped unless ``at`` is given)."""
        event_id = self._next_id()
        self._emit({
            "kind": "event", "id": event_id,
            "parent": parent if parent is not None else self.current_span,
            "name": name,
            "time": float(at) if at is not None else self.clock(),
            "attrs": attrs,
        })
        return event_id

    def write_metrics(self, registry) -> None:
        """Append a ``metrics`` snapshot record (end-of-run export)."""
        self._emit({"kind": "metrics", "id": self._next_id(),
                    "metrics": registry.to_dict()})

    # -- sink ------------------------------------------------------------
    def _emit(self, record: dict) -> None:
        if self._closed:
            raise ConfigError("tracer is closed")
        if self.path is None:
            self.records.append(record)
            return
        if self._handle is None:
            self._handle = open(self.path, "w")
        self._handle.write(dumps_record(record) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the sink; further emits raise."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._closed = True
