"""Summarize a JSONL trace: top spans, event counts, metric snapshot.

This is the read side of :mod:`repro.obs` — ``repro obs summarize``
loads a trace written by the tracer (or by
:meth:`~repro.slicing.trainer.SliceTrainer.export_history`) and renders
aligned text tables via :func:`repro.utils.tables.format_table`: spans
aggregated by name and ranked by total time, events by count, and the
end-of-run metrics snapshot flattened to one row per labelled series.
"""

from __future__ import annotations

import json

from ..errors import DataError
from ..utils.tables import format_table


def load_records(path: str) -> list[dict]:
    """Parse a JSONL trace file into its records (skipping blank lines)."""
    records = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DataError(
                    f"{path}:{lineno}: not a JSON record: {exc}") from exc
    return records


def span_rows(records: list[dict]) -> list[list[object]]:
    """Per-span-name aggregate rows, ranked by total duration."""
    stats: dict[str, list[float]] = {}  # name -> [count, total, max]
    for record in records:
        if record.get("kind") != "span":
            continue
        entry = stats.setdefault(record["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.get("dur", 0.0)
        entry[2] = max(entry[2], record.get("dur", 0.0))
    rows = [[name, int(count), total, total / count, peak]
            for name, (count, total, peak) in stats.items()]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def event_rows(records: list[dict]) -> list[list[object]]:
    """Per-event-name counts, most frequent first."""
    counts: dict[str, int] = {}
    for record in records:
        if record.get("kind") != "event":
            continue
        counts[record["name"]] = counts.get(record["name"], 0) + 1
    rows = [[name, count] for name, count in counts.items()]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def merge_metric_snapshots(snapshots: list[dict]) -> dict:
    """Merge end-of-run metric snapshots from several traces into one.

    Counters and histogram counts/sums/buckets add up across traces
    (each trace observed a disjoint share of the work); gauges keep the
    last trace's value (last-write-wins, matching single-trace
    semantics).  Histogram percentile estimates are recomputed from the
    merged buckets, so the merged summary reports the percentiles of
    the union.
    """
    from .metrics import percentiles_from_buckets

    merged: dict = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            target = merged.setdefault(
                name, {"type": data.get("type"),
                       "help": data.get("help", ""), "samples": []})
            by_labels = {tuple(sorted(s["labels"].items())): s
                         for s in target["samples"]}
            for sample in data.get("samples", []):
                key = tuple(sorted(sample["labels"].items()))
                existing = by_labels.get(key)
                if existing is None:
                    target["samples"].append(json.loads(json.dumps(sample)))
                elif data.get("type") == "histogram":
                    existing["count"] += sample["count"]
                    existing["sum"] += sample["sum"]
                    for bound, cum in sample.get("buckets", {}).items():
                        existing["buckets"][bound] = (
                            existing["buckets"].get(bound, 0) + cum)
                elif data.get("type") == "counter":
                    existing["value"] += sample["value"]
                else:                      # gauge: last trace wins
                    existing["value"] = sample["value"]
    for data in merged.values():
        data["samples"].sort(key=lambda s: sorted(s["labels"].items()))
        if data.get("type") == "histogram":
            for sample in data["samples"]:
                buckets = sample.get("buckets", {})
                finite = sorted((float(b), c) for b, c in buckets.items()
                                if b != "+Inf")
                sample["percentiles"] = percentiles_from_buckets(
                    [b for b, _ in finite], [c for _, c in finite],
                    int(buckets.get("+Inf", sample["count"])))
    return merged


def last_snapshot(records: list[dict]) -> dict | None:
    """The final ``metrics`` record of one trace (later snapshots win)."""
    snapshot = None
    for record in records:
        if record.get("kind") == "metrics":
            snapshot = record["metrics"]
    return snapshot


def metric_rows(records: list[dict],
                snapshot: dict | None = None) -> list[list[object]]:
    """Flatten a ``metrics`` snapshot to (metric, labels, value) rows.

    Defaults to the last snapshot in ``records`` (single-trace
    semantics); pass a pre-merged ``snapshot`` for multi-trace rows.
    """
    if snapshot is None:
        snapshot = last_snapshot(records)
    if snapshot is None:
        return []
    rows: list[list[object]] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        for sample in data.get("samples", []):
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(sample["labels"].items()))
            if data.get("type") == "histogram":
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                rows.append([name + "_count", labels, float(count)])
                rows.append([name + "_mean", labels, mean])
                estimates = sample.get("percentiles", {})
                for pname in sorted(estimates):
                    rows.append([f"{name}_{pname}", labels,
                                 estimates[pname]])
            else:
                rows.append([name, labels, sample["value"]])
    return rows


def summarize(paths: str | list[str], top: int = 15) -> str:
    """Render the standard summary of one or more JSONL trace files.

    Multiple paths merge into a single summary: spans and events
    aggregate across every record, and per-trace metric snapshots
    combine via :func:`merge_metric_snapshots`.
    """
    if isinstance(paths, str):
        paths = [paths]
    if not paths:
        raise DataError("summarize needs at least one trace file")
    records: list[dict] = []
    snapshots: list[dict] = []
    for path in paths:
        loaded = load_records(path)
        records.extend(loaded)
        snapshot = last_snapshot(loaded)
        if snapshot is not None:
            snapshots.append(snapshot)
    merged = (snapshots[0] if len(snapshots) == 1
              else merge_metric_snapshots(snapshots) if snapshots else None)
    location = (paths[0] if len(paths) == 1
                else f"{len(paths)} traces ({', '.join(paths)})")
    parts: list[str] = [f"{len(records)} records in {location}"]

    spans = span_rows(records)
    if spans:
        shown = spans[:top]
        title = f"top spans by total time ({len(shown)} of {len(spans)})"
        parts.append(format_table(
            ["span", "count", "total", "mean", "max"], shown, title=title))
    events = event_rows(records)
    if events:
        parts.append(format_table(["event", "count"], events[:top],
                                  title="events"))
    metrics = metric_rows(records, snapshot=merged)
    if metrics:
        parts.append(format_table(["metric", "labels", "value"], metrics,
                                  title="metrics snapshot"))
    if len(parts) == 1:
        parts.append("(no spans, events, or metrics records)")
    return "\n\n".join(parts)
