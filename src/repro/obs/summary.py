"""Summarize a JSONL trace: top spans, event counts, metric snapshot.

This is the read side of :mod:`repro.obs` — ``repro obs summarize``
loads a trace written by the tracer (or by
:meth:`~repro.slicing.trainer.SliceTrainer.export_history`) and renders
aligned text tables via :func:`repro.utils.tables.format_table`: spans
aggregated by name and ranked by total time, events by count, and the
end-of-run metrics snapshot flattened to one row per labelled series.
"""

from __future__ import annotations

import json

from ..errors import DataError
from ..utils.tables import format_table


def load_records(path: str) -> list[dict]:
    """Parse a JSONL trace file into its records (skipping blank lines)."""
    records = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DataError(
                    f"{path}:{lineno}: not a JSON record: {exc}") from exc
    return records


def span_rows(records: list[dict]) -> list[list[object]]:
    """Per-span-name aggregate rows, ranked by total duration."""
    stats: dict[str, list[float]] = {}  # name -> [count, total, max]
    for record in records:
        if record.get("kind") != "span":
            continue
        entry = stats.setdefault(record["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.get("dur", 0.0)
        entry[2] = max(entry[2], record.get("dur", 0.0))
    rows = [[name, int(count), total, total / count, peak]
            for name, (count, total, peak) in stats.items()]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows


def event_rows(records: list[dict]) -> list[list[object]]:
    """Per-event-name counts, most frequent first."""
    counts: dict[str, int] = {}
    for record in records:
        if record.get("kind") != "event":
            continue
        counts[record["name"]] = counts.get(record["name"], 0) + 1
    rows = [[name, count] for name, count in counts.items()]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def metric_rows(records: list[dict]) -> list[list[object]]:
    """Flatten the last ``metrics`` snapshot to (metric, labels, value)."""
    snapshot = None
    for record in records:
        if record.get("kind") == "metrics":
            snapshot = record["metrics"]
    if snapshot is None:
        return []
    rows: list[list[object]] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        for sample in data.get("samples", []):
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(sample["labels"].items()))
            if data.get("type") == "histogram":
                count = sample["count"]
                mean = sample["sum"] / count if count else 0.0
                rows.append([name + "_count", labels, float(count)])
                rows.append([name + "_mean", labels, mean])
            else:
                rows.append([name, labels, sample["value"]])
    return rows


def summarize(path: str, top: int = 15) -> str:
    """Render the standard summary of one JSONL trace file."""
    records = load_records(path)
    parts: list[str] = [f"{len(records)} records in {path}"]

    spans = span_rows(records)
    if spans:
        shown = spans[:top]
        title = f"top spans by total time ({len(shown)} of {len(spans)})"
        parts.append(format_table(
            ["span", "count", "total", "mean", "max"], shown, title=title))
    events = event_rows(records)
    if events:
        parts.append(format_table(["event", "count"], events[:top],
                                  title="events"))
    metrics = metric_rows(records)
    if metrics:
        parts.append(format_table(["metric", "labels", "value"], metrics,
                                  title="metrics snapshot"))
    if len(parts) == 1:
        parts.append("(no spans, events, or metrics records)")
    return "\n\n".join(parts)
