"""Injectable clocks for the tracer.

Telemetry timestamps come from a zero-argument callable, so the clock is
a policy choice: wall time for production runs, a manually-advanced or
tick-per-call clock for simulated-time runs where the trace must be
byte-identical across executions (the runtime engine additionally stamps
its records with explicit simulated timestamps, bypassing the clock
entirely).
"""

from __future__ import annotations

import time

from ..errors import ConfigError


class WallClock:
    """Real elapsed seconds (``time.perf_counter``); the default clock."""

    def __call__(self) -> float:
        return time.perf_counter()


class ManualClock:
    """A clock that only moves when told to — for simulated time.

    The owner advances it (``advance``/``set``) as its own notion of time
    progresses; every read in between sees the same instant, so repeated
    runs produce identical timestamps.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ConfigError(f"clock cannot run backwards (delta={delta})")
        self.now += delta
        return self.now

    def set(self, now: float) -> float:
        if now < self.now:
            raise ConfigError(
                f"clock cannot run backwards ({now} < {self.now})")
        self.now = float(now)
        return self.now


class TickClock:
    """A deterministic clock that advances a fixed step per *read*.

    Useful when instrumented code runs outside any simulated timeline
    (e.g. training before a simulated serving run): timestamps stay
    strictly monotone and byte-identical across runs, at the price of
    measuring call counts rather than seconds.
    """

    def __init__(self, step: float = 1e-6, start: float = 0.0):
        if step <= 0:
            raise ConfigError(f"tick step must be positive, got {step}")
        self.step = float(step)
        self.start = float(start)
        self.ticks = 0

    def __call__(self) -> float:
        now = self.start + self.ticks * self.step
        self.ticks += 1
        return now
