"""Module containers."""

from __future__ import annotations

from ..tensor import Tensor
from .module import Module


class Sequential(Module):
    """Run child modules in order, feeding each one's output to the next."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        self.register_module(str(len(self._items)), module)
        self._items.append(module)

    def register_module(self, name: str, module: Module) -> None:
        super().register_module(name, module)
        # Keep the ordered item list in sync when an existing slot is
        # replaced (e.g. by upgrade_model).
        if name.isdigit() and int(name) < len(self._items):
            self._items[int(name)] = module

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x
