"""Multi-head self-attention with head-group slicing.

The slice axis of attention is the *head group*: slicing drops whole
trailing heads, so every retained head keeps its full ``head_dim`` and the
Eq. 2 prefix-nesting property holds per group ("Slicing Vision Transformer
for Flexible Inference", arXiv:2412.04786, shows per-head nesting is the
granularity attention tolerates — cutting inside a head destroys the
query/key dot-product geometry).

To make "h active heads" a literal parameter prefix, the QKV projection is
*packed head-major*: row block ``[3*d_k*h, 3*d_k*(h+1))`` of ``qkv_weight``
holds head ``h``'s query, key and value rows (in that order).  Activating
the first ``h`` heads is then one prefix GEMM over ``3*d_k*h`` rows — the
same contiguous-prefix story as :class:`~repro.slicing.layers.SlicedLinear`
columns, which is what compiled plans exploit.

The numpy forward is factored into :func:`attention_eval` so the live
autograd layer, compiled plans (:mod:`repro.slicing.plans`) and
materialized subnets (:mod:`repro.slicing.deploy`) replay bitwise-identical
arithmetic.  The causal mask is built once per sequence length and shared
by every caller through :func:`causal_mask`.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError, ShapeError
from ..tensor import Tensor
from ..tensor.profile import profiling_active, record_flops
from .init import kaiming_normal, zeros
from .module import Module, Parameter

_MASK_CACHE: dict[int, np.ndarray] = {}

#: Additive mask value for disallowed positions.  Large enough that the
#: masked logits exp to exactly 0.0 in float32 after the max-shift.
_MASK_VALUE = -1e9


def causal_mask(seq_len: int) -> np.ndarray:
    """The ``(T, T)`` additive causal mask, cached per sequence length.

    Entry ``(i, j)`` is ``0`` when position ``i`` may attend to ``j``
    (``j <= i``) and ``-1e9`` otherwise.  The cache is shared by the live
    layer, compiled plans and resumable plans, so repeated decoding at one
    window length never rebuilds (or duplicates) the mask.
    """
    if seq_len <= 0:
        raise ShapeError(f"causal mask needs a positive length, got {seq_len}")
    mask = _MASK_CACHE.get(seq_len)
    if mask is None:
        idx = np.arange(seq_len)
        mask = np.where(idx[None, :] > idx[:, None],
                        np.float32(_MASK_VALUE), np.float32(0.0))
        mask.setflags(write=False)
        _MASK_CACHE[seq_len] = mask
    return mask


def softmax_eval(scores: np.ndarray) -> np.ndarray:
    """Numpy softmax over the last axis.

    Mirrors ``repro.tensor.functional.softmax`` (exp of the shifted
    log-softmax) so attention probabilities match what an autograd
    composition would produce, bit for bit.
    """
    shifted = scores - scores.max(axis=-1, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    return np.exp(shifted - logsum)


def attention_eval(x: np.ndarray, qkv_w: np.ndarray, qkv_b: np.ndarray,
                   proj_w: np.ndarray, proj_b: np.ndarray, head_dim: int,
                   mask: np.ndarray | None = None, batch_first: bool = True,
                   want_cache: bool = False):
    """Shared numpy forward for packed-QKV multi-head self-attention.

    ``x`` is ``(B, T, d)`` when ``batch_first`` else ``(T, B, d)``;
    ``qkv_w`` is the head-major packed prefix ``(3*h*d_k, d)``; ``proj_w``
    is ``(d_out, h*d_k)``.  Returns the output in the input layout, plus
    the intermediate cache when ``want_cache`` (used by the analytic
    backward in :class:`MultiHeadSelfAttention`).
    """
    if not batch_first:
        x = np.swapaxes(x, 0, 1)
    b, t, d_in = x.shape
    heads = qkv_w.shape[0] // (3 * head_dim)
    x_flat = x.reshape(b * t, d_in)
    qkv = x_flat @ qkv_w.T
    qkv = qkv + qkv_b
    qkv = qkv.reshape(b, t, heads, 3, head_dim)
    # transpose views, not moveaxis: same layout, none of the per-call
    # axis-normalization overhead (this path is latency-critical).
    q = qkv[:, :, :, 0].transpose(0, 2, 1, 3)  # (b, h, t, d_k)
    k = qkv[:, :, :, 1].transpose(0, 2, 1, 3)
    v = qkv[:, :, :, 2].transpose(0, 2, 1, 3)
    scale = 1.0 / math.sqrt(head_dim)
    scores = (q @ np.swapaxes(k, -1, -2)) * scale
    if mask is not None:
        scores = scores + mask
    attn = softmax_eval(scores)
    ctx = attn @ v  # (b, h, t, d_k)
    ctx_flat = ctx.transpose(0, 2, 1, 3).reshape(b * t, heads * head_dim)
    out = ctx_flat @ proj_w.T
    out = out + proj_b
    out = out.reshape(b, t, proj_w.shape[0])
    if not batch_first:
        out = np.swapaxes(out, 0, 1)
    if profiling_active():
        # Same accounting Tensor.__matmul__ uses (out.size * K); the
        # score/context terms are the quadratic-in-T attention cost.
        record_flops("matmul", b * t * 3 * heads * head_dim * d_in)
        record_flops("matmul", b * heads * t * t * head_dim)
        record_flops("matmul", b * heads * t * head_dim * t)
        record_flops("matmul", b * t * proj_w.shape[0] * heads * head_dim)
    if want_cache:
        cache = {
            "x_flat": x_flat, "q": q, "k": k, "v": v, "attn": attn,
            "ctx_flat": ctx_flat, "shape": (b, t, d_in), "scale": scale,
        }
        return out, cache
    return out


class MultiHeadSelfAttention(Module):
    """Self-attention whose active head count follows the slice rate.

    Parameters
    ----------
    embed_dim:
        Full residual width (input and output feature count).
    num_heads:
        Full head count.  With slicing on, the ambient profile activates
        the first ``h = round(rate * num_heads)`` heads (at least 1).
    head_dim:
        Per-head width; defaults to ``embed_dim // num_heads``.
    causal:
        Apply the shared :func:`causal_mask` (decoder blocks).
    batch_first:
        ``(B, T, d)`` input layout when True, ``(T, B, d)`` when False
        (the layout the text pipeline uses).
    sliceable:
        When False the layer has no slice point and always runs every
        head — this is what :func:`~repro.slicing.deploy.materialize_subnet`
        instantiates, so deployed artifacts cannot react to slice contexts.

    The residual width is *not* controlled by this layer: the QKV columns
    and output rows follow the arriving activation width (like norms), so
    the block preserves whatever width the model's width controller (patch
    embedding / token embedding) produced.
    """

    def __init__(self, embed_dim: int, num_heads: int,
                 head_dim: int | None = None, causal: bool = False,
                 batch_first: bool = True, sliceable: bool = True,
                 num_groups: int = 8,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if embed_dim <= 0 or num_heads <= 0:
            raise ConfigError("attention sizes must be positive")
        if head_dim is None:
            if embed_dim % num_heads != 0:
                raise ConfigError(
                    f"embed_dim={embed_dim} not divisible by "
                    f"num_heads={num_heads}; pass head_dim explicitly"
                )
            head_dim = embed_dim // num_heads
        rng = rng if rng is not None else np.random.default_rng()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.causal = causal
        self.batch_first = batch_first
        self.sliceable = sliceable
        inner = num_heads * head_dim
        self.qkv_weight = Parameter(kaiming_normal(rng, (3 * inner, embed_dim)))
        self.qkv_bias = Parameter(zeros((3 * inner,)))
        self.proj_weight = Parameter(kaiming_normal(rng, (embed_dim, inner)))
        self.proj_bias = Parameter(zeros((embed_dim,)))
        if sliceable:
            from ..slicing.partition import GroupPartition
            from ..slicing.profile import auto_slice_point

            # One group per head: the head is the indivisible slice unit.
            self.head_partition = GroupPartition(num_heads, num_heads)
            self.embed_partition = GroupPartition(
                embed_dim, min(num_groups, embed_dim)
            )
            self.slice_point = auto_slice_point(self)
            self.slice_group_size = head_dim
        else:
            self.head_partition = None
            self.embed_partition = None

    def active_heads(self, rate: float | None = None) -> int:
        """Head count active at ``rate`` (ambient rate if omitted)."""
        if not self.sliceable:
            return self.num_heads
        if rate is None:
            from ..slicing.context import resolve_rate

            rate = resolve_rate(self)
        return self.head_partition.groups_for(rate)

    def active_param_count(self, rate: float) -> int:
        """Parameters resident in memory when deployed at ``rate``."""
        heads = self.active_heads(rate)
        inner = heads * self.head_dim
        d = (self.embed_partition.width_for(rate) if self.sliceable
             else self.embed_dim)
        return 3 * inner * d + d * inner + 3 * inner + d

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ShapeError(
                f"attention expects a 3-d input, got shape {x.shape}"
            )
        d_in = x.shape[-1]
        if d_in > self.embed_dim or (not self.sliceable
                                     and d_in != self.embed_dim):
            raise ShapeError(
                f"attention built for width {self.embed_dim}, got {d_in}"
            )
        heads = self.active_heads()
        rows = 3 * heads * self.head_dim
        qkv_w = self.qkv_weight[:rows, :d_in]
        qkv_b = self.qkv_bias[:rows]
        proj_w = self.proj_weight[:d_in, :heads * self.head_dim]
        proj_b = self.proj_bias[:d_in]
        seq_len = x.shape[1] if self.batch_first else x.shape[0]
        mask = causal_mask(seq_len) if self.causal else None
        out, cache = attention_eval(
            x.data, qkv_w.data, qkv_b.data, proj_w.data, proj_b.data,
            self.head_dim, mask=mask, batch_first=self.batch_first,
            want_cache=True,
        )
        head_dim = self.head_dim
        batch_first = self.batch_first
        proj_w_data = proj_w.data
        qkv_w_data = qkv_w.data

        def backward(grad):
            b, t, d = cache["shape"]
            if not batch_first:
                grad = np.swapaxes(grad, 0, 1)
            g_flat = grad.reshape(b * t, -1)
            d_proj_b = g_flat.sum(axis=0)
            d_proj_w = g_flat.T @ cache["ctx_flat"]
            d_ctx = g_flat @ proj_w_data
            d_ctx = np.moveaxis(d_ctx.reshape(b, t, heads, head_dim), 2, 1)
            attn, q, k, v = cache["attn"], cache["q"], cache["k"], cache["v"]
            d_attn = d_ctx @ np.swapaxes(v, -1, -2)
            d_v = np.swapaxes(attn, -1, -2) @ d_ctx
            d_scores = attn * (
                d_attn - (d_attn * attn).sum(axis=-1, keepdims=True)
            )
            d_scores = d_scores * cache["scale"]
            d_q = d_scores @ k
            d_k = np.swapaxes(d_scores, -1, -2) @ q
            d_qkv = np.empty((b, t, heads, 3, head_dim), dtype=d_q.dtype)
            d_qkv[:, :, :, 0] = np.moveaxis(d_q, 1, 2)
            d_qkv[:, :, :, 1] = np.moveaxis(d_k, 1, 2)
            d_qkv[:, :, :, 2] = np.moveaxis(d_v, 1, 2)
            d_qkv_flat = d_qkv.reshape(b * t, rows)
            d_qkv_b = d_qkv_flat.sum(axis=0)
            d_qkv_w = d_qkv_flat.T @ cache["x_flat"]
            d_x = (d_qkv_flat @ qkv_w_data).reshape(b, t, d)
            if not batch_first:
                d_x = np.swapaxes(d_x, 0, 1)
            return (d_x, d_qkv_w, d_qkv_b, d_proj_w, d_proj_b)

        return Tensor._make(out, (x, qkv_w, qkv_b, proj_w, proj_b), backward)

    def __repr__(self) -> str:
        return (
            f"MultiHeadSelfAttention(d={self.embed_dim}, "
            f"heads={self.num_heads}x{self.head_dim}, causal={self.causal})"
        )
