"""Dropout layer."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor import dropout as dropout_fn
from .module import Module


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    Parameters
    ----------
    rate:
        Probability of zeroing each activation.
    rng:
        Generator for the dropout masks; supplied explicitly so whole-model
        training runs are reproducible from one seed.
    """

    def __init__(self, rate: float, rng: np.random.Generator | None = None):
        super().__init__()
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.rate, self.rng, training=self.training)
