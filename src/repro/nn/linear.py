"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..tensor import Tensor
from .init import kaiming_normal, zeros
from .module import Module, Parameter


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator used for weight initialization.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigError("Linear features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_normal(rng, (out_features, in_features)))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
