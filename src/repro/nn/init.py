"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the library is reproducible from a single seed.
"""

from __future__ import annotations

import math

import numpy as np


def kaiming_normal(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int | None = None) -> np.ndarray:
    """He-normal init: N(0, sqrt(2/fan_in)) — suited to ReLU networks."""
    if fan_in is None:
        fan_in = _default_fan_in(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int | None = None, fan_out: int | None = None) -> np.ndarray:
    """Glorot-uniform init — suited to tanh/sigmoid layers (RNNs, embeddings)."""
    if fan_in is None:
        fan_in = _default_fan_in(shape)
    if fan_out is None:
        fan_out = shape[0]
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform(rng: np.random.Generator, shape: tuple[int, ...],
            bound: float) -> np.ndarray:
    """U(-bound, bound) init, e.g. the NNLM embedding convention."""
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (biases)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one init (normalization scales)."""
    return np.ones(shape, dtype=np.float32)


def _default_fan_in(shape: tuple[int, ...]) -> int:
    if len(shape) == 2:  # (out, in) dense weight
        return shape[1]
    if len(shape) == 4:  # (out, in, kh, kw) conv weight
        return shape[1] * shape[2] * shape[3]
    return int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
