"""Loss modules."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, cross_entropy, mse_loss
from .module import Module


class CrossEntropyLoss(Module):
    """Mean cross-entropy from raw logits and integer targets.

    Delegates to :func:`~repro.tensor.functional.cross_entropy`, so under
    an active training workspace it uses the fused softmax+NLL kernel
    with the analytic one-node backward (bitwise-identical forward).
    """

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, pred: Tensor, target) -> Tensor:
        return mse_loss(pred, target)
