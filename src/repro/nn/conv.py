"""2D convolution layer."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..tensor import Tensor, conv2d
from .init import kaiming_normal, zeros
from .module import Module, Parameter


class Conv2d(Module):
    """2D convolution over NCHW tensors.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side (int) or ``(kh, kw)``.
    stride, padding:
        Convolution stride and zero padding.
    bias:
        Whether to add a per-channel bias (conventionally False when a
        normalization layer follows).

    Under an active training workspace (:func:`repro.tensor.workspace.
    use_workspace`) the underlying :func:`~repro.tensor.ops.conv2d`
    automatically draws its im2col/col2im and GEMM buffers from the
    pooled arena; no layer-level opt-in is needed.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ConfigError("Conv2d channels must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) \
            else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            kaiming_normal(rng, (out_channels, in_channels, kh, kw))
        )
        self.bias = Parameter(zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias,
                      stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )
