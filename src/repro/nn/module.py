"""Module and Parameter: the building blocks of the layer library.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
registered automatically on attribute assignment.  It provides the usual
traversal (``parameters``, ``named_parameters``), train/eval mode switching,
gradient zeroing, and flat ``state_dict`` (de)serialization.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from ..errors import ConfigError
from ..tensor import Tensor


# The slot descriptor Tensor declares for ``data``; Parameter shadows it
# with a property below so rebinding writes bump the version counter.
_TENSOR_DATA = Tensor.data


class Parameter(Tensor):
    """A trainable tensor: ``requires_grad`` defaults to True.

    Every *rebinding* write to :attr:`data` (``param.data = arr``,
    ``param.data -= lr * grad``) bumps a monotone :attr:`version`
    counter, which compiled inference plans use to detect staleness.
    In-place element writes (``param.data[...] = arr``) bypass the
    property; wrap them in ``with param.mutate() as data:`` so the
    version is bumped automatically, or call :meth:`bump_version`
    explicitly.
    """

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)
        self._version = 0

    @property
    def data(self) -> np.ndarray:
        return _TENSOR_DATA.__get__(self, Parameter)

    @data.setter
    def data(self, value) -> None:
        _TENSOR_DATA.__set__(self, value)
        # __init__ routes through here before _version exists.
        self._version = getattr(self, "_version", -1) + 1

    @property
    def version(self) -> int:
        """Monotone mutation counter (see class docstring)."""
        return self._version

    def bump_version(self) -> int:
        """Record an in-place mutation that bypassed the ``data`` setter."""
        self._version += 1
        return self._version

    def sync_version(self, version: int) -> int:
        """Adopt an externally published version counter.

        Used by :class:`~repro.tensor.shared.SharedArena` to carry
        version counters across process boundaries: a worker syncs its
        parameters to the counters the serving parent published, so the
        plan-cache staleness check fires cross-process exactly as it
        would in-process.  Unlike :meth:`bump_version` this may set any
        value, including one the local process never saw.
        """
        self._version = int(version)
        return self._version

    @contextlib.contextmanager
    def mutate(self):
        """In-place mutation scope: yields the raw array, bumps on exit.

        Use for element writes that would otherwise silently bypass the
        version counter::

            with param.mutate() as data:
                data[:k] = pruned

        The version is bumped even if the body raises — a partial write
        still invalidates compiled plans.
        """
        try:
            yield _TENSOR_DATA.__get__(self, Parameter)
        finally:
            self.bump_version()


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (used for module lists)."""
        if not isinstance(module, Module):
            raise ConfigError(f"{name} is not a Module")
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal --------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for this module and children."""
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Yield the direct child modules."""
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def parameter_version(self) -> int:
        """Sum of all parameter version counters.

        Any mutation of any parameter changes this value, so it serves
        as a cheap staleness token for caches keyed on model weights
        (see :mod:`repro.slicing.plans`).  Structural edits that swap
        parameters wholesale (e.g. ``upgrade_model``) are caught by the
        identity checks those caches perform in addition to this sum.
        """
        return sum(p.version for p in self.parameters())

    # -- mode & grads -----------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout, batch norm)."""
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Drop the gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    # -- shared memory ----------------------------------------------------
    def share_memory(self, arena=None):
        """Move parameters and running stats into a shared-memory arena.

        Packs the widest-rate weights into one
        ``multiprocessing.shared_memory`` segment (see
        :class:`~repro.tensor.shared.SharedArena`) and rebinds this
        model's parameters to views of it.  Returns the arena; hand its
        ``manifest`` to worker processes, which
        :meth:`~repro.tensor.shared.SharedArena.attach` and
        :meth:`~repro.tensor.shared.SharedArena.adopt` the same segment
        zero-copy.  The caller owns the arena's lifecycle
        (``close()``/``unlink()`` or use it as a context manager).
        """
        from ..tensor.shared import SharedArena

        if arena is None:
            arena = SharedArena.create(self)
        arena.bind(self)
        return arena

    # -- serialization ----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter names to copies of their arrays."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, module in self._named_stateful():
            for key, value in module.extra_state().items():
                state[name + key] = value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict on names/shapes)."""
        remaining = dict(state)
        for name, param in self.named_parameters():
            if name not in remaining:
                raise ConfigError(f"state_dict is missing parameter {name!r}")
            value = remaining.pop(name)
            if value.shape != param.data.shape:
                raise ConfigError(
                    f"shape mismatch for {name!r}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            with param.mutate() as data:
                data[...] = value
        for name, module in self._named_stateful():
            extra = module.extra_state()
            for key in extra:
                full = name + key
                if full not in remaining:
                    raise ConfigError(f"state_dict is missing buffer {full!r}")
                module.load_extra_state(key, remaining.pop(full))
        if remaining:
            raise ConfigError(f"unexpected keys in state_dict: {sorted(remaining)}")

    def _named_stateful(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield modules that carry non-parameter state (running stats)."""
        if self.extra_state():
            yield (prefix, self)
        for name, module in self._modules.items():
            yield from module._named_stateful(prefix + name + ".")

    def extra_state(self) -> dict[str, np.ndarray]:
        """Non-parameter state to persist; overridden by e.g. batch norm."""
        return {}

    def load_extra_state(self, key: str, value: np.ndarray) -> None:
        """Restore one entry of :meth:`extra_state`."""
        raise ConfigError(f"{type(self).__name__} has no extra state {key!r}")

    # -- call -------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"


class ModuleList(Module):
    """An indexable, iterable container of child modules."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: "Module") -> None:
        self.register_module(str(len(self._items)), module)
        self._items.append(module)

    def register_module(self, name: str, module: "Module") -> None:
        super().register_module(name, module)
        # Keep the ordered item list in sync when an existing slot is
        # replaced (e.g. by upgrade_model).
        if name.isdigit() and int(name) < len(self._items):
            self._items[int(name)] = module

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):
        raise ConfigError("ModuleList is a container and cannot be called")
