"""Pooling layers."""

from __future__ import annotations

from ..tensor import Tensor, avg_pool2d, global_avg_pool2d, max_pool2d
from .module import Module


class MaxPool2d(Module):
    """Non-overlapping max pooling with a square kernel."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size)


class AvgPool2d(Module):
    """Non-overlapping average pooling with a square kernel."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing ``(B, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)
