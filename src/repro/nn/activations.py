"""Activation-function modules."""

from __future__ import annotations

from ..tensor import Tensor
from .module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()
