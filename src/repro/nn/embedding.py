"""Embedding lookup layers (token and learned-positional)."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..tensor import Tensor
from ..tensor import embedding as embedding_fn
from .init import uniform
from .module import Module, Parameter


class Embedding(Module):
    """Trainable lookup table mapping integer ids to dense vectors.

    With ``slice_output=True`` the embedding becomes the model's *width
    controller*: the output dimension follows the active profile width, so
    a decoder LM slices from its very first layer (this fixes the original
    behavior where the arriving slice context was silently ignored — the
    embedding always emitted the full width and nothing upstream of the
    recurrent/attention stack could slice).  The default stays ``False``
    because the paper's NNLM deliberately leaves the embedding unsliced;
    opting in is a per-model architecture decision.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None,
                 init_bound: float = 0.1, slice_output: bool = False,
                 num_groups: int = 8):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ConfigError("Embedding sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.slice_output = slice_output
        self.weight = Parameter(
            uniform(rng, (num_embeddings, embedding_dim), init_bound)
        )
        if slice_output:
            from ..slicing.partition import GroupPartition
            from ..slicing.profile import auto_slice_point

            self.out_partition = GroupPartition(
                embedding_dim, min(num_groups, embedding_dim)
            )
            self.slice_point = auto_slice_point(self)
            self.slice_group_size = 1
        else:
            self.out_partition = None

    def active_width(self, rate: float | None = None) -> int:
        """Output width at ``rate`` (ambient rate if omitted)."""
        if not self.slice_output:
            return self.embedding_dim
        if rate is None:
            from ..slicing.context import resolve_rate

            rate = resolve_rate(self)
        return self.out_partition.width_for(rate)

    def active_param_count(self, rate: float) -> int:
        return self.num_embeddings * self.active_width(rate)

    def forward(self, indices: np.ndarray) -> Tensor:
        width = self.active_width()
        if width == self.embedding_dim:
            return embedding_fn(self.weight, indices)
        # Gathering from the column prefix is exactly the column prefix of
        # the full gather, so Eq. 2 nesting holds at the first layer too.
        return embedding_fn(self.weight[:, :width], indices)


class LearnedPositional(Module):
    """Learned additive positional embedding that follows the arriving width.

    Adds ``weight[:T, :d]`` to the activation, where ``d`` is whatever
    width the token/patch embedding produced — like norms, it has no slice
    point of its own.
    """

    def __init__(self, max_len: int, embedding_dim: int,
                 batch_first: bool = True,
                 rng: np.random.Generator | None = None,
                 init_bound: float = 0.02):
        super().__init__()
        if max_len <= 0 or embedding_dim <= 0:
            raise ConfigError("LearnedPositional sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.max_len = max_len
        self.embedding_dim = embedding_dim
        self.batch_first = batch_first
        self.weight = Parameter(
            uniform(rng, (max_len, embedding_dim), init_bound)
        )

    def active_param_count(self, rate: float) -> int:
        # Positions are resident in full; only the width follows the rate,
        # which this module cannot know without a partition — report full.
        return self.max_len * self.embedding_dim

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[1] if self.batch_first else x.shape[0]
        width = x.shape[-1]
        if seq_len > self.max_len:
            raise ShapeError(
                f"sequence length {seq_len} exceeds max_len {self.max_len}"
            )
        if width > self.embedding_dim:
            raise ShapeError(
                f"LearnedPositional built for width {self.embedding_dim}, "
                f"got {width}"
            )
        pos = self.weight[:seq_len, :width]
        if not self.batch_first:
            pos = pos.reshape(seq_len, 1, width)
        return x + pos
