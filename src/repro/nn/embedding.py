"""Embedding lookup layer."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..tensor import Tensor
from ..tensor import embedding as embedding_fn
from .init import uniform
from .module import Module, Parameter


class Embedding(Module):
    """Trainable lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None,
                 init_bound: float = 0.1):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ConfigError("Embedding sizes must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            uniform(rng, (num_embeddings, embedding_dim), init_bound)
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_fn(self.weight, indices)
