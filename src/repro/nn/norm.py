"""Normalization layers: BatchNorm2d, GroupNorm, and LayerNorm.

BatchNorm2d and GroupNorm are composed from differentiable tensor
primitives, so their backward passes come from autograd.  GroupNorm is the
normalization the paper pairs with model slicing (Sec. 3.2): its statistics
are computed per group at run time, so they remain correct when the number
of active channels varies.  LayerNorm (the transformer normalization) is a
single custom autograd node with an analytic backward; its forward is
factored into :func:`layer_norm_eval` so compiled plans and materialized
subnets replay the exact same arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..tensor import Tensor
from ..tensor.fused import fused_group_norm
from ..tensor.workspace import active_workspace
from .init import ones, zeros
from .module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalization over NCHW tensors with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        if num_features <= 0:
            raise ConfigError("BatchNorm2d num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(ones((num_features,)))
        self.bias = Parameter(zeros((num_features,)))
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def extra_state(self) -> dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def load_extra_state(self, key: str, value: np.ndarray) -> None:
        if key == "running_mean":
            self.running_mean = value.copy()
        elif key == "running_var":
            self.running_var = value.copy()
        else:
            raise ConfigError(f"BatchNorm2d has no extra state {key!r}")

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ShapeError("BatchNorm2d expects NCHW input")
        c = x.shape[1]
        if c != self.num_features:
            raise ShapeError(
                f"BatchNorm2d built for {self.num_features} channels, got {c}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.running_mean = (
                (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - m) * self.running_var + m * var.data.reshape(-1)
            )
            normed = centered * ((var + self.eps) ** -0.5)
        else:
            mean = self.running_mean.reshape(1, c, 1, 1)
            var = self.running_var.reshape(1, c, 1, 1)
            normed = (x - mean) * ((Tensor(var) + self.eps) ** -0.5)
        gamma = self.weight.reshape(1, c, 1, 1)
        beta = self.bias.reshape(1, c, 1, 1)
        return normed * gamma + beta


def _layer_norm_stats(x: np.ndarray, eps: float) -> tuple[np.ndarray, np.ndarray]:
    """Normalize ``x`` over its last axis; returns ``(xhat, inv_std)``.

    ``sum / n`` is spelled out instead of ``.mean`` — numpy's mean is the
    same pairwise sum followed by the same true-divide (so the values are
    bitwise identical), minus a few Python dispatch layers that dominate
    at transformer-block widths.
    """
    n = x.shape[-1]
    mean = x.sum(axis=-1, keepdims=True) / n
    centered = x - mean
    var = (centered * centered).sum(axis=-1, keepdims=True) / n
    inv = (var + eps) ** -0.5
    return centered * inv, inv


def layer_norm_eval(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                    eps: float = 1e-5) -> np.ndarray:
    """Numpy layer-norm forward shared by the live layer and compiled plans.

    Both callers route through this one function so a compiled plan's
    folded-LayerNorm step is bitwise identical to the live module.
    """
    xhat, _ = _layer_norm_stats(x, eps)
    return xhat * gamma + beta


class LayerNorm(Module):
    """Layer normalization over the last axis, slicing-aware.

    Like GroupNorm, LayerNorm has no slice point of its own: it *follows
    the arriving width*.  When the residual stream is sliced to ``d``
    columns the layer normalizes over those ``d`` columns and applies the
    first ``d`` entries of ``weight``/``bias``.  Statistics are computed at
    run time, so they remain correct at every active width (this is the
    property "Slicing Vision Transformer for Flexible Inference" identifies
    as what lets pre-norm blocks slice without recalibration).

    The forward is one custom autograd node with an analytic backward —
    cheaper than composing ~10 primitive nodes, and gradcheck-swept in
    ``tests/test_gradcheck_sweep.py``.
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 num_groups: int = 8):
        super().__init__()
        if num_features <= 0:
            raise ConfigError("LayerNorm num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        # Group count of the residual-width partition this norm rides on;
        # only used to report active parameter counts for a given rate.
        self.num_groups = max(1, min(int(num_groups), num_features))
        self.weight = Parameter(ones((num_features,)))
        self.bias = Parameter(zeros((num_features,)))

    def active_param_count(self, rate: float) -> int:
        groups = max(1, min(round(rate * self.num_groups), self.num_groups))
        width = round(self.num_features * groups / self.num_groups)
        return 2 * width

    def forward(self, x: Tensor) -> Tensor:
        width = x.shape[-1]
        if width > self.num_features:
            raise ShapeError(
                f"LayerNorm built for {self.num_features} features, "
                f"got {width}"
            )
        gamma = self.weight[:width]
        beta = self.bias[:width]
        xd, gd, bd = x.data, gamma.data, beta.data
        xhat, inv = _layer_norm_stats(xd, self.eps)
        out = xhat * gd + bd
        n = width

        def backward(grad):
            flat = grad.reshape(-1, n)
            dgamma = (grad * xhat).reshape(-1, n).sum(axis=0)
            dbeta = flat.sum(axis=0)
            dxhat = grad * gd
            dx = inv * (
                dxhat
                - dxhat.mean(axis=-1, keepdims=True)
                - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
            )
            return (dx, dgamma, dbeta)

        return Tensor._make(out, (x, gamma, beta), backward)


class GroupNorm(Module):
    """Group normalization (Wu & He, 2018) over ``(B, C, ...)`` tensors.

    Channels are divided into ``num_groups`` contiguous groups; mean and
    variance are computed per sample per group at run time.  Contiguous
    grouping is what makes this compatible with model slicing: slicing keeps
    a prefix of whole groups, so every surviving group still normalizes over
    exactly the channels it was trained with.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5,
                 affine: bool = True):
        super().__init__()
        if num_channels % num_groups != 0:
            raise ConfigError(
                f"num_channels={num_channels} not divisible by "
                f"num_groups={num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        if affine:
            self.weight = Parameter(ones((num_channels,)))
            self.bias = Parameter(zeros((num_channels,)))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return self._normalize(x, self.num_groups, self.num_channels,
                               self.weight, self.bias)

    def _normalize(self, x: Tensor, groups: int, channels: int,
                   weight: Parameter | None, bias: Parameter | None) -> Tensor:
        if x.shape[1] != channels:
            raise ShapeError(
                f"GroupNorm configured for {channels} channels, got {x.shape[1]}"
            )
        if active_workspace() is not None:
            # Training fast path: one fused node with analytic gradients;
            # the forward value is bitwise identical to the composition
            # below (see repro.tensor.fused).
            return fused_group_norm(x, weight, bias, groups, self.eps)
        batch = x.shape[0]
        spatial = x.shape[2:]
        group_size = channels // groups
        grouped = x.reshape(batch, groups, group_size * int(np.prod(spatial, dtype=int) or 1))
        mean = grouped.mean(axis=2, keepdims=True)
        centered = grouped - mean
        var = (centered * centered).mean(axis=2, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        normed = normed.reshape((batch, channels) + spatial)
        if weight is not None:
            shape = (1, channels) + (1,) * len(spatial)
            normed = normed * weight.reshape(shape) + bias.reshape(shape)
        return normed
