"""Neural-network layer library built on :mod:`repro.tensor`."""

from .module import Module, ModuleList, Parameter
from .linear import Linear
from .conv import Conv2d
from .norm import BatchNorm2d, GroupNorm, LayerNorm, layer_norm_eval
from .activations import ReLU, Sigmoid, Tanh
from .dropout import Dropout
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from .embedding import Embedding, LearnedPositional
from .attention import (MultiHeadSelfAttention, attention_eval, causal_mask,
                        softmax_eval)
from .container import Sequential
from .loss import CrossEntropyLoss, MSELoss
from .recurrent import GRUCell, LSTM, LSTMCell, RNNCell
from . import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "layer_norm_eval",
    "MultiHeadSelfAttention",
    "attention_eval",
    "causal_mask",
    "softmax_eval",
    "LearnedPositional",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Embedding",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "RNNCell",
    "LSTMCell",
    "GRUCell",
    "LSTM",
    "init",
]
