"""Recurrent cells and sequence wrappers: vanilla RNN, LSTM, GRU."""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..tensor import Tensor, stack
from .init import xavier_uniform, zeros
from .module import Module, Parameter


def _zero_state(batch: int, hidden: int) -> Tensor:
    return Tensor(np.zeros((batch, hidden), dtype=np.float32))


class RNNCell(Module):
    """Vanilla recurrent cell: ``h' = tanh(x W_ih^T + h W_hh^T + b)``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            xavier_uniform(rng, (hidden_size, input_size))
        )
        self.weight_hh = Parameter(
            xavier_uniform(rng, (hidden_size, hidden_size))
        )
        self.bias = Parameter(zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        if h is None:
            h = _zero_state(x.shape[0], self.hidden_size)
        pre = x @ self.weight_ih.transpose() + h @ self.weight_hh.transpose()
        return (pre + self.bias).tanh()


class LSTMCell(Module):
    """LSTM cell with the standard i/f/g/o gate layout."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None,
                 forget_bias: float = 1.0):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            xavier_uniform(rng, (4 * hidden_size, input_size), fan_in=input_size,
                           fan_out=hidden_size)
        )
        self.weight_hh = Parameter(
            xavier_uniform(rng, (4 * hidden_size, hidden_size), fan_in=hidden_size,
                           fan_out=hidden_size)
        )
        bias = zeros((4 * hidden_size,))
        bias[hidden_size: 2 * hidden_size] = forget_bias
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
                ) -> tuple[Tensor, Tensor]:
        """One step; returns ``(h, c)``."""
        if state is None:
            h = _zero_state(x.shape[0], self.hidden_size)
            c = _zero_state(x.shape[0], self.hidden_size)
        else:
            h, c = state
        n = self.hidden_size
        gates = (x @ self.weight_ih.transpose()
                 + h @ self.weight_hh.transpose() + self.bias)
        i = gates[:, 0 * n:1 * n].sigmoid()
        f = gates[:, 1 * n:2 * n].sigmoid()
        g = gates[:, 2 * n:3 * n].tanh()
        o = gates[:, 3 * n:4 * n].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class GRUCell(Module):
    """GRU cell with the standard r/z/n gate layout."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            xavier_uniform(rng, (3 * hidden_size, input_size), fan_in=input_size,
                           fan_out=hidden_size)
        )
        self.weight_hh = Parameter(
            xavier_uniform(rng, (3 * hidden_size, hidden_size), fan_in=hidden_size,
                           fan_out=hidden_size)
        )
        self.bias_ih = Parameter(zeros((3 * hidden_size,)))
        self.bias_hh = Parameter(zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        if h is None:
            h = _zero_state(x.shape[0], self.hidden_size)
        n = self.hidden_size
        gi = x @ self.weight_ih.transpose() + self.bias_ih
        gh = h @ self.weight_hh.transpose() + self.bias_hh
        r = (gi[:, 0 * n:1 * n] + gh[:, 0 * n:1 * n]).sigmoid()
        z = (gi[:, 1 * n:2 * n] + gh[:, 1 * n:2 * n]).sigmoid()
        cand = (gi[:, 2 * n:3 * n] + r * gh[:, 2 * n:3 * n]).tanh()
        return (1.0 - z) * cand + z * h


class LSTM(Module):
    """Multi-layer LSTM over a ``(T, B, I)`` sequence.

    Returns the stacked top-layer outputs ``(T, B, H)`` and the final
    ``(h, c)`` state per layer.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_layers <= 0:
            raise ConfigError("LSTM num_layers must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.cells: list[LSTMCell] = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size,
                            hidden_size, rng=rng)
            self.register_module(f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(self, inputs: Tensor,
                states: list[tuple[Tensor, Tensor]] | None = None
                ) -> tuple[Tensor, list[tuple[Tensor, Tensor]]]:
        if states is None:
            states = [None] * self.num_layers
        steps = inputs.shape[0]
        layer_input = [inputs[t] for t in range(steps)]
        final_states: list[tuple[Tensor, Tensor]] = []
        for layer, cell in enumerate(self.cells):
            state = states[layer]
            outputs = []
            for x_t in layer_input:
                state = cell(x_t, state)
                outputs.append(state[0])
            final_states.append(state)
            layer_input = outputs
        return stack(layer_input, axis=0), final_states
