"""Network Slimming baseline (Liu et al. [35]; Figure 2 of the paper).

Pipeline faithfully reproduced at group granularity:

1. train the full network with an L1 sparsity penalty on the
   normalization scale factors (gamma);
2. rank channel groups globally by mean ``|gamma|`` and prune the lowest
   ones (keeping at least one group per layer);
3. materialize a physically smaller network with the surviving groups'
   weights gathered in, and fine-tune it.

The resulting model is efficient but *static*: each target budget needs
its own prune+fine-tune cycle, and there is no inference-time cost
control — the limitation the paper contrasts against model slicing.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..models.vgg import SlicedVGG
from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from ..nn.norm import GroupNorm
from ..nn.pooling import GlobalAvgPool2d, MaxPool2d
from ..slicing.layers import SlicedConv2d, SlicedGroupNorm
from ..tensor import Tensor, cross_entropy


def l1_scale_penalty(model: Module) -> Tensor:
    """Sum of ``|gamma|`` over all sliced group-norm layers."""
    total = None
    for module in model.modules():
        if isinstance(module, SlicedGroupNorm):
            term = module.weight.abs().sum()
            total = term if total is None else total + term
    if total is None:
        raise ConfigError("model has no SlicedGroupNorm layers to penalize")
    return total


def sparsity_loss_fn(model: Module, l1_weight: float):
    """Loss function for the sparsity-training phase of slimming."""

    def loss_fn(logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets) \
            + l1_scale_penalty(model) * l1_weight

    return loss_fn


class PrunedVGG(Module):
    """A physically compacted VGG built from surviving channel groups."""

    def __init__(self, conv_specs: list[dict], pools_after: set[int],
                 head_in: int, num_classes: int):
        super().__init__()
        self._ops: list[tuple[str, Module]] = []
        for i, spec in enumerate(conv_specs):
            conv = Conv2d(spec["in"], spec["out"], 3, padding=1, bias=False,
                          rng=np.random.default_rng(0))
            with conv.weight.mutate() as data:
                data[...] = spec["weight"]
            self.register_module(f"conv{i}", conv)
            self._ops.append(("conv", conv))
            norm = GroupNorm(spec["groups"], spec["out"])
            with norm.weight.mutate() as data:
                data[...] = spec["gamma"]
            with norm.bias.mutate() as data:
                data[...] = spec["beta"]
            self.register_module(f"norm{i}", norm)
            self._ops.append(("norm", norm))
            if i in pools_after:
                pool = MaxPool2d(2)
                self.register_module(f"pool{i}", pool)
                self._ops.append(("pool", pool))
        self.global_pool = GlobalAvgPool2d()
        self.head = Linear(head_in, num_classes,
                           rng=np.random.default_rng(1))

    def forward(self, x: Tensor) -> Tensor:
        for kind, op in self._ops:
            x = op(x)
            if kind == "norm":
                x = x.relu()
        return self.head(self.global_pool(x))


def prune_vgg(model: SlicedVGG, keep_fraction: float) -> PrunedVGG:
    """Prune a sparsity-trained :class:`SlicedVGG` at group granularity.

    Groups are ranked globally by mean ``|gamma|``; the lowest
    ``1 - keep_fraction`` of all groups are removed, with a one-group
    floor per layer.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ConfigError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    convs = [op for kind, op in model._ops if kind == "conv"]
    norms = [op for kind, op in model._ops if kind == "norm"]
    if not all(isinstance(n, SlicedGroupNorm) for n in norms):
        raise ConfigError("prune_vgg expects a group-norm SlicedVGG")

    # Global ranking of (layer, group) by mean |gamma|.
    scored: list[tuple[float, int, int]] = []
    for layer_idx, norm in enumerate(norms):
        means = norm.group_scale_means()
        for group_idx, score in enumerate(means):
            scored.append((float(score), layer_idx, group_idx))
    keep_count = max(len(norms), int(round(keep_fraction * len(scored))))
    scored.sort(reverse=True)
    kept: dict[int, set[int]] = {i: set() for i in range(len(norms))}
    for score, layer_idx, group_idx in scored[:keep_count]:
        kept[layer_idx].add(group_idx)
    for layer_idx, norm in enumerate(norms):  # one-group floor
        if not kept[layer_idx]:
            best = int(np.argmax(norm.group_scale_means()))
            kept[layer_idx].add(best)

    # Gather surviving channels layer by layer.
    conv_specs: list[dict] = []
    pools_after: set[int] = set()
    conv_index = -1
    previous_channels: np.ndarray | None = None  # surviving input channels
    for kind, op in model._ops:
        if kind == "conv":
            conv_index += 1
            conv: SlicedConv2d = op
            norm: SlicedGroupNorm = norms[conv_index]
            groups = sorted(kept[conv_index])
            gsize = norm.group_size
            out_idx = np.concatenate(
                [np.arange(g * gsize, (g + 1) * gsize) for g in groups]
            )
            in_idx = (previous_channels if previous_channels is not None
                      else np.arange(conv.in_channels))
            weight = conv.weight.data[np.ix_(out_idx, in_idx)]
            conv_specs.append({
                "in": len(in_idx),
                "out": len(out_idx),
                "groups": len(groups),
                "weight": weight,
                "gamma": norm.weight.data[out_idx],
                "beta": norm.bias.data[out_idx],
            })
            previous_channels = out_idx
        elif kind == "pool":
            pools_after.add(conv_index)

    pruned = PrunedVGG(conv_specs, pools_after, len(previous_channels),
                       model.num_classes)
    # The head keeps the surviving input columns of the original head.
    with pruned.head.weight.mutate() as data:
        data[...] = model.head.weight.data[:, previous_channels]
    with pruned.head.bias.mutate() as data:
        data[...] = model.head.bias.data
    return pruned
