"""Baselines the paper compares model slicing against.

* fixed-width / varying-depth ensembles (Figures 2, 4, 5; Tables 2, 4);
* multi-classifier early exit and an MSDNet-like anytime variant (Fig. 2);
* SkipNet-like dynamic block skipping (Fig. 2);
* Network Slimming structured channel pruning (Fig. 2);
* SlimmableNet static-scheduling + multi-BN training (Table 1).
"""

from .ensembles import FixedWidthEnsemble, VaryingDepthEnsemble
from .multi_classifier import MSDNetLike, MultiClassifierResNet
from .skipnet import SkipNetLike
from .slimming import PrunedVGG, l1_scale_penalty, prune_vgg, sparsity_loss_fn
from .slimmable import slimmable_resnet, slimmable_trainer, slimmable_vgg

__all__ = [
    "FixedWidthEnsemble",
    "VaryingDepthEnsemble",
    "MultiClassifierResNet",
    "MSDNetLike",
    "SkipNetLike",
    "PrunedVGG",
    "l1_scale_penalty",
    "prune_vgg",
    "sparsity_loss_fn",
    "slimmable_resnet",
    "slimmable_trainer",
    "slimmable_vgg",
]
