"""Fixed-model ensemble baselines.

The paper's strongest baseline (Figures 2, 4, 5; the ``*-fixed-models``
rows of Tables 2 and 4): an ensemble of *individually trained* networks of
varying width (or depth), each deployed when its cost fits the budget.
Model slicing's claim is that one sliced model matches this ensemble while
storing and scheduling a single set of weights.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module
from ..optim import SGD
from ..slicing.context import slice_rate
from ..slicing.schemes import FixedScheme
from ..slicing.trainer import SliceTrainer


class FixedWidthEnsemble:
    """Independently trained models, one per slice rate.

    Each member is a sliceable model *trained at a single fixed rate* —
    exactly the paper's "fixed models" baseline: the rate-``r`` member is
    architecturally identical to ``Subnet-r`` of the sliced model, but its
    weights are its own.
    """

    def __init__(self, model_factory: Callable[[int], Module],
                 rates: Sequence[float]):
        if not rates:
            raise ConfigError("ensemble needs at least one rate")
        self.rates = sorted(float(r) for r in rates)
        self.model_factory = model_factory
        self.members: dict[float, Module] = {}
        self.trainers: dict[float, SliceTrainer] = {}

    def train(self, make_optimizer: Callable[[Module], SGD],
              train_loader_fn, epochs: int,
              lr_schedule_factory=None, seed: int = 0) -> None:
        """Train every member on identical data."""
        for i, rate in enumerate(self.rates):
            model = self.model_factory(seed + i)
            optimizer = make_optimizer(model)
            trainer = SliceTrainer(
                model, FixedScheme(rate), optimizer,
                rng=np.random.default_rng(seed + 100 + i),
            )
            schedule = (lr_schedule_factory(optimizer)
                        if lr_schedule_factory is not None else None)
            trainer.fit(train_loader_fn, epochs=epochs, lr_schedule=schedule)
            self.members[rate] = model
            self.trainers[rate] = trainer

    def evaluate(self, eval_loader_fn) -> dict[float, dict[str, float]]:
        """Accuracy of each member at its own training rate."""
        results = {}
        for rate, trainer in self.trainers.items():
            results[rate] = trainer.evaluate(eval_loader_fn(), rates=[rate])[rate]
        return results

    def member_for_budget(self, budget: float, full_cost: float) -> float:
        """Rate of the widest member fitting ``budget`` (Eq. 3 dispatch)."""
        from ..slicing.budget import rate_for_budget

        return rate_for_budget(budget, full_cost, self.rates)

    def predict(self, rate: float, inputs) -> np.ndarray:
        """Logits of the rate-``rate`` member."""
        from ..tensor import Tensor, no_grad

        model = self.members[rate]
        model.eval()
        with no_grad():
            with slice_rate(rate):
                return model(Tensor(inputs)).data


class VaryingDepthEnsemble:
    """Independently trained models of varying *depth* (same width).

    The weaker ensemble of Figures 2 and 5 — the paper uses it to show
    that width slicing beats depth slicing.
    """

    def __init__(self, model_factories: dict[str, Callable[[int], Module]]):
        if not model_factories:
            raise ConfigError("ensemble needs at least one member factory")
        self.model_factories = dict(model_factories)
        self.members: dict[str, Module] = {}
        self.trainers: dict[str, SliceTrainer] = {}

    def train(self, make_optimizer: Callable[[Module], SGD],
              train_loader_fn, epochs: int,
              lr_schedule_factory=None, seed: int = 0) -> None:
        for i, (name, factory) in enumerate(self.model_factories.items()):
            model = factory(seed + i)
            optimizer = make_optimizer(model)
            trainer = SliceTrainer(
                model, FixedScheme(1.0), optimizer,
                rng=np.random.default_rng(seed + 100 + i),
            )
            schedule = (lr_schedule_factory(optimizer)
                        if lr_schedule_factory is not None else None)
            trainer.fit(train_loader_fn, epochs=epochs, lr_schedule=schedule)
            self.members[name] = model
            self.trainers[name] = trainer

    def evaluate(self, eval_loader_fn) -> dict[str, dict[str, float]]:
        return {
            name: trainer.evaluate(eval_loader_fn(), rates=[1.0])[1.0]
            for name, trainer in self.trainers.items()
        }
