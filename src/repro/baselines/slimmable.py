"""SlimmableNet baseline (Yu et al. [52]; Table 1's ``Slimmable`` column).

SlimmableNet trains one network executable at a fixed set of widths by
(1) scheduling *all* candidate widths on every batch (static scheduling)
and (2) giving each width its own batch-norm layer (multi-BN).  Both
ingredients already exist in this library, so the baseline is a thin
factory: a model built with ``norm="multi_bn"`` plus a
:class:`~repro.slicing.schemes.StaticScheme`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..models.resnet import SlicedResNet
from ..models.vgg import SlicedVGG
from ..optim import SGD
from ..slicing.schemes import StaticScheme
from ..slicing.trainer import SliceTrainer


def slimmable_vgg(plan_or_mini: str = "mini", rates: Sequence[float] = (),
                  num_classes: int = 8, width: int = 16,
                  seed: int = 0) -> SlicedVGG:
    """A VGG configured the SlimmableNet way (multi-BN)."""
    if plan_or_mini != "mini":
        raise ValueError("only the CPU-scale 'mini' configuration is provided")
    return SlicedVGG.cifar_mini(num_classes=num_classes, width=width,
                                norm="multi_bn", rates=list(rates), seed=seed)


def slimmable_resnet(rates: Sequence[float], num_classes: int = 8,
                     blocks: int = 2, base_channels: int = 8,
                     seed: int = 0) -> SlicedResNet:
    """A ResNet configured the SlimmableNet way (multi-BN)."""
    return SlicedResNet.cifar_mini(num_classes=num_classes, blocks=blocks,
                                   base_channels=base_channels,
                                   norm="multi_bn", rates=list(rates),
                                   seed=seed)


def slimmable_trainer(model, rates: Sequence[float], lr: float,
                      momentum: float = 0.9, weight_decay: float = 1e-4,
                      seed: int = 0) -> SliceTrainer:
    """A :class:`SliceTrainer` using SlimmableNet's static scheduling."""
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum,
                    weight_decay=weight_decay)
    return SliceTrainer(model, StaticScheme(list(rates)), optimizer,
                        rng=np.random.default_rng(seed))
