"""SkipNet-like dynamic block skipping (baseline of Figure 2).

SkipNet [48] learns per-block gates that decide, per input, whether to
execute or bypass each residual block.  We reproduce the mechanism with a
differentiable relaxation suited to a numpy substrate: each block has a
tiny gate network over globally-pooled features; training uses the soft
gate value with an L1 sparsity penalty (the compute target), and inference
thresholds the gate to a hard skip, so the FLOPs saving is real.

The paper's point about this baseline is that its cost control is
*emergent* rather than prescribed — the realized FLOPs depend on the input
distribution and the penalty weight, not on a dial — which is exactly the
behaviour this implementation exhibits.
"""

from __future__ import annotations

import numpy as np

from ..models.resnet import SlicedResNet
from ..nn.linear import Linear
from ..nn.module import Module, ModuleList
from ..nn.pooling import GlobalAvgPool2d
from ..tensor import Tensor, cross_entropy


class SkipGate(Module):
    """Per-block gate: pooled features -> scalar execute-probability."""

    def __init__(self, channels: int, rng: np.random.Generator):
        super().__init__()
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(self.pool(x)).sigmoid()


class AlwaysExecute(Module):
    """Placeholder gate for blocks that must always run (shape changes)."""

    def forward(self, *args, **kwargs):
        raise RuntimeError("AlwaysExecute must not be called")


class SkipNetLike(Module):
    """ResNet whose shape-preserving blocks can be skipped per input.

    Parameters
    ----------
    backbone:
        A :class:`SlicedResNet`, used at full width (SkipNet does not
        slice channels).
    skip_penalty:
        Weight of the mean-gate penalty; larger values push the model to
        skip more blocks (lower average FLOPs, lower accuracy).
    threshold:
        Hard-gate threshold at inference.
    """

    def __init__(self, backbone: SlicedResNet, skip_penalty: float = 0.05,
                 threshold: float = 0.5, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.backbone = backbone
        self.skip_penalty = skip_penalty
        self.threshold = threshold
        self.gates = ModuleList()
        for block in backbone.blocks:
            if block.shortcut is None:
                self.gates.append(SkipGate(block.in_channels, rng))
            else:
                self.gates.append(AlwaysExecute())

    def forward(self, x: Tensor, hard: bool | None = None
                ) -> tuple[Tensor, list]:
        """Return ``(logits, gates)``.

        With soft gating (training) ``gates`` holds the gate *tensors*
        (for the penalty term); with hard gating (inference) it holds the
        realized execute decisions as floats, and skipped blocks genuinely
        cost nothing.
        """
        hard = (not self.training) if hard is None else hard
        gates: list = []
        x = self.backbone.stem(x)
        for block, gate in zip(self.backbone.blocks, self.gates):
            if isinstance(gate, AlwaysExecute):
                x = block(x)
                gates.append(1.0 if hard else None)
                continue
            g = gate(x)
            if hard:
                execute = float(g.data.mean()) >= self.threshold
                gates.append(1.0 if execute else 0.0)
                if execute:
                    x = block(x)
            else:
                gates.append(g)
                residual = block(x) - x
                x = x + residual * g.reshape(g.shape[0], 1, 1, 1)
        x = self.backbone.final_norm(x).relu()
        x = self.backbone.global_pool(x)
        return self.backbone.head(x), gates

    def loss(self, inputs: Tensor, targets: np.ndarray) -> Tensor:
        """Cross-entropy plus the execute-penalty on the soft gates."""
        logits, gates = self.forward(inputs, hard=False)
        task = cross_entropy(logits, targets)
        soft = [g for g in gates if isinstance(g, Tensor)]
        if not soft:
            return task
        penalty = soft[0].mean()
        for g in soft[1:]:
            penalty = penalty + g.mean()
        return task + penalty * (self.skip_penalty / len(soft))

    def execution_fraction(self, inputs: Tensor) -> float:
        """Fraction of gated blocks executed on ``inputs`` (hard mode)."""
        was_training = self.training
        self.eval()
        try:
            _, gates = self.forward(inputs, hard=True)
        finally:
            self.train(was_training)
        decisions = [g for g, gate in zip(gates, self.gates)
                     if isinstance(gate, SkipGate)]
        return float(np.mean(decisions)) if decisions else 1.0
