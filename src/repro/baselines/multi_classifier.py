"""Multi-classifier (early-exit) baselines.

Two related baselines from the paper's Figure 2:

* ``MultiClassifierResNet`` — "ResNet with Multi-Classifiers (single
  model)": auxiliary classifier heads after each stage; inference can
  early-exit at any head, trading depth for cost.  The paper uses its
  rapid accuracy loss to argue width slicing beats depth slicing.
* ``MSDNetLike`` — an MSDNet-flavoured anytime model: the same early-exit
  structure trained with adaptive loss balancing so intermediate exits are
  first-class citizens (closer to [22]'s training recipe than the plain
  joint loss).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..models.resnet import SlicedResNet
from ..nn.module import Module, ModuleList
from ..nn.pooling import GlobalAvgPool2d
from ..slicing.layers import SlicedLinear
from ..tensor import Tensor, cross_entropy


class MultiClassifierResNet(Module):
    """A ResNet backbone with an exit head after every stage.

    ``forward`` returns the logits of every exit; ``forward_exit(k)``
    computes only up to exit ``k`` (so the FLOPs saving is real).
    """

    def __init__(self, backbone: SlicedResNet,
                 loss_weights: Sequence[float] | None = None, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.backbone = backbone
        self.pool = GlobalAvgPool2d()
        self.exits = ModuleList()
        boundaries = np.cumsum(backbone.blocks_per_stage) - 1
        self._exit_blocks = list(boundaries)
        for stage in range(len(backbone.blocks_per_stage)):
            channels = (backbone.base_channels * backbone.widen
                        * (2 ** stage) * 4)
            head = SlicedLinear(channels, backbone.num_classes,
                                slice_input=True, slice_output=False,
                                rescale=True, rng=rng)
            self.exits.append(head)
        count = len(self._exit_blocks)
        if loss_weights is None:
            loss_weights = [1.0] * count
        self.loss_weights = list(loss_weights)

    @property
    def num_exits(self) -> int:
        return len(self._exit_blocks)

    def forward(self, x: Tensor) -> list[Tensor]:
        outputs = []
        x = self.backbone.stem(x)
        exit_idx = 0
        for i, block in enumerate(self.backbone.blocks):
            x = block(x)
            if exit_idx < len(self._exit_blocks) \
                    and i == self._exit_blocks[exit_idx]:
                pooled = self.pool(x)
                outputs.append(self.exits[exit_idx](pooled))
                exit_idx += 1
        return outputs

    def forward_exit(self, x: Tensor, exit_index: int) -> Tensor:
        """Compute only the prefix of the network up to ``exit_index``."""
        x = self.backbone.stem(x)
        last_block = self._exit_blocks[exit_index]
        for i, block in enumerate(self.backbone.blocks):
            x = block(x)
            if i == last_block:
                break
        return self.exits[exit_index](self.pool(x))

    def joint_loss(self, exit_logits: list[Tensor],
                   targets: np.ndarray) -> Tensor:
        """Weighted sum of the per-exit cross-entropies."""
        total = None
        for weight, logits in zip(self.loss_weights, exit_logits):
            term = cross_entropy(logits, targets) * weight
            total = term if total is None else total + term
        return total


class MSDNetLike(MultiClassifierResNet):
    """Early-exit network trained with adaptive loss balancing.

    Follows the ANNs [21] / MSDNet [22] recipe of re-weighting exit losses
    so that earlier exits, which would otherwise be dominated by the final
    head, keep improving: each exit's weight is the inverse of its recent
    training loss (normalized), refreshed by the training harness via
    :meth:`update_weights`.
    """

    def update_weights(self, recent_losses: Sequence[float]) -> None:
        """Adapt exit weights to the inverse of recent per-exit losses."""
        losses = np.asarray(recent_losses, dtype=np.float64)
        inv = 1.0 / np.maximum(losses, 1e-6)
        self.loss_weights = list(len(losses) * inv / inv.sum())
