"""Optimizers and learning-rate schedules."""

from .sgd import SGD, clip_grad_norm
from .lr_schedule import MultiStepLR, PlateauDecay, WarmupLR

__all__ = ["SGD", "clip_grad_norm", "MultiStepLR", "PlateauDecay", "WarmupLR"]
