"""Learning-rate schedules used by the paper's training recipes.

* CIFAR CNNs: divide the LR by 10 at 50% and 75% of training
  (:class:`MultiStepLR`), optionally with gradual warmup.
* ImageNet CNNs: divide at 30/60/90% with warmup (same classes).
* NNLM: quarter the LR whenever validation perplexity stops improving
  (:class:`PlateauDecay`).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigError
from .sgd import SGD


class MultiStepLR:
    """Multiply the LR by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: SGD, milestones: Sequence[int],
                 gamma: float = 0.1):
        if sorted(milestones) != list(milestones):
            raise ConfigError("milestones must be ascending")
        self.optimizer = optimizer
        self.milestones = list(milestones)
        self.gamma = gamma
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch; apply the decay if a milestone is crossed."""
        self.epoch += 1
        if self.epoch in self.milestones:
            self.optimizer.lr *= self.gamma

    @classmethod
    def cifar_recipe(cls, optimizer: SGD, total_epochs: int) -> "MultiStepLR":
        """The paper's CIFAR schedule: /10 at 50% and 75% of training."""
        return cls(optimizer,
                   [max(1, total_epochs // 2), max(2, (3 * total_epochs) // 4)])


class WarmupLR:
    """Linear warmup from ``start_factor * lr`` to ``lr`` over some epochs."""

    def __init__(self, optimizer: SGD, warmup_epochs: int,
                 start_factor: float = 0.1):
        if warmup_epochs < 0:
            raise ConfigError("warmup_epochs must be >= 0")
        self.optimizer = optimizer
        self.warmup_epochs = warmup_epochs
        self.target_lr = optimizer.lr
        self.start_factor = start_factor
        self.epoch = 0
        if warmup_epochs > 0:
            optimizer.lr = self.target_lr * start_factor

    def step(self) -> None:
        """Advance one epoch of warmup (no-op once warmed up)."""
        self.epoch += 1
        if self.epoch < self.warmup_epochs:
            frac = self.epoch / self.warmup_epochs
            factor = self.start_factor + (1.0 - self.start_factor) * frac
            self.optimizer.lr = self.target_lr * factor
        elif self.epoch == self.warmup_epochs:
            self.optimizer.lr = self.target_lr


class PlateauDecay:
    """Decay the LR when a monitored metric stops improving.

    The NNLM recipe: "the learning rate is ... quartered in the next epoch
    if the perplexity does not decrease on the validation set".
    """

    def __init__(self, optimizer: SGD, factor: float = 0.25,
                 min_lr: float = 1e-5):
        if not 0 < factor < 1:
            raise ConfigError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.factor = factor
        self.min_lr = min_lr
        self.best: float | None = None

    def step(self, metric: float) -> bool:
        """Report a new validation metric (lower is better).

        Returns True if the LR was decayed.
        """
        if self.best is None or metric < self.best:
            self.best = metric
            return False
        self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
        return True
