"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ConfigError
from ..nn.module import Parameter


class SGD:
    """SGD with (optionally Nesterov) momentum and L2 weight decay.

    Parameters
    ----------
    params:
        Parameters to optimize (e.g. ``model.parameters()``).
    lr:
        Learning rate; mutable via :attr:`lr` so schedules can adjust it.
    momentum, weight_decay, nesterov:
        The usual SGD knobs (paper uses momentum SGD for CNNs, plain SGD
        with gradient clipping for the NNLM).
    """

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        self.params = list(params)
        if not self.params:
            raise ConfigError("SGD received no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum == 0.0:
            raise ConfigError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [None] * len(self.params)
        # Persistent per-parameter scratch so the hot loop allocates
        # nothing after the first step.  Never aliases param.grad: tests
        # and callers may hold on to the gradient arrays they assign.
        self._scratch = [None] * len(self.params)
        self._scratch2 = [None] * len(self.params)

    def _buf(self, store: list, i: int, param: Parameter) -> np.ndarray:
        buf = store[i]
        if buf is None or buf.shape != param.data.shape:
            buf = store[i] = np.empty_like(param.data)
        return buf

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient.

        All temporaries are written into persistent scratch buffers; the
        update values are bitwise identical to the out-of-place formula
        ``data -= lr * (momentum-adjusted (grad + wd * data))`` because
        every fused step keeps the same operand order and dtypes.
        """
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            buf = self._buf(self._scratch, i, param)
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=buf)
                buf += grad
                grad = buf
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                vel = self._velocity[i]
                vel *= self.momentum
                vel += grad
                if self.nesterov:
                    buf2 = self._buf(self._scratch2, i, param)
                    np.multiply(vel, self.momentum, out=buf2)
                    buf2 += grad
                    grad = buf2
                else:
                    grad = vel
            np.multiply(grad, self.lr, out=buf)
            param.data -= buf

    def zero_grad(self) -> None:
        """Drop all parameter gradients."""
        for param in self.params:
            param.zero_grad()


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (standard for LSTM language models).
    """
    params = [p for p in params if p.grad is not None]
    total = 0.0
    for p in params:
        flat = p.grad.reshape(-1)
        total += float(np.dot(flat, flat))
    total = float(np.sqrt(total))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
