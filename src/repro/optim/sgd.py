"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ConfigError
from ..nn.module import Parameter


class SGD:
    """SGD with (optionally Nesterov) momentum and L2 weight decay.

    Parameters
    ----------
    params:
        Parameters to optimize (e.g. ``model.parameters()``).
    lr:
        Learning rate; mutable via :attr:`lr` so schedules can adjust it.
    momentum, weight_decay, nesterov:
        The usual SGD knobs (paper uses momentum SGD for CNNs, plain SGD
        with gradient clipping for the NNLM).
    """

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        self.params = list(params)
        if not self.params:
            raise ConfigError("SGD received no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum == 0.0:
            raise ConfigError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [None] * len(self.params)

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is None:
                continue
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(param.data)
                vel = self._velocity[i]
                vel *= self.momentum
                vel += grad
                grad = self.momentum * vel + grad if self.nesterov else vel
            param.data -= (self.lr * grad).astype(param.data.dtype, copy=False)

    def zero_grad(self) -> None:
        """Drop all parameter gradients."""
        for param in self.params:
            param.zero_grad()


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (standard for LSTM language models).
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
