"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``
    Print library version and the standard experiment configuration.
``demo``
    Train a small sliced model and print its accuracy per rate.
``reproduce ARTIFACT``
    Compute one of the paper's tables/figures via the cached experiment
    suites and print the paper-style rows (same output as the matching
    benchmark, without pytest).
``serve-demo``
    Run the Sec. 4.1 dynamic-workload serving simulation.
``runtime``
    Run the continuous-time multi-replica runtime: dynamic batching,
    slice-rate-aware dispatch, one injected replica crash, and a JSON
    telemetry report (``--json``).  ``--trace PATH`` additionally
    records a deterministic JSONL observability trace (spans, events,
    metrics snapshot) via :mod:`repro.obs`.
``plan``
    Compile per-rate inference plans for a demo model and print, per
    rate, the plan's resident weight size, compile time, and the
    compiled-vs-uncompiled forward latency (see
    :mod:`repro.slicing.plans`).
``obs summarize TRACE [TRACE ...]``
    Summarize one or more JSONL observability traces (globs accepted;
    multiple traces merge): top spans by total time, event counts, and
    the metrics snapshot — histograms include estimated p50/p95/p99 —
    as aligned tables.
``diagnose``
    Train a small sliced demo model and print the slice-quality
    diagnosis: embedding-space error slices with per-profile
    degradation curves, per-layer activation-divergence attribution,
    and the diagnosis-weighted scheduling distribution (byte-identical
    JSON via ``--json``, per-example eval trace via ``--trace``).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__


def _cmd_info(args) -> int:
    from .experiments import ImageExperimentConfig, TextExperimentConfig

    print(f"repro {__version__} — Model Slicing (Cai et al., PVLDB 2019)")
    print("\nimage experiment protocol:")
    for key, value in vars(ImageExperimentConfig()).items():
        print(f"  {key} = {value}")
    print("\ntext experiment protocol:")
    for key, value in vars(TextExperimentConfig()).items():
        print(f"  {key} = {value}")
    return 0


def _cmd_demo(args) -> int:
    import numpy as np

    from .data import ArrayDataset, DataLoader
    from .models import MLP
    from .optim import SGD
    from .slicing import RandomStaticScheme, SliceTrainer

    rng = np.random.default_rng(args.seed)
    weights = rng.normal(size=(16, 4))
    inputs = rng.normal(size=(1536, 16)).astype(np.float32)
    labels = (inputs @ weights).argmax(axis=1)
    train = ArrayDataset(inputs[:1024], labels[:1024])
    test = ArrayDataset(inputs[1024:], labels[1024:])

    rates = [0.25, 0.5, 0.75, 1.0]
    model = MLP(16, [64, 64], 4, seed=args.seed)
    trainer = SliceTrainer(model, RandomStaticScheme(rates, num_random=1),
                           SGD(model.parameters(), lr=0.05, momentum=0.9),
                           rng=rng)
    print(f"training a sliced MLP for {args.epochs} epochs ...")
    trainer.fit(lambda: DataLoader(train, 64, shuffle=True,
                                   rng=np.random.default_rng(args.seed + 1)),
                epochs=args.epochs)
    results = trainer.evaluate(DataLoader(test, 256), rates=rates)
    for rate in rates:
        print(f"  Subnet-{rate}: accuracy {results[rate]['accuracy']:.3f}")
    return 0


ARTIFACTS = {
    "table1": ("vgg_suite", "scheduling_experiment"),
    "table2": ("nnlm_suite", "nnlm_experiment"),
    "table4": ("vgg_suite", "sliced_vgg_experiment"),
    "table5": ("cascade_suite", "cascade_experiment"),
    "figure2": ("resnet_suite", "sliced_resnet_experiment"),
    "figure3": ("vgg_suite", "lower_bound_experiment"),
    "figure4": ("nnlm_suite", "nnlm_experiment"),
    "figure5": ("vgg_suite", "sliced_vgg_experiment"),
    "serving": ("serving_suite", "serving_experiment"),
}


def _cmd_reproduce(args) -> int:
    import importlib
    import json

    from .experiments import (
        ExperimentCache,
        ImageExperimentConfig,
        ServingExperimentConfig,
        TextExperimentConfig,
    )

    if args.artifact not in ARTIFACTS:
        print(f"unknown artifact {args.artifact!r}; choose from "
              f"{sorted(ARTIFACTS)}", file=sys.stderr)
        return 2
    module_name, func_name = ARTIFACTS[args.artifact]
    module = importlib.import_module(f"repro.experiments.{module_name}")
    func = getattr(module, func_name)
    cache = ExperimentCache()
    if module_name == "nnlm_suite":
        result = func(TextExperimentConfig(), cache)
    elif module_name == "serving_suite":
        result = func(ImageExperimentConfig(), ServingExperimentConfig(),
                      cache)
    else:
        result = func(ImageExperimentConfig(), cache)
    print(json.dumps(result, indent=1))
    return 0


def _cmd_serve_demo(args) -> int:
    import numpy as np

    from .serving import (
        FixedRateController,
        SliceRateController,
        diurnal_rate,
        generate_arrivals,
        simulate_serving,
    )

    rates = [0.25, 0.5, 0.75, 1.0]
    accuracy = {0.25: 0.62, 0.5: 0.85, 0.75: 0.91, 1.0: 0.94}
    intensity = diurnal_rate(args.base_rate, args.peak_ratio, 60.0)
    arrivals = generate_arrivals(intensity, args.duration,
                                 np.random.default_rng(args.seed))
    print(f"{len(arrivals)} queries over {args.duration}s, "
          f"{args.peak_ratio}x volatility\n")
    controllers = {
        "model slicing": SliceRateController(rates, 0.002, 0.1),
        "fixed full": FixedRateController(1.0, 0.002, 0.1),
        "fixed small": FixedRateController(0.25, 0.002, 0.1),
    }
    for name, controller in controllers.items():
        report = simulate_serving(arrivals, controller, 0.002, 0.1,
                                  accuracy, args.duration)
        print(f"{name:<14} dropped={report.drop_fraction:.2%} "
              f"slo_miss={report.slo_violations} "
              f"accuracy={report.mean_accuracy:.3f} "
              f"mean_rate={report.mean_rate:.3f}")
    return 0


def _runtime_demo_model(args, rates):
    """The model + eval split the runtime demos serve.

    ``--model mlp`` trains the planted demo MLP; ``--model tenc`` builds
    the seeded sliced-attention transformer encoder and labels a random
    eval batch with the *full-width* model's own predictions, so the
    per-rate accuracy table measures fidelity to the full model (1.0 at
    rate 1.0 by construction) without any training.
    """
    import numpy as np

    from .slicing.resume import ResumablePlan

    if args.model == "tenc":
        from .models import TransformerEncoder

        model = TransformerEncoder(
            image_size=8, patch_size=4, channels=3, num_classes=8,
            embed_dim=32, num_heads=4, ffn_dim=64, depth=2, seed=args.seed)
        model.eval()
        rng = np.random.default_rng(args.seed)
        eval_x = rng.normal(size=(512, 3, 8, 8)).astype(np.float32)
        eval_y = np.argmax(ResumablePlan(model, 1.0).run(eval_x), axis=-1)
        print(f"building the seeded sliced-attention encoder (seed "
              f"{args.seed}); accuracy = agreement with full width",
              file=sys.stderr)
        data = {"eval_x": eval_x, "eval_y": eval_y}
    else:
        from .diagnose.demo import train_demo_model

        print(f"training the demo MLP for {args.cascade_epochs} epochs "
              f"(seed {args.seed}) ...", file=sys.stderr)
        model, data = train_demo_model(seed=args.seed,
                                       epochs=args.cascade_epochs)
    inputs = data["eval_x"].astype(np.float32)
    labels = data["eval_y"]
    accuracy = {}
    for rate in rates:
        logits = ResumablePlan(model, rate).run(inputs)
        accuracy[rate] = float(
            np.mean(np.argmax(logits, axis=-1) == labels))
    return model, inputs, labels, accuracy


def _cmd_runtime_workers(args) -> int:
    """``repro runtime --workers N``: true-parallel process serving demo.

    Builds the demo model (``--model``: the trained demo MLP or the
    seeded sliced-attention transformer encoder), moves its weights into
    a shared-memory arena (:meth:`Module.share_memory`), and serves the
    arrival trace
    through ``N`` real worker processes — real predictions computed in
    the workers, simulated clock in the parent.  With ``--trace``, each
    worker writes its own JSONL next to the parent's; merge them with
    ``repro obs summarize 'TRACE*'``.
    """
    import numpy as np

    from . import obs
    from .runtime import (
        FaultPlan,
        InferenceRuntime,
        LatencyProfile,
        ProcessReplicaPool,
        RuntimeConfig,
        format_seconds,
    )
    from .serving import (
        FixedRateController,
        SliceRateController,
        diurnal_rate,
        generate_arrivals,
        spike_rate,
    )

    rates = [0.25, 0.5, 0.75, 1.0]
    full_latency, slo = 0.002, 0.1
    model, inputs, labels, accuracy = _runtime_demo_model(args, rates)

    intensity = spike_rate(
        diurnal_rate(args.base_rate, args.peak_ratio, 60.0),
        [(args.duration * 0.25, args.duration * 0.1, 2.0)])
    arrivals = generate_arrivals(intensity, args.duration,
                                 np.random.default_rng(args.seed))
    crash_id = f"w{min(1, args.workers - 1)}"
    plan = FaultPlan() if args.no_faults else FaultPlan.single_crash(
        crash_id, args.crash_time if args.crash_time is not None
        else args.duration * 0.3)
    print(f"{len(arrivals)} queries over {args.duration}s, "
          f"{args.workers} worker processes over one shared-memory "
          f"arena, faults={'none' if args.no_faults else 'one crash'}\n")
    if args.trace:
        obs.configure(trace_path=args.trace, clock=obs.TickClock())

    controllers = {
        "model slicing": SliceRateController(rates, full_latency, slo),
        "fixed full": FixedRateController(1.0, full_latency, slo),
        "fixed small": FixedRateController(0.25, full_latency, slo),
    }
    print(f"{'policy':<14} {'dropped':>8} {'goodput':>9} {'p50':>8} "
          f"{'p99':>8} {'measured':>9} {'good*acc':>9}")
    elastic_report = None
    worker_requests: dict[str, dict] = {}
    for name, controller in controllers.items():
        slug = name.replace(" ", "-")
        traces = [f"{args.trace}.{slug}.w{i}.jsonl"
                  for i in range(args.workers)] if args.trace else None
        pool = ProcessReplicaPool(
            model, args.workers, LatencyProfile(full_latency),
            dispatch=args.dispatch, seed=args.seed, trace_paths=traces)
        try:
            pool.warm_plans(rates)
            config = RuntimeConfig(latency_slo=slo, max_batch_size=400,
                                   batch_timeout=args.batch_timeout,
                                   dispatch=args.dispatch, seed=args.seed)
            runtime = InferenceRuntime(pool, controller, config, accuracy,
                                       fault_plan=plan, inputs=inputs,
                                       labels=labels)
            with obs.span("runtime.policy", policy=name):
                report = runtime.run(arrivals, args.duration)
            worker_requests[name] = {
                stats["worker"]: stats["requests"]
                for stats in pool.worker_stats()}
        finally:
            pool.shutdown()
        if name == "model slicing":
            elastic_report = report
        tails = report.latency_percentiles()
        measured = report.measured_accuracy
        print(f"{name:<14} {report.drop_fraction:>8.2%} "
              f"{report.goodput:>9.1f} {format_seconds(tails['p50']):>8} "
              f"{format_seconds(tails['p99']):>8} "
              f"{'-' if measured is None else f'{measured:>9.3f}'} "
              f"{report.goodput_weighted_accuracy:>9.3f}")
    print("\nrequests served per worker process:")
    for name, counts in worker_requests.items():
        shares = " ".join(f"{worker}={count}"
                          for worker, count in sorted(counts.items()))
        print(f"  {name:<14} {shares}")
    if args.json and elastic_report is not None:
        with open(args.json, "w") as handle:
            handle.write(elastic_report.to_json())
        print(f"\nelastic policy telemetry written to {args.json}")
    if args.trace:
        obs.shutdown()
        print(f"observability traces written to {args.trace}* "
              f"(merge with: repro obs summarize '{args.trace}*')")
    return 0


def _cmd_runtime_cascade(args) -> int:
    """``repro runtime --cascade``: confidence-cascade serving demo.

    Trains the seeded demo MLP (planted easy/hard regions), then serves
    the same arrival trace three ways — the cascade (start every
    request at the cheapest stage, escalate low-margin rows via
    ResumablePlan.widen) and the fixed cheapest/widest profiles — and
    prints measured accuracy, FLOPs per request and escalation stats.
    Fully deterministic under one seed; ``--trace`` uses the TickClock
    so the JSONL is byte-identical across runs.
    """
    import numpy as np

    from . import obs
    from .diagnose.demo import DEMO_RATES
    from .runtime import (
        CascadeExecutor,
        CascadeStage,
        FaultPlan,
        InferenceRuntime,
        LatencyProfile,
        ProcessReplicaPool,
        Replica,
        ReplicaPool,
        RuntimeConfig,
        format_seconds,
    )
    from .serving import (
        CascadeController,
        FixedRateController,
        diurnal_rate,
        generate_arrivals,
        spike_rate,
    )

    full_latency, slo = 0.002, 0.1
    rates = list(DEMO_RATES)
    thresholds = args.cascade_thresholds or [1.0] * (len(rates) - 1)
    if len(thresholds) != len(rates) - 1:
        print(f"--cascade-thresholds needs {len(rates) - 1} values "
              f"(stages {rates[:-1]})", file=sys.stderr)
        return 2
    # Measured per-rate accuracy on the eval split doubles as the
    # runtime's expected-accuracy table.
    model, inputs, labels, accuracy = _runtime_demo_model(args, rates)

    stages = [CascadeStage(rate, threshold) for rate, threshold
              in zip(rates[:-1], thresholds)]
    stages.append(CascadeStage(rates[-1]))
    # Transformer plans do not support row subsetting (the attention
    # cache couples the batch axis), so escalation recomputes instead of
    # resuming; thresholds and predictions are unchanged.
    executor = CascadeExecutor(model, stages, exact=True,
                               incremental=args.model != "tenc")
    cost = {rate: full_latency * rate * rate for rate in rates}
    # High-margin exits at a cheap stage are far more accurate than the
    # stage's marginal accuracy: calibrate the cascade's per-stage exit
    # accuracy on the eval split (the table its runtime reports against).
    calibrated = executor.calibrate(inputs, labels)

    intensity = spike_rate(
        diurnal_rate(args.base_rate, args.peak_ratio, 60.0),
        [(args.duration * 0.25, args.duration * 0.1, 2.0)])
    arrivals = generate_arrivals(intensity, args.duration,
                                 np.random.default_rng(args.seed))
    crash_id = f"w{min(1, args.workers - 1)}" if args.workers \
        else f"r{min(1, args.replicas - 1)}"
    plan = FaultPlan() if args.no_faults else FaultPlan.single_crash(
        crash_id, args.crash_time if args.crash_time is not None
        else args.duration * 0.3)
    hosts = (f"{args.workers} worker processes" if args.workers
             else f"{args.replicas} replicas")
    print(f"{len(arrivals)} queries over {args.duration}s, "
          f"{hosts}, stages "
          f"{[s.label() for s in stages]}, thresholds {thresholds}\n")
    if args.trace:
        obs.configure(trace_path=args.trace, clock=obs.TickClock())

    policies = {
        "cascade": (CascadeController(rates, cost, slo), executor),
        "fixed full": (FixedRateController(rates[-1], full_latency, slo),
                       None),
        "fixed small": (FixedRateController(rates[0], full_latency, slo),
                        None),
    }
    print(f"{'policy':<12} {'dropped':>8} {'goodput':>9} {'p99':>8} "
          f"{'good*acc':>9} {'measured':>9} {'escalated':>10}")
    cascade_report = None
    for name, (controller, cascade) in policies.items():
        if args.workers:
            slug = name.replace(" ", "-")
            traces = [f"{args.trace}.{slug}.w{i}.jsonl"
                      for i in range(args.workers)] if args.trace else None
            pool = ProcessReplicaPool(
                model, args.workers, LatencyProfile(full_latency),
                dispatch=args.dispatch, seed=args.seed, trace_paths=traces)
        else:
            pool = ReplicaPool(
                [Replica(f"r{i}", LatencyProfile(full_latency), model=model)
                 for i in range(args.replicas)],
                dispatch=args.dispatch, seed=args.seed)
        try:
            if cascade is not None:
                pool.warm_cascade(cascade)
            config = RuntimeConfig(latency_slo=slo, max_batch_size=400,
                                   batch_timeout=args.batch_timeout,
                                   dispatch=args.dispatch, seed=args.seed)
            runtime = InferenceRuntime(
                pool, controller, config,
                calibrated if cascade is not None else accuracy,
                fault_plan=plan, inputs=inputs, labels=labels,
                cascade=cascade)
            with obs.span("runtime.policy", policy=name):
                report = runtime.run(arrivals, args.duration)
        finally:
            pool.shutdown()
        if name == "cascade":
            cascade_report = report
        tails = report.latency_percentiles()
        escalated = report.escalation_fraction
        measured = report.measured_accuracy
        print(f"{name:<12} {report.drop_fraction:>8.2%} "
              f"{report.goodput:>9.1f} {format_seconds(tails['p99']):>8} "
              f"{report.goodput_weighted_accuracy:>9.3f} "
              f"{'-' if measured is None else f'{measured:>9.3f}'} "
              f"{'-' if escalated is None else f'{escalated:>10.2%}'}")
    if args.json and cascade_report is not None:
        with open(args.json, "w") as handle:
            handle.write(cascade_report.to_json())
        print(f"\ncascade policy telemetry written to {args.json}")
    if args.trace:
        obs.shutdown()
        print(f"observability trace written to {args.trace} "
              f"(inspect with: repro obs summarize {args.trace})")
    return 0


def _cmd_runtime(args) -> int:
    import numpy as np

    from . import obs
    from .runtime import (
        FaultPlan,
        InferenceRuntime,
        LatencyProfile,
        Replica,
        ReplicaPool,
        RuntimeConfig,
        format_seconds,
    )
    from .serving import (
        FixedRateController,
        SliceRateController,
        diurnal_rate,
        generate_arrivals,
        spike_rate,
    )

    if args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 2
    if args.cascade:
        return _cmd_runtime_cascade(args)
    if args.workers:
        return _cmd_runtime_workers(args)
    rates = [0.25, 0.5, 0.75, 1.0]
    if args.model == "tenc":
        # Replicas are simulated here, but the expected-accuracy table
        # is measured on the real encoder (fidelity to full width).
        _, _, _, accuracy = _runtime_demo_model(args, rates)
    else:
        accuracy = {0.25: 0.62, 0.5: 0.85, 0.75: 0.91, 1.0: 0.94}
    full_latency, slo = 0.002, 0.1
    intensity = spike_rate(
        diurnal_rate(args.base_rate, args.peak_ratio, 60.0),
        [(args.duration * 0.25, args.duration * 0.1, 2.0)])
    arrivals = generate_arrivals(intensity, args.duration,
                                 np.random.default_rng(args.seed))
    crash_id = f"r{min(1, args.replicas - 1)}"  # must exist in the pool
    plan = FaultPlan() if args.no_faults else FaultPlan.single_crash(
        crash_id, args.crash_time if args.crash_time is not None
        else args.duration * 0.3)
    print(f"{len(arrivals)} queries over {args.duration}s, "
          f"{args.replicas} replicas, "
          f"faults={'none' if args.no_faults else 'one crash'}\n")
    if args.trace:
        # TickClock: the trace stays byte-identical across runs (the
        # engine stamps simulated time; everything else counts ticks).
        obs.configure(trace_path=args.trace, clock=obs.TickClock())

    controllers = {
        "model slicing": SliceRateController(rates, full_latency, slo),
        "fixed full": FixedRateController(1.0, full_latency, slo),
        "fixed small": FixedRateController(0.25, full_latency, slo),
    }
    print(f"{'policy':<14} {'dropped':>8} {'goodput':>9} {'p50':>8} "
          f"{'p99':>8} {'retries':>8} {'good*acc':>9}")
    elastic_report = None
    for name, controller in controllers.items():
        pool = ReplicaPool(
            [Replica(f"r{i}", LatencyProfile(full_latency))
             for i in range(args.replicas)],
            dispatch=args.dispatch, seed=args.seed)
        config = RuntimeConfig(latency_slo=slo, max_batch_size=400,
                               batch_timeout=args.batch_timeout,
                               dispatch=args.dispatch, seed=args.seed)
        runtime = InferenceRuntime(pool, controller, config, accuracy,
                                   fault_plan=plan)
        with obs.span("runtime.policy", policy=name):
            report = runtime.run(arrivals, args.duration)
        if name == "model slicing":
            elastic_report = report
        tails = report.latency_percentiles()
        print(f"{name:<14} {report.drop_fraction:>8.2%} "
              f"{report.goodput:>9.1f} {format_seconds(tails['p50']):>8} "
              f"{format_seconds(tails['p99']):>8} {report.retries:>8} "
              f"{report.goodput_weighted_accuracy:>9.3f}")
    if args.json and elastic_report is not None:
        with open(args.json, "w") as handle:
            handle.write(elastic_report.to_json())
        print(f"\nelastic policy telemetry written to {args.json}")
    if args.trace:
        obs.shutdown()
        print(f"observability trace written to {args.trace} "
              f"(inspect with: repro obs summarize {args.trace})")
    return 0


def _cmd_obs(args) -> int:
    import glob as globlib

    from .errors import DataError
    from .obs.summary import summarize

    paths: list[str] = []
    for pattern in args.trace:
        matched = sorted(globlib.glob(pattern))
        paths.extend(matched if matched else [pattern])
    try:
        print(summarize(paths, top=args.top))
    except (OSError, DataError) as exc:
        print(f"cannot summarize {', '.join(paths)}: {exc}",
              file=sys.stderr)
        return 2
    return 0


def _cmd_diagnose(args) -> int:
    from . import obs
    from .diagnose import diagnose, train_demo_model

    rates = sorted(set(args.rates)) if args.rates else [0.25, 0.5, 1.0]
    if args.trace:
        # TickClock: byte-identical JSONL across runs under one seed.
        obs.configure(trace_path=args.trace, clock=obs.TickClock())
    print(f"training a sliced demo MLP for {args.epochs} epochs "
          f"(seed {args.seed}) ...", file=sys.stderr)
    model, data = train_demo_model(seed=args.seed, epochs=args.epochs,
                                   rates=rates)
    report = diagnose(model, data["eval_x"], data["eval_y"], rates,
                      k=args.slices, seed=args.seed)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"diagnosis report written to {args.json}", file=sys.stderr)
    print(report.render())
    if args.trace:
        obs.shutdown()
        print(f"per-example eval trace written to {args.trace} "
              f"(inspect with: repro obs summarize {args.trace})",
              file=sys.stderr)
    return 0


def _cmd_plan(args) -> int:
    import time

    import numpy as np

    from .metrics.latency import measure_latency
    from .models import MLP, NNLM, SlicedVGG, TransformerEncoder, TransformerLM
    from .slicing import PlanCache

    rng = np.random.default_rng(args.seed)
    if args.model == "mlp":
        model = MLP(32, [64, 64], 8, seed=args.seed)
        inputs = rng.normal(size=(args.batch, 32)).astype(np.float32)
    elif args.model == "cnn":
        model = SlicedVGG.cifar_mini(width=16, seed=args.seed)
        inputs = rng.normal(size=(args.batch, 3, 8, 8)).astype(np.float32)
    elif args.model == "tenc":
        model = TransformerEncoder(image_size=8, patch_size=4, channels=3,
                                   num_classes=8, embed_dim=32, num_heads=4,
                                   ffn_dim=64, depth=2, seed=args.seed)
        inputs = rng.normal(size=(args.batch, 3, 8, 8)).astype(np.float32)
    elif args.model == "tlm":
        model = TransformerLM(64, embed_dim=32, num_heads=4, ffn_dim=64,
                              depth=2, max_seq=16, seed=args.seed)
        inputs = rng.integers(0, 64, size=(12, args.batch))
    else:
        model = NNLM(64, embed_dim=32, hidden_size=32, seed=args.seed)
        inputs = rng.integers(0, 64, size=(12, args.batch))
    model.eval()

    rates = sorted(set(args.rates)) if args.rates else [i / 8 for i in
                                                        range(1, 9)]
    cache = PlanCache()
    print(f"compiled inference plans — {args.model}, batch {args.batch}, "
          f"{args.repeats} timing repeats")
    header = (f"{'rate':>6} {'steps':>6} {'plan KiB':>9} {'compile ms':>11} "
              f"{'plan ms':>9} {'sliced ms':>10} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for rate in rates:
        start = time.perf_counter()
        plan = cache.get(model, rate)
        compile_ms = (time.perf_counter() - start) * 1e3
        plan_s = measure_latency(model, inputs, rate, repeats=args.repeats,
                                 warmup=1, use_plan=True, plan_cache=cache)
        sliced_s = measure_latency(model, inputs, rate, repeats=args.repeats,
                                   warmup=1)
        print(f"{rate:>6.3f} {len(plan.steps):>6d} "
              f"{plan.param_bytes() / 1024:>9.1f} {compile_ms:>11.2f} "
              f"{plan_s * 1e3:>9.3f} {sliced_s * 1e3:>10.3f} "
              f"{sliced_s / plan_s:>7.2f}x")
    stats = cache.stats()
    print(f"\ncache: size={stats['size']} hits={stats['hits']} "
          f"misses={stats['misses']} invalidations={stats['invalidations']} "
          f"evictions={stats['evictions']}")
    return 0


def _cmd_sizing(args) -> int:
    import numpy as np

    from .cluster import (
        AutoscalerConfig,
        CapacityReport,
        CostTable,
        GiB,
        NodeSpec,
        SimulationConfig,
        SizingRequest,
        parse_forecast,
        plan_capacity,
        simulate_autoscaling,
    )
    from .errors import ServingError
    from .models import MLP, SlicedVGG, TransformerEncoder, TransformerLM
    from .runtime.replica import LatencyProfile

    # The demo accuracy/rate trade-off (anchored at the Sec 4.1 demo
    # table); arbitrary --rates interpolate along it.
    anchors = ([0.0, 0.25, 0.5, 0.75, 1.0],
               [0.30, 0.62, 0.85, 0.91, 0.94])

    input_builder = None
    if args.model == "mlp":
        model = MLP(32, [64, 64], 8, seed=args.seed)
        input_shape = (1, 32)
    elif args.model == "tenc":
        model = TransformerEncoder(image_size=8, patch_size=4, channels=3,
                                   num_classes=8, embed_dim=32, num_heads=4,
                                   ffn_dim=64, depth=2, seed=args.seed)
        input_shape = (1, 3, 8, 8)
    elif args.model == "tlm":
        model = TransformerLM(64, embed_dim=32, num_heads=4, ffn_dim=64,
                              depth=2, max_seq=16, seed=args.seed)
        # Decoder inputs are time-major token ids: one 16-step session
        # column per "sample".
        input_shape = (16, 1)
        rng = np.random.default_rng(args.seed)
        input_builder = lambda shape: rng.integers(  # noqa: E731
            0, 64, size=shape)
    else:
        model = SlicedVGG.cifar_mini(width=16, seed=args.seed)
        input_shape = (1, 3, 8, 8)
    model.eval()
    rates = sorted(set(args.rates)) if args.rates else [0.25, 0.5, 0.75, 1.0]
    accuracy = {r: float(np.interp(r, *anchors)) for r in rates}

    try:
        spec = parse_forecast(args.forecast)
        table = CostTable.from_model(
            model, input_shape, accuracy,
            LatencyProfile(args.full_latency),
            input_builder=input_builder)
        node_spec = NodeSpec(memory_bytes=args.node_memory_gb * GiB,
                             flops_per_sec=args.node_flops,
                             max_replicas=args.max_replicas,
                             sessions_per_replica=args.sessions_per_user)
        request = SizingRequest(
            spec=spec, window_seconds=args.window,
            latency_slo=args.slo_p95 / 1e3,
            accuracy_floor=args.accuracy_floor,
            headroom=args.headroom, ha_spares=args.ha_spares)
        plan = plan_capacity(request, table, node_spec)

        simulations = []
        if not args.no_simulate:
            sim_config = SimulationConfig(
                window_seconds=args.window,
                latency_slo=request.latency_slo, seed=args.seed)
            scaler_config = AutoscalerConfig(boot_windows=args.boot_windows)
            simulations.append(simulate_autoscaling(
                spec, table, node_spec, sim_config, scaler_config,
                plan.replicas_per_node, schedule=plan.schedule,
                label="elastic"))
            best = plan.best_fixed
            if best is not None:
                fixed_table = CostTable([best.cost])
                simulations.append(simulate_autoscaling(
                    spec, fixed_table, node_spec, sim_config,
                    scaler_config, best.replicas_per_node,
                    schedule=best.schedule,
                    label=f"fixed-{best.cost.label()}"))
                simulations.append(simulate_autoscaling(
                    spec, fixed_table, node_spec, sim_config,
                    scaler_config, best.replicas_per_node, static=True,
                    initial_nodes=best.nodes_static,
                    label=f"fixed-{best.cost.label()}-static"))
    except ServingError as exc:
        print(f"sizing failed: {exc}", file=sys.stderr)
        return 2

    report = CapacityReport(plan, simulations)
    print(report.render())
    if any(cost.kv_bytes_per_session > 0 for cost in table):
        # Decoder sessions hold KV caches resident between requests, so
        # node memory — not FLOPs — can bound how many users a node
        # keeps live.  (weights + batch activations already deducted.)
        print(f"\nKV-cache session capacity per node "
              f"({args.sessions_per_user} resident sessions budgeted "
              f"per replica):")
        print(f"{'profile':>8} {'kv bytes/session':>17} "
              f"{'max resident sessions':>22}")
        for cost in table:
            capacity = node_spec.max_sessions(cost)
            text = "unbounded" if capacity == float("inf") \
                else f"{int(capacity)}"
            print(f"{cost.label():>8} {cost.kv_bytes_per_session:>17.0f} "
                  f"{text:>22}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json())
        print(f"\ncapacity report written to {args.json}")
    return 0


def _cmd_profile(args) -> int:
    import json

    from .errors import BudgetError
    from .metrics.flops import measured_flops, memory_of_profile
    from .models import MLP, SlicedVGG
    from .slicing.budget import (
        search_profile_for_budget,
        uniform_rate_for_budget,
    )

    if args.model == "mlp":
        model = MLP(32, [64, 64], 8, seed=args.seed)
        input_shape = (args.batch, 32)
    else:
        model = SlicedVGG.cifar_mini(width=16, seed=args.seed)
        input_shape = (args.batch, 3, 8, 8)
    model.eval()

    rates = sorted(set(args.rates)) if args.rates \
        else [i / 8 for i in range(1, 9)]
    full_cost = measured_flops(model, input_shape, rate=1.0)
    budget = args.budget if args.budget is not None \
        else args.budget_fraction * full_cost
    try:
        searched = search_profile_for_budget(model, input_shape, budget,
                                             rates)
        uniform = uniform_rate_for_budget(model, input_shape, budget, rates)
    except BudgetError as exc:
        print(f"profile search failed: {exc}", file=sys.stderr)
        return 2

    searched_mem = memory_of_profile(model, input_shape,
                                     rate=searched.profile)
    uniform_mem = memory_of_profile(model, input_shape,
                                    rate=uniform.profile)
    if args.json:
        print(json.dumps({
            "model": args.model,
            "full_cost": full_cost,
            "budget": budget,
            "searched": searched.to_dict(),
            "searched_memory": searched_mem,
            "uniform": uniform.to_dict(),
            "uniform_memory": uniform_mem,
        }, indent=1, sort_keys=True))
        return 0
    print(f"profile search — {args.model}, budget {budget:.4g} FLOPs "
          f"({budget / full_cost:.1%} of full-width {full_cost:.4g})")
    print(f"searched profile ({searched.profile.fingerprint()}):")
    for name, rate in searched.profile.items():
        print(f"  {name:<20} {rate:g}")
    print(f"  cost {searched.cost:.4g} ({searched.cost / full_cost:.1%} "
          f"of full) after {searched.evals} cost evaluations")
    print(f"  memory: {searched_mem['param_bytes']:.0f}B params + "
          f"{searched_mem['peak_activation_bytes']:.0f}B peak activations "
          f"(batch {searched_mem['batch']})")
    print(f"best uniform rate {float(uniform.profile):g}: "
          f"cost {uniform.cost:.4g} ({uniform.cost / full_cost:.1%} of full)")
    print(f"  memory: {uniform_mem['param_bytes']:.0f}B params + "
          f"{uniform_mem['peak_activation_bytes']:.0f}B peak activations "
          f"(batch {uniform_mem['batch']})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Model Slicing reproduction (Cai et al., PVLDB 2019)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print version and experiment protocols")

    demo = sub.add_parser("demo", help="train a small sliced model")
    demo.add_argument("--epochs", type=int, default=20)
    demo.add_argument("--seed", type=int, default=0)

    rep = sub.add_parser("reproduce",
                         help="compute a paper artifact (JSON output)")
    rep.add_argument("artifact", choices=sorted(ARTIFACTS))

    serve = sub.add_parser("serve-demo",
                           help="run the Sec 4.1 serving simulation")
    serve.add_argument("--base-rate", type=float, default=100.0)
    serve.add_argument("--peak-ratio", type=float, default=16.0)
    serve.add_argument("--duration", type=float, default=120.0)
    serve.add_argument("--seed", type=int, default=0)

    runtime = sub.add_parser(
        "runtime",
        help="run the continuous-time multi-replica serving runtime")
    runtime.add_argument("--replicas", type=int, default=3)
    runtime.add_argument("--base-rate", type=float, default=100.0)
    runtime.add_argument("--peak-ratio", type=float, default=16.0)
    runtime.add_argument("--duration", type=float, default=60.0)
    runtime.add_argument("--batch-timeout", type=float, default=0.01)
    runtime.add_argument("--dispatch", default="least-loaded",
                         choices=["least-loaded", "power-of-two"])
    runtime.add_argument("--crash-time", type=float, default=None,
                         help="when the injected crash fires "
                              "(default: 30%% into the run)")
    runtime.add_argument("--no-faults", action="store_true")
    runtime.add_argument("--cascade", action="store_true",
                         help="serve a trained demo model through a "
                              "confidence cascade (margin-gated "
                              "incremental escalation) and compare "
                              "against fixed profiles")
    runtime.add_argument("--cascade-thresholds", type=float, nargs="*",
                         default=None, metavar="MARGIN",
                         help="per-stage escalation margins (one per "
                              "non-terminal stage; default 1.0 each)")
    runtime.add_argument("--workers", type=int, default=0, metavar="N",
                         help="serve through N real worker processes over "
                              "a shared-memory weight arena (0 = classic "
                              "in-process replicas); composes with "
                              "--cascade")
    runtime.add_argument("--cascade-epochs", type=int, default=4,
                         help="demo-model training epochs in cascade mode")
    runtime.add_argument("--model", default="mlp",
                         choices=["mlp", "tenc"],
                         help="model the demos serve: the trained demo "
                              "MLP, or the seeded sliced-attention "
                              "transformer encoder scored by agreement "
                              "with its own full width (the decoder LM "
                              "is session-based — see repro plan/sizing "
                              "--model tlm)")
    runtime.add_argument("--seed", type=int, default=0)
    runtime.add_argument("--json", default=None, metavar="PATH",
                         help="write the elastic policy's telemetry "
                              "report as JSON")
    runtime.add_argument("--trace", default=None, metavar="PATH",
                         help="record a deterministic JSONL observability "
                              "trace (spans, events, metrics snapshot)")

    plan = sub.add_parser(
        "plan",
        help="compile per-rate inference plans and compare against the "
             "uncompiled sliced forward")
    plan.add_argument("--model", default="cnn",
                      choices=["mlp", "cnn", "nnlm", "tenc", "tlm"],
                      help="tenc/tlm are the sliced-attention transformer "
                           "encoder and decoder LM (head+FFN slicing)")
    plan.add_argument("--batch", type=int, default=8)
    plan.add_argument("--repeats", type=int, default=15)
    plan.add_argument("--rates", type=float, nargs="*", default=None,
                      help="slice rates to compile (default: the G=8 grid)")
    plan.add_argument("--seed", type=int, default=0)

    prof = sub.add_parser("profile", help="per-layer slice-profile tools")
    prof_sub = prof.add_subparsers(dest="profile_command", required=True)
    search = prof_sub.add_parser(
        "search",
        help="greedy per-layer profile search under a FLOPs budget, "
             "compared against the best uniform rate")
    search.add_argument("--model", default="mlp", choices=["mlp", "cnn"])
    search.add_argument("--budget-fraction", type=float, default=0.5,
                        help="budget as a fraction of full-width FLOPs")
    search.add_argument("--budget", type=float, default=None,
                        help="absolute FLOPs budget "
                             "(overrides --budget-fraction)")
    search.add_argument("--rates", type=float, nargs="*", default=None,
                        help="candidate per-layer rates "
                             "(default: the G=8 grid)")
    search.add_argument("--batch", type=int, default=4)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument("--json", action="store_true",
                        help="emit the search result as JSON")

    sizing = sub.add_parser(
        "sizing",
        help="analytic cluster capacity plan plus autoscaling simulation")
    sizing.add_argument("--forecast", default="diurnal:base=20000,peak=8",
                        help="traffic forecast spec, name:key=value,... "
                             "(diurnal, flash, ramp, regional)")
    sizing.add_argument("--slo-p95", type=float, default=100.0,
                        help="end-to-end latency SLO in milliseconds")
    sizing.add_argument("--window", type=float, default=300.0,
                        help="planning/simulation window in seconds")
    sizing.add_argument("--accuracy-floor", type=float, default=0.9,
                        help="minimum demand-weighted mean accuracy")
    sizing.add_argument("--headroom", type=float, default=0.15,
                        help="capacity margin over the forecast")
    sizing.add_argument("--ha-spares", type=int, default=1,
                        help="always-on spare nodes")
    sizing.add_argument("--node-memory-gb", type=float, default=16.0)
    sizing.add_argument("--node-flops", type=float, default=5e9,
                        help="per-node FLOPs/second budget")
    sizing.add_argument("--max-replicas", type=int, default=8,
                        help="replica slots per node")
    sizing.add_argument("--full-latency", type=float, default=0.002,
                        help="calibrated full-width per-sample seconds")
    sizing.add_argument("--boot-windows", type=int, default=2,
                        help="windows a provisioned node takes to boot")
    sizing.add_argument("--model", default="mlp",
                        choices=["mlp", "cnn", "tenc", "tlm"],
                        help="tlm (decoder LM) adds per-session KV-cache "
                             "bytes to the plan's memory budget")
    sizing.add_argument("--sessions-per-user", type=int, default=0,
                        help="resident decoder sessions budgeted per "
                             "replica slot (each holds a KV cache at "
                             "the replica's profile); trades slice rate "
                             "against KV residency on node memory")
    sizing.add_argument("--rates", type=float, nargs="*", default=None,
                        help="slice rates in the profile table "
                             "(default: 0.25 0.5 0.75 1.0)")
    sizing.add_argument("--seed", type=int, default=0)
    sizing.add_argument("--json", default=None, metavar="PATH",
                        help="write the full capacity report as JSON")
    sizing.add_argument("--no-simulate", action="store_true",
                        help="skip the autoscaling simulation")

    obs_parser = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    summ = obs_sub.add_parser(
        "summarize", help="summarize a JSONL trace written by repro.obs")
    summ.add_argument("trace", nargs="+",
                      help="JSONL trace files or globs; multiple traces "
                           "merge into one summary")
    summ.add_argument("--top", type=int, default=15,
                      help="rows to show in the span/event tables")

    diag = sub.add_parser(
        "diagnose",
        help="train a demo sliced model and report slice-quality "
             "diagnostics: error slices, degradation curves, layer "
             "attribution, scheduling weights")
    diag.add_argument("--epochs", type=int, default=6)
    diag.add_argument("--seed", type=int, default=0)
    diag.add_argument("--rates", type=float, nargs="*", default=None,
                      help="profiles to diagnose (default: 0.25 0.5 1.0)")
    diag.add_argument("--slices", type=int, default=4,
                      help="max error slices to discover")
    diag.add_argument("--json", default=None, metavar="PATH",
                      help="write the canonical sorted-key JSON report")
    diag.add_argument("--trace", default=None, metavar="PATH",
                      help="record the per-example JSONL eval trace "
                           "(deterministic under --seed)")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "reproduce": _cmd_reproduce,
        "serve-demo": _cmd_serve_demo,
        "runtime": _cmd_runtime,
        "plan": _cmd_plan,
        "profile": _cmd_profile,
        "sizing": _cmd_sizing,
        "obs": _cmd_obs,
        "diagnose": _cmd_diagnose,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
