"""Anytime prediction via progressive widening (paper Sec. 1 & 3.5).

A model trained with slicing supports *anytime prediction*: produce a
fast base-rate answer immediately, then — if the deadline allows — widen
the computation rate by rate, improving the answer.  Because of the
group-residual structure (Sec. 3.5), widening from ``r_a`` to ``r_b``
can *reuse* the narrow pass: each dense layer only computes the three
cross-term blocks, never re-multiplying the base block.

The engine below implements this for MLP-style chains of
:class:`~repro.slicing.layers.SlicedLinear` layers and accounts the
multiply-adds actually spent, so the anytime cost curve it reports is
real, not estimated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, SliceRateError
from ..models.mlp import MLP
from ..slicing.incremental import (
    IncrementalLinearState,
    widen,
)
from ..slicing.layers import SlicedLinear
from ..slicing.plans import LinearStep, compile_layer


@dataclass
class AnytimeStep:
    """One refinement step of an anytime inference run."""

    rate: float
    logits: np.ndarray
    step_madds: int
    cumulative_madds: int


class AnytimeMLP:
    """Progressive-widening inference engine for a sliced MLP.

    Parameters
    ----------
    model:
        A :class:`~repro.models.MLP` (hidden layers + head built from
        ``SlicedLinear``).
    rates:
        Ascending refinement schedule; the first entry is the immediate
        answer's rate.
    """

    def __init__(self, model: MLP, rates: list[float]):
        if not isinstance(model, MLP):
            raise ConfigError("AnytimeMLP currently supports the MLP model")
        rates = sorted(float(r) for r in rates)
        if not rates:
            raise ConfigError("need at least one refinement rate")
        self.model = model
        self.rates = rates
        self.layers: list[SlicedLinear] = list(model.layers) + [model.head]
        # Compiled base-rate steps, reused across run() calls until the
        # parameters mutate (detected via their version counters).
        self._base_steps: list[LinearStep] | None = None
        self._base_key: tuple | None = None
        self.plan_compiles = 0

    # ------------------------------------------------------------------
    def run(self, inputs: np.ndarray,
            budget_madds: int | None = None) -> list[AnytimeStep]:
        """Refine predictions through the schedule, reusing computation.

        Parameters
        ----------
        inputs:
            ``(batch, in_features)`` float array.
        budget_madds:
            Optional hard compute budget; refinement stops before the
            step that would exceed it (the base step always runs).

        Returns
        -------
        One :class:`AnytimeStep` per executed rate; the last step's
        ``logits`` is the best available answer.
        """
        inputs = np.asarray(inputs, dtype=np.float32)
        steps: list[AnytimeStep] = []
        states: list[IncrementalLinearState] = []

        # Base pass at the smallest rate: compiled narrow steps.  The
        # rescale stays *unfolded* (``fold_rescale=False``) so widen()'s
        # exact inversion of the post-processing still holds.
        base_rate = self.rates[0]
        x = inputs
        spent = 0
        for layer, step in zip(self.layers, self._base_plan()):
            y = step(x)
            spent += x.shape[0] * y.shape[-1] * x.shape[-1]
            states.append(IncrementalLinearState(x, y))
            x = self._activate(layer, y)
        cumulative = spent
        steps.append(AnytimeStep(base_rate, x, spent, cumulative))

        # Refinement passes: widen layer by layer with cross-terms only.
        for rate in self.rates[1:]:
            step_cost = 0
            new_states: list[IncrementalLinearState] = []
            x = inputs
            for layer, state in zip(self.layers, states):
                in_width = self._input_width(layer, rate, x)
                y, cost = widen(layer, x[:, :in_width], rate, state)
                step_cost += cost
                new_states.append(IncrementalLinearState(x[:, :in_width], y))
                x = self._activate(layer, y)
            if budget_madds is not None and \
                    cumulative + step_cost > budget_madds:
                break
            states = new_states
            cumulative += step_cost
            steps.append(AnytimeStep(rate, x, step_cost, cumulative))
        return steps

    def from_scratch_cost(self, batch: int, rate: float) -> int:
        """Multiply-adds of a non-incremental pass at ``rate``."""
        total = 0
        for layer in self.layers:
            out_w = (layer.out_partition.width_for(rate)
                     if layer.slice_output else layer.out_features)
            in_w = (layer.in_partition.width_for(rate)
                    if layer.slice_input else layer.in_features)
            total += batch * out_w * in_w
        return total

    # ------------------------------------------------------------------
    def _base_plan(self) -> list[LinearStep]:
        """The base-rate steps, recompiled only when parameters change."""
        key = tuple((id(p), p.version)
                    for layer in self.layers for p in layer.parameters())
        if self._base_steps is None or key != self._base_key:
            rate = self.rates[0]
            steps: list[LinearStep] = []
            width = self.layers[0].in_features
            for layer in self.layers:
                steps.append(compile_layer(layer, rate, fold_rescale=False,
                                           in_width=width))
                width = (layer.out_partition.width_for(rate)
                         if layer.slice_output else layer.out_features)
            self._base_steps = steps
            self._base_key = key
            self.plan_compiles += 1
        return self._base_steps

    def _activate(self, layer: SlicedLinear, y: np.ndarray) -> np.ndarray:
        if layer is self.layers[-1]:
            return y
        return np.maximum(y, 0.0)

    @staticmethod
    def _input_width(layer: SlicedLinear, rate: float, x: np.ndarray) -> int:
        if not layer.slice_input:
            return layer.in_features
        width = layer.in_partition.width_for(rate)
        if width > x.shape[-1]:
            raise SliceRateError(
                "upstream activation narrower than the requested rate"
            )
        return width


def anytime_accuracy_curve(engine: AnytimeMLP, inputs: np.ndarray,
                           labels: np.ndarray) -> list[dict]:
    """Accuracy and measured cost at each anytime refinement step."""
    steps = engine.run(inputs)
    curve = []
    for step in steps:
        accuracy = float((step.logits.argmax(axis=1) == labels).mean())
        curve.append({
            "rate": step.rate,
            "accuracy": accuracy,
            "step_madds": step.step_madds,
            "cumulative_madds": step.cumulative_madds,
            "from_scratch_madds": engine.from_scratch_cost(
                len(labels), step.rate),
        })
    return curve
