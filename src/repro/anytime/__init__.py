"""Anytime prediction: progressive subnet widening with computation reuse.

Note the semantics (Sec. 3.5 of the paper): refinement reuses the
previous pass's base-block products, so for networks deeper than one
layer the widened activations are *approximate* — the paper's
``y~a ~= ya`` — converging to the from-scratch result as training drives
later groups toward residual corrections.
"""

from .engine import AnytimeMLP, AnytimeStep, anytime_accuracy_curve

__all__ = ["AnytimeMLP", "AnytimeStep", "anytime_accuracy_curve"]
