"""repro — a reproduction of *Model Slicing* (Cai et al., PVLDB 2019).

Model slicing trains one neural network that is executable at many widths:
a single scalar *slice rate* ``r`` selects a prefix of channel/neuron groups
in every layer, so inference cost scales roughly with ``r**2``.  This
package provides:

* ``repro.tensor`` — a numpy reverse-mode autograd engine;
* ``repro.nn`` — a neural-network layer library;
* ``repro.slicing`` — the paper's contribution: sliceable layers,
  slice-rate scheduling schemes, the Algorithm-1 trainer, and budget→rate
  mapping;
* ``repro.models`` / ``repro.baselines`` — VGG / ResNet / NNLM plus every
  baseline the paper compares against;
* ``repro.data`` — synthetic CIFAR-like and PTB-like datasets;
* ``repro.serving`` / ``repro.ranking`` — the two example applications
  (dynamic-workload degradation, cascade ranking);
* ``repro.metrics`` — accuracy, perplexity, FLOPs accounting, prediction
  consistency;
* ``repro.diagnose`` — slice-quality diagnostics: error-slice discovery,
  per-layer degradation attribution, and diagnosis-weighted scheduling.

Quickstart::

    from repro import SlicedVGG, SliceTrainer, slice_rate
    model = SlicedVGG.cifar_mini(num_classes=8)
    trainer = SliceTrainer(model, rates=[0.375, 0.5, 0.75, 1.0])
    ...
    with slice_rate(0.5):          # half-width inference, ~25% FLOPs
        logits = model(images)
"""

from .version import __version__
from . import errors
from . import obs
from .tensor import Tensor, no_grad
from .slicing import (
    SliceContext,
    slice_rate,
    slice_profile,
    SliceProfile,
    UniformProfile,
    LayerProfile,
    as_profile,
    SliceTrainer,
    rate_for_budget,
    search_profile_for_budget,
    FixedScheme,
    RandomScheme,
    StaticScheme,
    RandomStaticScheme,
    ProfileScheme,
)
from .models import MLP, NNLM, SlicedResNet, SlicedVGG
from .diagnose import DiagnosisReport, DiagnosisWeightedScheme, diagnose

__all__ = [
    "DiagnosisReport",
    "DiagnosisWeightedScheme",
    "diagnose",
    "__version__",
    "errors",
    "obs",
    "Tensor",
    "no_grad",
    "SliceContext",
    "slice_rate",
    "slice_profile",
    "SliceProfile",
    "UniformProfile",
    "LayerProfile",
    "as_profile",
    "SliceTrainer",
    "rate_for_budget",
    "search_profile_for_budget",
    "FixedScheme",
    "RandomScheme",
    "StaticScheme",
    "RandomStaticScheme",
    "ProfileScheme",
    "MLP",
    "NNLM",
    "SlicedResNet",
    "SlicedVGG",
]
