"""The diagnosis report: one object tying the three views together.

:func:`diagnose` runs the full pipeline — plan-speed per-example
evaluation sweep, embedding-space error-slice discovery, per-layer
activation attribution, and the scheduling weights derived from the
worst slices — and returns a :class:`DiagnosisReport` that renders as
CLI tables or sorted-key JSON (byte-identical across seeded runs; the
determinism tests pin this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..slicing.plans import PlanCache
from ..slicing.profile import as_profile
from ..utils.tables import format_table
from .attribution import (PointDivergence, layer_divergence,
                          rank_attribution)
from .records import (accuracy_by_profile, collect_eval_records,
                      correctness_by_profile, mean_margin_by_profile)
from .scheme import DiagnosisWeightedScheme
from .slices import ErrorSlice, discover_error_slices, worst_slice_accuracy


@dataclass
class DiagnosisReport:
    """Everything ``repro diagnose`` knows about a model's slice quality."""

    model: str
    seed: int
    num_examples: int
    profiles: list[str]                       # narrow -> wide, label keys
    reference: str                            # narrowest profile's key
    accuracy: dict[str, float]
    mean_margin: dict[str, float]
    error_counts: dict[str, int]
    worst_slice_accuracy: dict[str, float]
    slices: list[ErrorSlice]
    attribution: list[PointDivergence]        # ranked worst-first
    scheme_weights: dict[str, float]
    extra: dict = field(default_factory=dict)
    #: the resolved SliceProfile objects behind ``profiles`` (not
    #: serialized; lets ``scheme()`` rebuild non-uniform profiles whose
    #: labels are opaque digests)
    profile_entries: list = field(default_factory=list, repr=False)

    def to_dict(self, include_members: bool = False) -> dict:
        return {
            "model": self.model,
            "seed": self.seed,
            "num_examples": self.num_examples,
            "profiles": list(self.profiles),
            "reference": self.reference,
            "accuracy": {k: round(float(v), 6)
                         for k, v in self.accuracy.items()},
            "mean_margin": {k: round(float(v), 6)
                            for k, v in self.mean_margin.items()},
            "error_counts": {k: int(v)
                             for k, v in self.error_counts.items()},
            "worst_slice_accuracy": {
                k: round(float(v), 6)
                for k, v in self.worst_slice_accuracy.items()},
            "slices": [s.to_dict(include_members) for s in self.slices],
            "attribution": [d.to_dict() for d in self.attribution],
            "scheme_weights": {k: round(float(v), 6)
                               for k, v in self.scheme_weights.items()},
            "extra": self.extra,
        }

    def to_json(self, include_members: bool = False) -> str:
        """Canonical JSON: sorted keys, fixed float rounding."""
        return json.dumps(self.to_dict(include_members), sort_keys=True,
                          indent=1)

    def scheme(self, **kwargs) -> DiagnosisWeightedScheme:
        """The scheduling scheme this diagnosis recommends."""
        return DiagnosisWeightedScheme.from_report(self, **kwargs)

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        sections = [self._profiles_table(), self._slices_table(),
                    self._attribution_table()]
        header = (f"diagnosis of {self.model} — {self.num_examples} "
                  f"examples, {len(self.profiles)} profiles, "
                  f"reference {self.reference}")
        return header + "\n\n" + "\n\n".join(sections)

    def _profiles_table(self) -> str:
        rows = []
        for key in self.profiles:
            rows.append([key, self.accuracy.get(key),
                         self.worst_slice_accuracy.get(key),
                         self.mean_margin.get(key),
                         self.error_counts.get(key),
                         self.scheme_weights.get(key)])
        return format_table(
            ["profile", "accuracy", "worst slice", "mean margin",
             "errors", "sched weight"],
            rows, title="per-profile quality (narrow -> wide)")

    def _slices_table(self) -> str:
        headers = ["slice", "size", f"errors@{self.reference}"]
        headers += [f"acc@{key}" for key in self.profiles]
        headers.append("exemplars")
        rows = []
        for slc in self.slices:
            row = [slc.slice_id, slc.size, slc.error_count]
            row += [slc.accuracy_by_profile.get(key)
                    for key in self.profiles]
            row.append(",".join(str(i) for i in slc.exemplar_ids[:3]))
            rows.append(row)
        return format_table(headers, rows,
                            title="error slices (worst first)")

    def _attribution_table(self) -> str:
        rows = [[d.rank, d.point, d.rate,
                 f"{d.narrow_width}/{d.full_width}",
                 d.cosine, d.rel_l2, d.divergence]
                for d in self.attribution]
        return format_table(
            ["rank", "slice point", "rate", "width", "cosine", "rel L2",
             "divergence"],
            rows, title=f"layer attribution vs full (at {self.reference})")


def diagnose(model, inputs: np.ndarray, labels: np.ndarray, profiles, *,
             plan_cache: PlanCache | None = None, k: int = 4,
             seed: int = 0, batch_size: int = 256,
             model_name: str | None = None,
             scheme_floor: float = 0.25) -> DiagnosisReport:
    """Run the full slice-quality diagnosis pipeline.

    Evaluates every example under every profile through compiled plans,
    discovers up to ``k`` embedding-space error slices against the
    narrowest profile, attributes that profile's divergence to slice
    points, and derives :class:`DiagnosisWeightedScheme` weights from
    per-profile worst-slice accuracy.  Emits ``diagnose_*`` metrics and
    a ``diagnose.run`` span when observability is enabled.
    """
    profiles = [as_profile(p) for p in profiles]
    with obs.span("diagnose.run", model=model_name or type(model).__name__,
                  profiles=len(profiles)):
        records, embeddings = collect_eval_records(
            model, inputs, labels, profiles, plan_cache=plan_cache,
            batch_size=batch_size)
        entries = sorted({as_profile(p) for p in profiles})
        keys = [prof.label() for prof in entries]
        reference = keys[0]
        correct = correctness_by_profile(records, len(inputs))
        slices = discover_error_slices(embeddings, correct,
                                       reference=reference, k=k)
        worst = worst_slice_accuracy(slices)
        attribution = rank_attribution(layer_divergence(
            model, inputs, entries[0], batch_size=batch_size))
        errors = {key: int((~np.asarray(series)).sum())
                  for key, series in correct.items()}
        scheme = DiagnosisWeightedScheme(
            entries, {key: 1.0 - worst.get(key, 1.0) for key in keys},
            floor=scheme_floor)
        weights = {prof.label(): float(weight) for prof, weight in
                   zip(scheme.rates, scheme.probabilities)}
        if obs.enabled():
            for key in keys:
                obs.gauge("diagnose_worst_slice_accuracy",
                          worst.get(key, 1.0), profile=key)
            for div in attribution:
                obs.gauge("diagnose_layer_divergence", div.divergence,
                          point=div.point)
            obs.gauge("diagnose_error_slices", len(slices))
        return DiagnosisReport(
            model=model_name or type(model).__name__,
            seed=seed, num_examples=len(inputs), profiles=keys,
            reference=reference,
            accuracy=accuracy_by_profile(records),
            mean_margin=mean_margin_by_profile(records),
            error_counts=errors,
            worst_slice_accuracy=worst, slices=slices,
            attribution=attribution, scheme_weights=weights,
            profile_entries=entries)
