"""Scheduling feedback: close the loop from diagnosis to Algorithm 1.

Algorithm 1 samples which subnets train on each batch; the stock
schemes weight profiles by position (base/full anchors, uniform
middles).  :class:`DiagnosisWeightedScheme` instead weights each
profile by *how badly its worst data slice performs*: profiles whose
worst embedding-space slice has the lowest accuracy get sampled more
often, spending extra gradient steps exactly where the accuracy/cost
curve sags.  The full profile stays statically included (the paper's
``R-max`` anchor — the widest subnet's gradients stabilise all nested
prefixes under group residual learning).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import SchedulingError
from ..slicing.profile import SliceProfile, as_profile
from ..slicing.schemes import Scheme


class DiagnosisWeightedScheme(Scheme):
    """Sample profiles proportionally to their diagnosed worst-slice error.

    Parameters
    ----------
    profiles:
        Candidate profiles (floats, mappings, or
        :class:`~repro.slicing.profile.SliceProfile`); duplicates by
        fingerprint collapse, and entries sort narrow to wide.
    worst_slice_error:
        ``{profile_key: error}`` where the key is a profile's
        :meth:`~repro.slicing.profile.SliceProfile.label` (what
        :class:`~repro.diagnose.report.DiagnosisReport` emits) and the
        error is ``1 - worst_slice_accuracy`` in ``[0, 1]``.  Keys may
        also be fingerprints or float rates; unknown profiles fall back
        to the uniform floor.
    floor:
        Mass mixed uniformly into the weights so every profile keeps a
        nonzero sampling probability (a profile with a perfect worst
        slice must still train occasionally or it regresses).
    num_samples:
        Weighted draws per batch (without replacement), on top of the
        statically included full profile.
    include_max:
        Keep the widest profile in every batch (default, recommended).
    """

    def __init__(self, profiles: Sequence,
                 worst_slice_error: Mapping | None = None, *,
                 floor: float = 0.25, num_samples: int = 1,
                 include_max: bool = True):
        entries = [as_profile(p) for p in profiles]
        if not entries:
            raise SchedulingError(
                "a scheduling scheme needs at least one profile")
        unique: dict[str, SliceProfile] = {
            p.fingerprint(): p for p in entries}
        self.rates: list[SliceProfile] = sorted(unique.values())
        if not 0.0 <= floor <= 1.0:
            raise SchedulingError(f"floor must be in [0, 1], got {floor}")
        if num_samples < 1:
            raise SchedulingError("num_samples must be >= 1")
        self.floor = floor
        self.num_samples = num_samples
        self.include_max = include_max
        self.errors = self._resolve_errors(worst_slice_error or {})
        self.probabilities = self._weights()

    def _resolve_errors(self, mapping: Mapping) -> list[float]:
        by_label: dict[str, float] = {}
        for key, value in mapping.items():
            if isinstance(key, (int, float)) and not isinstance(key, bool):
                key = as_profile(key).label()
            by_label[str(key)] = float(np.clip(value, 0.0, 1.0))
        errors = []
        for prof in self.rates:
            value = by_label.get(prof.label())
            if value is None:
                value = by_label.get(prof.fingerprint(), 0.0)
            errors.append(value)
        return errors

    def _weights(self) -> np.ndarray:
        base = np.full(len(self.rates), self.floor / len(self.rates))
        weights = base + np.asarray(self.errors)
        return weights / weights.sum()

    @classmethod
    def from_report(cls, report, profiles: Sequence | None = None,
                    **kwargs) -> "DiagnosisWeightedScheme":
        """Build from a :class:`~repro.diagnose.report.DiagnosisReport`.

        Uses the report's per-profile worst-slice accuracy as the error
        signal; ``profiles`` defaults to the report's profile set.
        """
        errors = {key: 1.0 - acc
                  for key, acc in report.worst_slice_accuracy.items()}
        if profiles is None:
            profiles = (getattr(report, "profile_entries", None)
                        or [float(key) for key in report.profiles])
        return cls(profiles, errors, **kwargs)

    def sample(self, rng: np.random.Generator) -> list[SliceProfile]:
        chosen: dict[str, SliceProfile] = {}
        probs = self.probabilities
        if self.include_max:
            widest = self.rates[-1]
            chosen[widest.fingerprint()] = widest
            remaining = [i for i in range(len(self.rates))
                         if self.rates[i].fingerprint() not in chosen]
        else:
            remaining = list(range(len(self.rates)))
        k = min(self.num_samples, len(remaining))
        if k > 0 and remaining:
            local = probs[remaining]
            if local.sum() <= 0:
                local = np.full(len(remaining), 1.0 / len(remaining))
            else:
                local = local / local.sum()
            picks = rng.choice(len(remaining), size=k, replace=False,
                               p=local)
            for i in np.atleast_1d(picks):
                prof = self.rates[remaining[int(i)]]
                chosen[prof.fingerprint()] = prof
        return sorted(chosen.values(), reverse=True)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{prof.label()}={weight:.3f}"
            for prof, weight in zip(self.rates, self.probabilities))
        return f"DiagnosisWeightedScheme({pairs})"
