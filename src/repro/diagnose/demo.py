"""Deterministic demo workload for diagnosis smoke runs and the CLI.

The synthetic dataset is built so slice diagnosis has something real to
find: each class owns an *easy* blob (far from every other class, tight)
plus a *hard* blob whose examples crowd into one shared region of input
space.  A full-width network separates both; narrow subnets keep the
easy blobs but collapse on the shared region — a coherent
embedding-space error slice with a steep degradation curve, exactly the
structure :func:`repro.diagnose.discover_error_slices` mines for.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.datasets import ArrayDataset, DataLoader
from ..models.mlp import MLP
from ..optim.sgd import SGD
from ..slicing.schemes import RandomStaticScheme, Scheme
from ..slicing.trainer import SliceTrainer

DEMO_RATES = (0.25, 0.5, 1.0)


def make_demo_data(seed: int = 0, *, num_train: int = 512,
                   num_eval: int = 256, dim: int = 16,
                   num_classes: int = 4, hard_fraction: float = 0.35,
                   ) -> dict[str, np.ndarray]:
    """Synthetic classification data with a planted hard region.

    Returns ``{"train_x", "train_y", "eval_x", "eval_y"}``.  Easy
    examples sit on well-separated per-class anchors; hard examples of
    every class share one common region offset only by a small
    class-dependent direction, so capacity decides whether they resolve.
    """
    rng = np.random.default_rng(seed)
    anchors = np.zeros((num_classes, dim))
    for cls in range(num_classes):
        anchors[cls, cls % dim] = 4.0
        anchors[cls, (cls + 1) % dim] = -4.0
    hard_center = np.full(dim, 1.5)
    subtle = np.zeros((num_classes, dim))
    for cls in range(num_classes):
        subtle[cls, (cls + dim // 2) % dim] = 0.9

    def build(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        hard = rng.random(count) < hard_fraction
        noise = rng.normal(scale=0.35, size=(count, dim))
        x = np.where(hard[:, None],
                     hard_center + subtle[labels],
                     anchors[labels])
        return (x + noise).astype(np.float64), labels.astype(np.int64)

    train_x, train_y = build(num_train)
    eval_x, eval_y = build(num_eval)
    return {"train_x": train_x, "train_y": train_y,
            "eval_x": eval_x, "eval_y": eval_y}


def train_demo_model(seed: int = 0, *, epochs: int = 6,
                     rates: Sequence[float] = DEMO_RATES,
                     scheme: Scheme | None = None,
                     hidden: Sequence[int] = (32, 32),
                     data: dict[str, np.ndarray] | None = None,
                     lr: float = 0.1, batch_size: int = 64,
                     ) -> tuple[MLP, dict[str, np.ndarray]]:
    """Train a small sliced MLP on the demo data; fully seeded.

    ``scheme`` defaults to the paper's R-min-max random-static scheme —
    the uniform Algorithm-1 baseline the diagnosis-weighted scheme is
    benchmarked against.  Returns ``(model, data)``.
    """
    if data is None:
        data = make_demo_data(seed)
    model = MLP(in_features=data["train_x"].shape[1], hidden=list(hidden),
                num_classes=int(data["train_y"].max()) + 1, seed=seed)
    if scheme is None:
        scheme = RandomStaticScheme(list(rates), num_random=1)
    trainer = SliceTrainer(model, scheme, SGD(model.parameters(), lr=lr),
                           rng=np.random.default_rng(seed + 1))
    dataset = ArrayDataset(data["train_x"], data["train_y"])

    def loader():
        return DataLoader(dataset, batch_size=batch_size, shuffle=True,
                          rng=np.random.default_rng(seed + 2))

    trainer.fit(loader, epochs=epochs)
    return model, data
