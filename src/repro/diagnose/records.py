"""Per-example evaluation records: the raw material of a diagnosis.

Aggregate accuracy per profile hides *which inputs* pay for the FLOPs a
narrow profile saves.  :func:`collect_eval_records` evaluates every
example under every requested profile and keeps the per-example facts —
predicted class, confidence margin, correct-or-not — plus one
full-width penultimate-layer embedding per example, the coordinate
space the slice miner clusters errors in.

Two properties matter here:

* **Plan speed** — the sweep runs through compiled inference plans
  (:class:`~repro.slicing.plans.PlanCache`), warmed once per profile,
  so a P-profile x N-example diagnosis costs P compiles plus N*P
  plan-speed rows rather than N*P live sliced forwards
  (``plan_cache_hits_total`` counts the warm lookups).
* **Determinism** — records stream through the :mod:`repro.obs` trace
  writer as ``diagnose.example`` / ``diagnose.embedding`` events, so a
  seeded run writes a byte-identical per-example JSONL eval trace, and
  :func:`records_from_trace` reconstructs the exact inputs of the
  mining stage from that file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..errors import DataError
from ..slicing.plans import PlanCache
from ..slicing.profile import as_profile

#: Decimal places kept when an embedding coordinate is written to a
#: trace event (keeps the JSONL compact; mining is insensitive at 1e-6).
EMBEDDING_DECIMALS = 6


def profile_key(rate) -> str:
    """Canonical short string key for a scheduled rate or profile.

    Uniform rates render as their number (``"0.25"``); non-uniform
    profiles use their digest label (``"prof:1a2b3c4d"``).
    """
    return as_profile(rate).label()


@dataclass
class EvalRecord:
    """One example evaluated under one slice profile."""

    example_id: int
    profile: str
    predicted: int
    label: int
    margin: float
    correct: bool

    def to_attrs(self) -> dict:
        """JSON-safe attribute dict (the ``diagnose.example`` payload)."""
        return {
            "example": self.example_id,
            "profile": self.profile,
            "predicted": self.predicted,
            "label": self.label,
            "margin": self.margin,
            "correct": self.correct,
        }

    @classmethod
    def from_attrs(cls, attrs: dict) -> "EvalRecord":
        return cls(
            example_id=int(attrs["example"]),
            profile=str(attrs["profile"]),
            predicted=int(attrs["predicted"]),
            label=int(attrs["label"]),
            margin=float(attrs["margin"]),
            correct=bool(attrs["correct"]),
        )


def penultimate_embedding(model, inputs: np.ndarray,
                          batch_size: int = 256,
                          use_features: bool = True) -> np.ndarray:
    """Full-width penultimate representation of every example.

    Uses the model's ``features()`` method when it has one; otherwise
    captures the output of the model's last width-controlling slice
    point (the layer feeding the head) via
    :func:`~repro.diagnose.attribution.capture_activations`.  Always
    evaluated at the full profile, so every example lives in one shared
    coordinate space regardless of which profiles misclassify it.
    """
    from ..slicing.budget import width_slice_points
    from ..slicing.context import slice_profile
    from ..tensor import Tensor, no_grad
    from .attribution import capture_activations

    inputs = np.asarray(inputs)
    model.eval()
    chunks: list[np.ndarray] = []
    feature_fn = getattr(model, "features", None) if use_features else None
    last_point = None
    if feature_fn is None:
        points = width_slice_points(model)
        if not points:
            raise DataError(
                "model has no features() method and no width slice points; "
                "cannot extract a penultimate embedding")
        last_point = points[-1][0]
    with no_grad():
        with slice_profile(1.0):
            for start in range(0, len(inputs), batch_size):
                batch = inputs[start:start + batch_size]
                x = batch if batch.dtype.kind in "iu" else Tensor(batch)
                if feature_fn is not None:
                    out = feature_fn(x)
                    chunks.append(np.asarray(out.data, dtype=np.float64))
                else:
                    with capture_activations(model, [last_point]) as acts:
                        model(x)
                    chunks.append(np.asarray(acts[last_point],
                                             dtype=np.float64))
    flat = np.concatenate(chunks, axis=0)
    return flat.reshape(len(inputs), -1)


def collect_eval_records(model, inputs: np.ndarray, labels: np.ndarray,
                         profiles, *, plan_cache: PlanCache | None = None,
                         batch_size: int = 256,
                         ) -> tuple[list[EvalRecord], np.ndarray]:
    """Evaluate each example under each profile through compiled plans.

    Returns ``(records, embeddings)``: one :class:`EvalRecord` per
    ``(example, profile)`` pair (profiles ordered narrow to wide,
    deduplicated by fingerprint) and the ``(N, D)`` full-width
    penultimate embeddings.  When observability is enabled the records
    stream to the trace as ``diagnose.example`` events plus one
    ``diagnose.embedding`` event per example, and
    ``diagnose_examples_total`` / ``diagnose_errors_total`` count the
    sweep per profile.
    """
    inputs = np.asarray(inputs)
    labels = np.asarray(labels)
    if len(inputs) != len(labels):
        raise DataError(f"{len(inputs)} inputs vs {len(labels)} labels")
    if len(inputs) == 0:
        raise DataError("cannot diagnose an empty evaluation set")
    cache = plan_cache if plan_cache is not None else PlanCache()
    entries = []
    seen: set[str] = set()
    for rate in profiles:
        prof = as_profile(rate)
        if prof.fingerprint() in seen:
            continue
        seen.add(prof.fingerprint())
        entries.append(prof)
    if not entries:
        raise DataError("diagnosis needs at least one profile")
    entries.sort()                       # narrow -> wide
    model.eval()
    for prof in entries:                 # warm: one compile per profile
        cache.get(model, prof)

    embeddings = penultimate_embedding(model, inputs, batch_size)
    if obs.enabled():
        for i in range(len(inputs)):
            obs.event("diagnose.embedding", example=i, embedding=[
                round(float(v), EMBEDDING_DECIMALS) for v in embeddings[i]])

    records: list[EvalRecord] = []
    for prof in entries:
        key = prof.label()
        errors = 0
        for start in range(0, len(inputs), batch_size):
            plan = cache.get(model, prof)        # hit: plan-speed sweep
            logits = np.asarray(plan.run(inputs[start:start + batch_size]))
            order = np.sort(logits, axis=1)
            margins = (order[:, -1] - order[:, -2] if logits.shape[1] > 1
                       else order[:, -1])
            predicted = logits.argmax(axis=1)
            for offset in range(len(logits)):
                i = start + offset
                record = EvalRecord(
                    example_id=i, profile=key,
                    predicted=int(predicted[offset]),
                    label=int(labels[i]),
                    margin=float(margins[offset]),
                    correct=bool(predicted[offset] == labels[i]))
                records.append(record)
                errors += not record.correct
                if obs.enabled():
                    obs.event("diagnose.example", **record.to_attrs())
        if obs.enabled():
            obs.count("diagnose_examples_total", len(inputs), profile=key)
            obs.count("diagnose_errors_total", errors, profile=key)
    return records, embeddings


def records_from_trace(trace_records: list[dict]
                       ) -> tuple[list[EvalRecord], np.ndarray | None]:
    """Rebuild ``(records, embeddings)`` from loaded JSONL trace records.

    The inverse of the events :func:`collect_eval_records` emits; reads
    the output of :func:`repro.obs.summary.load_records`.  Embeddings
    are ``None`` when the trace carries no ``diagnose.embedding``
    events.
    """
    records: list[EvalRecord] = []
    vectors: dict[int, list[float]] = {}
    for record in trace_records:
        if record.get("kind") != "event":
            continue
        if record.get("name") == "diagnose.example":
            records.append(EvalRecord.from_attrs(record["attrs"]))
        elif record.get("name") == "diagnose.embedding":
            attrs = record["attrs"]
            vectors[int(attrs["example"])] = [
                float(v) for v in attrs["embedding"]]
    if not vectors:
        return records, None
    size = max(vectors) + 1
    if sorted(vectors) != list(range(size)):
        raise DataError("trace is missing embeddings for some examples")
    return records, np.asarray([vectors[i] for i in range(size)])


# ----------------------------------------------------------------------
# Aggregations over records
# ----------------------------------------------------------------------
def profile_order(records: list[EvalRecord]) -> list[str]:
    """Profile keys in first-seen (narrow -> wide) record order."""
    order: list[str] = []
    for record in records:
        if record.profile not in order:
            order.append(record.profile)
    return order


def correctness_by_profile(records: list[EvalRecord],
                           num_examples: int) -> dict[str, np.ndarray]:
    """``{profile_key: bool array (N,)}`` — the mining stage's input."""
    out: dict[str, np.ndarray] = {}
    for record in records:
        series = out.get(record.profile)
        if series is None:
            series = out[record.profile] = np.zeros(num_examples, dtype=bool)
        series[record.example_id] = record.correct
    return out


def accuracy_by_profile(records: list[EvalRecord]) -> dict[str, float]:
    """Aggregate accuracy per profile key."""
    totals: dict[str, list[int]] = {}
    for record in records:
        entry = totals.setdefault(record.profile, [0, 0])
        entry[0] += record.correct
        entry[1] += 1
    return {key: hit / total for key, (hit, total) in totals.items()}


def mean_margin_by_profile(records: list[EvalRecord]) -> dict[str, float]:
    """Mean confidence margin per profile key."""
    sums: dict[str, list[float]] = {}
    for record in records:
        entry = sums.setdefault(record.profile, [0.0, 0])
        entry[0] += record.margin
        entry[1] += 1
    return {key: total / count for key, (total, count) in sums.items()}
