"""Slice-quality diagnostics: who pays for the FLOPs a profile saves.

Three views over per-example evaluation traces, built on the
:mod:`repro.obs` layer:

* **error-slice discovery** (:mod:`repro.diagnose.slices`) — seeded
  pure-numpy clustering of the narrowest profile's errors in full-width
  embedding space, with per-slice degradation curves across profiles;
* **layer attribution** (:mod:`repro.diagnose.attribution`) —
  activation divergence between full-rate and narrow forwards at every
  named slice point, feeding the budget search an importance prior;
* **scheduling feedback** (:mod:`repro.diagnose.scheme`) — a
  :class:`DiagnosisWeightedScheme` reweighting Algorithm 1's sampling
  toward the profiles with the worst data slices.

:func:`repro.diagnose.report.diagnose` runs all three and the
``repro diagnose`` CLI renders the result.
"""

from .attribution import (PointDivergence, capture_activations,
                          importance_from_attribution, layer_divergence,
                          rank_attribution)
from .demo import DEMO_RATES, make_demo_data, train_demo_model
from .records import (EvalRecord, accuracy_by_profile,
                      collect_eval_records, correctness_by_profile,
                      mean_margin_by_profile, penultimate_embedding,
                      profile_key, records_from_trace)
from .report import DiagnosisReport, diagnose
from .scheme import DiagnosisWeightedScheme
from .slices import (ErrorSlice, deterministic_kmeans,
                     discover_error_slices, worst_slice_accuracy)

__all__ = [
    "DEMO_RATES",
    "DiagnosisReport",
    "DiagnosisWeightedScheme",
    "ErrorSlice",
    "EvalRecord",
    "PointDivergence",
    "accuracy_by_profile",
    "capture_activations",
    "collect_eval_records",
    "correctness_by_profile",
    "deterministic_kmeans",
    "diagnose",
    "discover_error_slices",
    "importance_from_attribution",
    "layer_divergence",
    "make_demo_data",
    "mean_margin_by_profile",
    "penultimate_embedding",
    "profile_key",
    "rank_attribution",
    "records_from_trace",
    "train_demo_model",
    "worst_slice_accuracy",
]
