"""Error-slice discovery: coherent regions of input space that degrade.

Mines the per-example records for *data slices* — clusters of examples,
coherent in the full-width embedding space, that a narrow profile gets
wrong.  The approach follows slice-discovery methods (Domino's
``SliceDiscoveryMethod``; "Slice and Explain"): errors of the reference
(narrowest) profile are clustered in embedding space, then every
example is assigned to its nearest error centroid, so each discovered
slice carries a full per-profile degradation curve — the accuracy of
*that region* at every profile, worst region first.

Everything here is pure numpy and fully deterministic: the k-means uses
farthest-first seeding (no RNG at all) and a canonical cluster order,
so the same points produce byte-identical slices regardless of row
permutation — a property the determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DataError


def _argmax_stable(scores: np.ndarray, points: np.ndarray) -> int:
    """Index of the max score; ties break on lexicographic coordinates.

    Keeps seeding independent of input row order: among equally-far
    candidates the one with the smallest coordinate tuple wins.
    """
    best = np.flatnonzero(scores == scores.max())
    if len(best) == 1:
        return int(best[0])
    rows = [tuple(points[i]) for i in best]
    return int(best[rows.index(min(rows))])


def deterministic_kmeans(points: np.ndarray, k: int, *,
                         iters: int = 50
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Seedless, permutation-stable k-means.

    Farthest-first initialisation (first centre is the point farthest
    from the mean; each next centre the point farthest from all chosen
    centres), Lloyd iterations with deterministic empty-cluster
    reseeding (the point farthest from its assigned centre), and a
    canonical final ordering by ``(-cluster_size, centroid tuple)``.

    Returns ``(centroids (k, D), assignment (N,))``.  ``k`` is clamped
    to the number of distinct points; the returned centroid count is
    the effective k.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise DataError(f"kmeans needs a non-empty (N, D) array, "
                        f"got shape {points.shape}")
    if k < 1:
        raise DataError(f"kmeans needs k >= 1, got {k}")
    distinct = len(np.unique(points, axis=0))
    k = min(k, distinct)

    mean = points.mean(axis=0)
    first = _argmax_stable(((points - mean) ** 2).sum(axis=1), points)
    centers = [points[first]]
    min_d = ((points - centers[0]) ** 2).sum(axis=1)
    while len(centers) < k:
        nxt = _argmax_stable(min_d, points)
        centers.append(points[nxt])
        min_d = np.minimum(min_d, ((points - centers[-1]) ** 2).sum(axis=1))
    centroids = np.asarray(centers)

    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(iters):
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2
                 ).sum(axis=2)
        new_assignment = dists.argmin(axis=1)
        for cluster in range(k):
            mask = new_assignment == cluster
            if mask.any():
                centroids[cluster] = points[mask].mean(axis=0)
            else:
                worst = _argmax_stable(
                    dists[np.arange(len(points)), new_assignment], points)
                centroids[cluster] = points[worst]
                new_assignment[worst] = cluster
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment

    # canonical order: biggest cluster first, centroid coords tie-break
    sizes = np.bincount(assignment, minlength=k)
    order = sorted(range(k),
                   key=lambda c: (-int(sizes[c]), tuple(centroids[c])))
    remap = {old: new for new, old in enumerate(order)}
    assignment = np.asarray([remap[int(c)] for c in assignment],
                            dtype=np.int64)
    return centroids[order], assignment


@dataclass
class ErrorSlice:
    """One discovered data slice with its per-profile degradation curve."""

    slice_id: int
    size: int
    error_count: int           # reference-profile errors inside the slice
    centroid: list[float]
    exemplar_ids: list[int]    # nearest-to-centroid members, for inspection
    accuracy_by_profile: dict[str, float]
    member_ids: list[int] = field(repr=False, default_factory=list)

    def to_dict(self, include_members: bool = False) -> dict:
        out = {
            "slice_id": self.slice_id,
            "size": self.size,
            "error_count": self.error_count,
            "centroid": [round(float(v), 6) for v in self.centroid],
            "exemplar_ids": self.exemplar_ids,
            "accuracy_by_profile": {
                key: round(float(v), 6)
                for key, v in self.accuracy_by_profile.items()},
        }
        if include_members:
            out["member_ids"] = self.member_ids
        return out


def discover_error_slices(embeddings: np.ndarray,
                          correct_by_profile: dict[str, np.ndarray], *,
                          reference: str, k: int = 4,
                          iters: int = 50) -> list[ErrorSlice]:
    """Find embedding-space slices that degrade under narrow profiles.

    Clusters the *reference* profile's errors (the narrowest profile —
    where the paper's accuracy/cost trade-off bites hardest) into ``k``
    groups, then assigns **every** example to its nearest error
    centroid, so slices partition the full evaluation set and each
    slice's accuracy is defined under every profile.  Slices come back
    sorted worst-first by reference-profile accuracy (error density),
    ties broken by slice size then centroid.

    When the reference profile makes no errors, a single slice covering
    the whole set is returned (accuracy 1.0 everywhere) so report
    schemas stay stable.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if reference not in correct_by_profile:
        raise DataError(f"reference profile {reference!r} has no records; "
                        f"have {sorted(correct_by_profile)}")
    correct = np.asarray(correct_by_profile[reference], dtype=bool)
    if len(correct) != len(embeddings):
        raise DataError(f"{len(embeddings)} embeddings vs "
                        f"{len(correct)} correctness flags")
    error_ids = np.flatnonzero(~correct)
    if len(error_ids) == 0:
        centroid = embeddings.mean(axis=0)
        members = list(range(len(embeddings)))
        return [ErrorSlice(
            slice_id=0, size=len(embeddings), error_count=0,
            centroid=list(map(float, centroid)),
            exemplar_ids=members[:5],
            accuracy_by_profile={key: float(np.mean(series))
                                 for key, series in
                                 sorted(correct_by_profile.items())},
            member_ids=members)]

    centroids, _ = deterministic_kmeans(embeddings[error_ids], k,
                                        iters=iters)
    dists = ((embeddings[:, None, :] - centroids[None, :, :]) ** 2
             ).sum(axis=2)
    assignment = dists.argmin(axis=1)

    slices: list[ErrorSlice] = []
    for cluster in range(len(centroids)):
        members = np.flatnonzero(assignment == cluster)
        if len(members) == 0:
            continue
        accuracy = {key: float(np.mean(np.asarray(series)[members]))
                    for key, series in sorted(correct_by_profile.items())}
        member_dists = dists[members, cluster]
        exemplars = members[np.argsort(member_dists, kind="stable")][:5]
        slices.append(ErrorSlice(
            slice_id=cluster, size=int(len(members)),
            error_count=int((~correct[members]).sum()),
            centroid=list(map(float, centroids[cluster])),
            exemplar_ids=[int(i) for i in exemplars],
            accuracy_by_profile=accuracy,
            member_ids=[int(i) for i in members]))
    slices.sort(key=lambda s: (s.accuracy_by_profile[reference],
                               -s.size, tuple(s.centroid)))
    for new_id, slc in enumerate(slices):
        slc.slice_id = new_id
    return slices


def worst_slice_accuracy(slices: list[ErrorSlice]) -> dict[str, float]:
    """Per-profile accuracy of each profile's own worst slice.

    The scheduling feedback signal: for every profile, the minimum
    accuracy over discovered slices — the accuracy of the data region
    that profile serves worst.
    """
    if not slices:
        return {}
    keys = slices[0].accuracy_by_profile
    return {key: min(s.accuracy_by_profile[key] for s in slices)
            for key in keys}
