"""Layer attribution: where a narrow profile diverges from the full net.

Eq. 2's prefix nesting means a profile's forward shares the *leading*
channels of every layer with the full-rate forward; the channels it
drops are exactly the trailing groups.  So the honest per-layer question
is: how far does the narrow activation drift from the **matching
channel prefix** of the full activation?  A slice point whose prefix no
longer carries the layer's signal (low cosine, high relative L2) is
where the profile's accuracy loss concentrates — the same per-layer
contribution view "Dynamic Slicing for Deep Neural Networks" uses to
localise behaviour inside a network.

Two consumers:

* the ``repro diagnose`` report ranks slice points by divergence, and
* :func:`importance_from_attribution` converts divergences into the
  ``importance`` prior of
  :func:`repro.slicing.budget.search_profile_for_budget`, steering the
  greedy budget search toward widening the layers that actually lose
  signal when narrowed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..slicing.context import slice_profile
from ..slicing.profile import as_profile, named_slice_points
from ..tensor import Tensor, no_grad

_EPS = 1e-12


@contextmanager
def capture_activations(model, names=None):
    """Capture slice-point outputs for the forwards run inside the block.

    Yields a dict filled in as the model runs: ``{slice_point_name:
    ndarray}`` holding a float64 copy of each named module's most recent
    output.  Works by shadowing each module's ``forward`` with an
    instance attribute (the module system has no hook registry); the
    shadow is removed on exit even if the block raises.  Tuple outputs
    (recurrent cells) record their first element.
    """
    points = dict(named_slice_points(model))
    if names is None:
        names = list(points)
    missing = [name for name in names if name not in points]
    if missing:
        raise DataError(f"unknown slice points: {missing}; "
                        f"model has {sorted(points)}")
    captured: dict[str, np.ndarray] = {}
    wrapped = []

    def make_wrapper(name, module, original):
        def wrapper(*args, **kwargs):
            out = original(*args, **kwargs)
            first = out[0] if isinstance(out, tuple) else out
            data = first.data if isinstance(first, Tensor) else first
            captured[name] = np.array(data, dtype=np.float64)
            return out
        return wrapper

    try:
        for name in names:
            module = points[name]
            original = module.forward
            module.forward = make_wrapper(name, module, original)
            wrapped.append(module)
        yield captured
    finally:
        for module in wrapped:
            module.__dict__.pop("forward", None)


@dataclass
class PointDivergence:
    """Divergence of one slice point's narrow output from its prefix."""

    point: str
    rate: float
    full_width: int
    narrow_width: int
    cosine: float
    rel_l2: float
    divergence: float          # 1 - cosine; the ranking key
    rank: int = 0

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "rate": self.rate,
            "full_width": self.full_width,
            "narrow_width": self.narrow_width,
            "cosine": self.cosine,
            "rel_l2": self.rel_l2,
            "divergence": self.divergence,
            "rank": self.rank,
        }


def _channel_prefix(full: np.ndarray, width: int) -> np.ndarray:
    """The leading ``width`` channels of ``full`` along axis 1."""
    if full.ndim == 1:
        return full[:width]
    return full[:, :width]


def layer_divergence(model, inputs: np.ndarray, profile, *,
                     batch_size: int = 256) -> list[PointDivergence]:
    """Per-slice-point divergence between full-rate and profile forwards.

    Runs the same batches twice — once at the full profile, once under
    ``profile`` — capturing every slice point's output, then compares
    each narrow activation against the channel prefix of its full
    counterpart.  Accumulates sufficient statistics across batches, so
    the result is exact over the whole input set:

    * ``cosine``   = <narrow, prefix> / (|narrow| * |prefix|)
    * ``rel_l2``   = |narrow - prefix| / |prefix|
    * ``divergence`` = 1 - cosine  (the ranking key)

    Slice points running at rate 1.0 under ``profile`` trivially report
    zero divergence and are still listed (their prefix *is* the full
    activation), keeping the output schema stable across profiles.
    """
    profile = as_profile(profile)
    inputs = np.asarray(inputs)
    if len(inputs) == 0:
        raise DataError("layer_divergence needs at least one example")
    points = named_slice_points(model)
    names = [name for name, _ in points]
    # accumulators per point: [dot, narrow_sq, prefix_sq, diff_sq]
    acc = {name: np.zeros(4) for name in names}
    widths: dict[str, tuple[int, int]] = {}
    rates: dict[str, float] = {}
    model.eval()
    with no_grad():
        for start in range(0, len(inputs), batch_size):
            batch = inputs[start:start + batch_size]
            x = batch if batch.dtype.kind in "iu" else Tensor(batch)
            with slice_profile(1.0):
                with capture_activations(model, names) as full_acts:
                    model(x)
            with slice_profile(profile):
                with capture_activations(model, names) as narrow_acts:
                    model(x)
            for name in names:
                full = full_acts[name]
                narrow = narrow_acts[name]
                axis1 = narrow.shape[1] if narrow.ndim > 1 else narrow.shape[0]
                full1 = full.shape[1] if full.ndim > 1 else full.shape[0]
                widths[name] = (full1, axis1)
                prefix = _channel_prefix(full, axis1)
                acc[name] += (
                    float((narrow * prefix).sum()),
                    float((narrow * narrow).sum()),
                    float((prefix * prefix).sum()),
                    float(((narrow - prefix) ** 2).sum()),
                )
    for name, module in points:
        rates[name] = profile.rate_for(getattr(module, "slice_point", name))
    results = []
    for name in names:
        dot, nn, pp, dd = acc[name]
        cosine = dot / max(np.sqrt(nn * pp), _EPS) if nn > 0 or pp > 0 else 1.0
        rel_l2 = float(np.sqrt(dd) / (np.sqrt(pp) + _EPS))
        full_width, narrow_width = widths[name]
        results.append(PointDivergence(
            point=name, rate=float(rates[name]),
            full_width=full_width, narrow_width=narrow_width,
            cosine=float(min(cosine, 1.0)), rel_l2=rel_l2,
            divergence=float(max(1.0 - cosine, 0.0))))
    return results


def rank_attribution(divergences: list[PointDivergence]
                     ) -> list[PointDivergence]:
    """Sort worst-first (highest divergence) and assign 1-based ranks.

    Ties break on the point name so the ranking is deterministic.
    """
    ordered = sorted(divergences, key=lambda d: (-d.divergence, d.point))
    for rank, div in enumerate(ordered, start=1):
        div.rank = rank
    return ordered


def importance_from_attribution(divergences: list[PointDivergence], *,
                                floor: float = 0.1) -> dict[str, float]:
    """Importance prior for ``search_profile_for_budget`` from divergence.

    Normalizes divergences to mean 1.0 (so an uninformative attribution
    reduces to the default uniform prior) with ``floor`` as the minimum
    weight: a zero-divergence layer still gets a small score, keeping it
    reachable when widening it is nearly free.
    """
    if not divergences:
        return {}
    mean = sum(d.divergence for d in divergences) / len(divergences)
    if mean <= 0.0:
        return {d.point: 1.0 for d in divergences}
    return {d.point: max(d.divergence / mean, floor) for d in divergences}
