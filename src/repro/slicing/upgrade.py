"""``upgrade_model``: convert a plain network into a sliceable one.

Algorithm 1 begins with ``W0 <- upgrade_model(W0, L)``.  This module
implements that step for networks built from the plain layers in
:mod:`repro.nn`: every ``Linear``/``Conv2d`` is replaced by its sliced
counterpart (weights copied), and every ``BatchNorm2d`` is replaced by
either a :class:`~repro.slicing.layers.SlicedGroupNorm` (the paper's
solution) or a :class:`~repro.slicing.layers.MultiBatchNorm2d` (the
SlimmableNet solution), with the affine parameters copied.

The first transform layer encountered in registration order keeps
``slice_input=False`` (it consumes raw inputs) and the last ``Linear``
keeps ``slice_output=False`` (it emits class logits), mirroring the
paper's rule that input and output layers are not sliced.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..nn.module import Module
from ..nn.norm import BatchNorm2d
from .layers import (
    DEFAULT_GROUPS,
    MultiBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
)


def _collect(model: Module) -> list[tuple[Module, str, Module]]:
    """All (parent, attr_name, child) triples in registration order."""
    found: list[tuple[Module, str, Module]] = []

    def visit(module: Module) -> None:
        for name, child in list(module._modules.items()):
            found.append((module, name, child))
            visit(child)

    visit(model)
    return found


def upgrade_model(model: Module, rates: Sequence[float] | None = None,
                  num_groups: int = DEFAULT_GROUPS,
                  norm: str = "group") -> Module:
    """Replace plain layers with sliced counterparts, copying weights.

    Parameters
    ----------
    model:
        A network built from :mod:`repro.nn` layers.  Modified in place
        and also returned.
    rates:
        Candidate slice rates; required when ``norm == "multi_bn"``.
    num_groups:
        Slice-group count ``G`` for every upgraded layer.
    norm:
        ``"group"`` (paper's GN solution) or ``"multi_bn"``
        (SlimmableNet-style per-rate batch norms).
    """
    if norm not in ("group", "multi_bn"):
        raise ConfigError(f"unknown norm upgrade {norm!r}")
    if norm == "multi_bn" and not rates:
        raise ConfigError("multi_bn upgrade requires the candidate rates")

    triples = _collect(model)
    transforms = [
        (parent, name, child) for parent, name, child in triples
        if isinstance(child, (Linear, Conv2d))
    ]
    if not transforms:
        raise ConfigError("model contains no Linear or Conv2d layers")
    first_transform = transforms[0][2]
    linears = [t for t in transforms if isinstance(t[2], Linear)]
    last_linear = linears[-1][2] if linears else None

    for parent, name, child in triples:
        replacement: Module | None = None
        if isinstance(child, Linear):
            replacement = SlicedLinear(
                child.in_features, child.out_features,
                bias=child.bias is not None,
                slice_input=child is not first_transform,
                slice_output=child is not last_linear,
                num_groups=num_groups,
                rng=np.random.default_rng(0),
            )
            with replacement.weight.mutate() as data:
                data[...] = child.weight.data
            if child.bias is not None:
                with replacement.bias.mutate() as data:
                    data[...] = child.bias.data
        elif isinstance(child, Conv2d):
            replacement = SlicedConv2d(
                child.in_channels, child.out_channels, child.kernel_size,
                stride=child.stride, padding=child.padding,
                bias=child.bias is not None,
                slice_input=child is not first_transform,
                num_groups=num_groups,
                rng=np.random.default_rng(0),
            )
            with replacement.weight.mutate() as data:
                data[...] = child.weight.data
            if child.bias is not None:
                with replacement.bias.mutate() as data:
                    data[...] = child.bias.data
        elif isinstance(child, BatchNorm2d):
            if norm == "group":
                replacement = SlicedGroupNorm(
                    child.num_features, num_groups=num_groups, eps=child.eps
                )
                with replacement.weight.mutate() as data:
                    data[...] = child.weight.data
                with replacement.bias.mutate() as data:
                    data[...] = child.bias.data
            else:
                replacement = MultiBatchNorm2d(
                    child.num_features, list(rates), num_groups=num_groups,
                    eps=child.eps, momentum=child.momentum,
                )
        if replacement is not None:
            parent.register_module(name, replacement)
    return model
