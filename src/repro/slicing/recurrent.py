"""Sliceable recurrent cells (Sec. 3.3 of the paper).

The hidden/memory states and every gate are sliced by the same rate.  Gate
weights are stored per gate as ``(hidden, input)`` matrices so that slicing
is a plain prefix selection on both axes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..nn.init import xavier_uniform, zeros
from ..nn.module import Module, Parameter
from ..tensor import Tensor, stack
from .context import resolve_rate
from .partition import GroupPartition
from .layers import DEFAULT_GROUPS
from .profile import auto_slice_point


def _zero_state(batch: int, width: int) -> Tensor:
    return Tensor(np.zeros((batch, width), dtype=np.float32))


class _SlicedRecurrentBase(Module):
    """Shared plumbing for sliced recurrent cells."""

    _num_gates = 1

    def __init__(self, input_size: int, hidden_size: int,
                 slice_input: bool, rescale: bool, num_groups: int):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.slice_input = slice_input
        self.rescale = rescale
        self.partition = GroupPartition(
            hidden_size, min(num_groups, hidden_size)
        )
        self.in_partition = GroupPartition(
            input_size, min(num_groups, input_size)
        ) if slice_input else None
        self.slice_point = auto_slice_point(self)

    def active_param_count(self, rate: float) -> int:
        """Parameters resident in memory when deployed at ``rate``."""
        hidden = self.partition.width_for(rate)
        in_w = self.in_partition.width_for(rate) if self.slice_input \
            else self.input_size
        per_gate = hidden * in_w + hidden * hidden + hidden
        return self._num_gates * per_gate

    def active_hidden(self, rate: float | None = None) -> int:
        """Hidden width active at ``rate`` (current rate if omitted)."""
        rate = resolve_rate(self) if rate is None else rate
        return self.partition.width_for(rate)

    def _check_input(self, x: Tensor) -> int:
        in_width = x.shape[-1]
        if not self.slice_input and in_width != self.input_size:
            raise ShapeError(
                f"unsliced input expected {self.input_size} features, "
                f"got {in_width}"
            )
        return in_width

    def _gate_pre(self, x: Tensor, h: Tensor, w_ih: Parameter,
                  w_hh: Parameter, bias: Parameter, in_width: int,
                  hidden: int) -> Tensor:
        pre = (x @ w_ih[:hidden, :in_width].transpose()
               + h @ w_hh[:hidden, :hidden].transpose()
               + bias[:hidden])
        if self.rescale:
            scale = 0.0
            scale += self.input_size / in_width
            scale += self.hidden_size / hidden
            pre = pre * (scale / 2.0)
        return pre


class SlicedRNNCell(_SlicedRecurrentBase):
    """Vanilla recurrent cell with sliced input/hidden widths."""

    def __init__(self, input_size: int, hidden_size: int,
                 slice_input: bool = True, rescale: bool = False,
                 num_groups: int = DEFAULT_GROUPS,
                 rng: np.random.Generator | None = None):
        super().__init__(input_size, hidden_size, slice_input, rescale,
                         num_groups)
        rng = rng if rng is not None else np.random.default_rng()
        self.weight_ih = Parameter(xavier_uniform(rng, (hidden_size, input_size)))
        self.weight_hh = Parameter(xavier_uniform(rng, (hidden_size, hidden_size)))
        self.bias = Parameter(zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        in_width = self._check_input(x)
        hidden = self.active_hidden()
        if h is None:
            h = _zero_state(x.shape[0], hidden)
        pre = self._gate_pre(x, h, self.weight_ih, self.weight_hh,
                             self.bias, in_width, hidden)
        return pre.tanh()


class SlicedLSTMCell(_SlicedRecurrentBase):
    """LSTM cell whose gates, hidden and memory states are all sliced."""

    _num_gates = 4

    def __init__(self, input_size: int, hidden_size: int,
                 slice_input: bool = True, rescale: bool = False,
                 num_groups: int = DEFAULT_GROUPS,
                 rng: np.random.Generator | None = None,
                 forget_bias: float = 1.0):
        super().__init__(input_size, hidden_size, slice_input, rescale,
                         num_groups)
        rng = rng if rng is not None else np.random.default_rng()
        for gate in ("i", "f", "g", "o"):
            w_ih = xavier_uniform(rng, (hidden_size, input_size),
                                  fan_in=input_size, fan_out=hidden_size)
            w_hh = xavier_uniform(rng, (hidden_size, hidden_size),
                                  fan_in=hidden_size, fan_out=hidden_size)
            bias = zeros((hidden_size,))
            if gate == "f":
                bias[:] = forget_bias
            setattr(self, f"w_ih_{gate}", Parameter(w_ih))
            setattr(self, f"w_hh_{gate}", Parameter(w_hh))
            setattr(self, f"bias_{gate}", Parameter(bias))

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
                ) -> tuple[Tensor, Tensor]:
        in_width = self._check_input(x)
        hidden = self.active_hidden()
        if state is None:
            h = _zero_state(x.shape[0], hidden)
            c = _zero_state(x.shape[0], hidden)
        else:
            h, c = state
            if h.shape[-1] != hidden:
                raise ShapeError(
                    f"carried hidden state has width {h.shape[-1]} but the "
                    f"current rate needs {hidden}"
                )
        gates = {}
        for gate in ("i", "f", "g", "o"):
            gates[gate] = self._gate_pre(
                x, h,
                getattr(self, f"w_ih_{gate}"),
                getattr(self, f"w_hh_{gate}"),
                getattr(self, f"bias_{gate}"),
                in_width, hidden,
            )
        i = gates["i"].sigmoid()
        f = gates["f"].sigmoid()
        g = gates["g"].tanh()
        o = gates["o"].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class SlicedGRUCell(_SlicedRecurrentBase):
    """GRU cell with sliced gates and hidden state."""

    _num_gates = 3

    def __init__(self, input_size: int, hidden_size: int,
                 slice_input: bool = True, rescale: bool = False,
                 num_groups: int = DEFAULT_GROUPS,
                 rng: np.random.Generator | None = None):
        super().__init__(input_size, hidden_size, slice_input, rescale,
                         num_groups)
        rng = rng if rng is not None else np.random.default_rng()
        for gate in ("r", "z", "n"):
            w_ih = xavier_uniform(rng, (hidden_size, input_size),
                                  fan_in=input_size, fan_out=hidden_size)
            w_hh = xavier_uniform(rng, (hidden_size, hidden_size),
                                  fan_in=hidden_size, fan_out=hidden_size)
            setattr(self, f"w_ih_{gate}", Parameter(w_ih))
            setattr(self, f"w_hh_{gate}", Parameter(w_hh))
            setattr(self, f"bias_{gate}", Parameter(zeros((hidden_size,))))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        in_width = self._check_input(x)
        hidden = self.active_hidden()
        if h is None:
            h = _zero_state(x.shape[0], hidden)
        pre = {
            gate: self._gate_pre(
                x, h,
                getattr(self, f"w_ih_{gate}"),
                getattr(self, f"w_hh_{gate}"),
                getattr(self, f"bias_{gate}"),
                in_width, hidden,
            )
            for gate in ("r", "z", "n")
        }
        r = pre["r"].sigmoid()
        z = pre["z"].sigmoid()
        # The candidate re-computes its hidden contribution gated by r.
        w_hh_n = self.w_hh_n[:hidden, :hidden]
        gated = (r * h) @ w_hh_n.transpose()
        cand_in = x @ self.w_ih_n[:hidden, :in_width].transpose()
        cand = (cand_in + gated + self.bias_n[:hidden]).tanh()
        return (1.0 - z) * cand + z * h


class SlicedLSTM(Module):
    """Multi-layer sliced LSTM over a ``(T, B, I)`` sequence.

    Layer 0 consumes the (unsliced) embedding; deeper layers consume the
    sliced hidden state of the previous layer.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 2,
                 rescale: bool = True, num_groups: int = DEFAULT_GROUPS,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_layers = num_layers
        self.hidden_size = hidden_size
        self.cells: list[SlicedLSTMCell] = []
        for layer in range(num_layers):
            cell = SlicedLSTMCell(
                input_size if layer == 0 else hidden_size,
                hidden_size,
                slice_input=layer > 0,
                rescale=rescale,
                num_groups=num_groups,
                rng=rng,
            )
            self.register_module(f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(self, inputs: Tensor,
                states: list[tuple[Tensor, Tensor] | None] | None = None,
                step_hook=None):
        """Run the stack over ``inputs``; returns ``(outputs, final_states)``.

        ``step_hook(layer, t, h)`` is an optional callback used by tests.
        """
        if states is None:
            states = [None] * self.num_layers
        steps = inputs.shape[0]
        layer_input = [inputs[t] for t in range(steps)]
        final_states = []
        for layer, cell in enumerate(self.cells):
            state = states[layer]
            outputs = []
            for t, x_t in enumerate(layer_input):
                state = cell(x_t, state)
                outputs.append(state[0])
                if step_hook is not None:
                    step_hook(layer, t, state[0])
            final_states.append(state)
            layer_input = outputs
        return stack(layer_input, axis=0), final_states
