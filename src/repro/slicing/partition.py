"""Group partitioning: mapping a slice rate to an active prefix width.

Each sliceable layer divides its components (neurons or channels) into ``G``
ordered, contiguous groups (Sec. 3.1 of the paper).  The partial-order
constraint (Eq. 2) means a slice rate ``r`` activates the first
``round(r * G)`` groups, i.e. a *prefix* of the layer's width.
"""

from __future__ import annotations

from ..errors import SliceRateError
from .context import validate_rate


class GroupPartition:
    """Maps slice rates to active prefix widths at group granularity.

    Parameters
    ----------
    width:
        The full number of components (neurons/channels) in the layer.
    num_groups:
        ``G``: how many contiguous groups the components form.  Rates are
        snapped to the nearest group boundary, so the effective granularity
        is ``1 / num_groups``.
    """

    def __init__(self, width: int, num_groups: int):
        if width <= 0:
            raise SliceRateError(f"partition width must be positive, got {width}")
        if not 1 <= num_groups <= width:
            raise SliceRateError(
                f"num_groups must be in [1, width={width}], got {num_groups}"
            )
        self.width = width
        self.num_groups = num_groups
        self.boundaries = [
            round(width * (i + 1) / num_groups) for i in range(num_groups)
        ]

    def groups_for(self, rate: float) -> int:
        """Number of active groups under ``rate`` (always at least 1)."""
        rate = validate_rate(rate)
        active = round(rate * self.num_groups)
        return min(max(active, 1), self.num_groups)

    def width_for(self, rate: float) -> int:
        """Active prefix width (component count) under ``rate``."""
        return self.boundaries[self.groups_for(rate) - 1]

    def rate_of_width(self, width: int) -> float:
        """The canonical slice rate whose prefix is exactly ``width``."""
        if width not in self.boundaries:
            raise SliceRateError(
                f"width {width} is not a group boundary of {self!r}"
            )
        return (self.boundaries.index(width) + 1) / self.num_groups

    def valid_rates(self) -> list[float]:
        """All distinct rates this partition can express, ascending."""
        return [(i + 1) / self.num_groups for i in range(self.num_groups)]

    def group_slices(self) -> list[tuple[int, int]]:
        """``(start, stop)`` component ranges of each group, in order."""
        starts = [0] + self.boundaries[:-1]
        return list(zip(starts, self.boundaries))

    def __repr__(self) -> str:
        return f"GroupPartition(width={self.width}, groups={self.num_groups})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GroupPartition)
            and other.width == self.width
            and other.num_groups == self.num_groups
        )

    def __hash__(self) -> int:
        return hash((self.width, self.num_groups))
