"""Analysis tools for trained sliced models.

Quantifies the structural claims of the paper on any trained model:

* :func:`subnet_agreement_matrix` — fraction of identical predictions
  between every pair of subnets (the mechanism behind Figure 8 and the
  cascade result);
* :func:`marginal_gain_curve` — accuracy gained by each additional
  group-step of width (the group-residual story of Sec. 3.5: later
  groups contribute diminishing corrections);
* :func:`group_scale_profile` — per-layer mean ``|gamma|`` by slice
  group (Figure 6's telemetry, aggregated over the whole network).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module
from ..tensor import Tensor, no_grad
from .context import slice_rate
from .layers import SlicedGroupNorm


def _predict(model: Module, inputs: np.ndarray, rate: float,
             batch_size: int = 256) -> np.ndarray:
    model.eval()
    out = []
    with no_grad():
        with slice_rate(rate):
            for start in range(0, len(inputs), batch_size):
                logits = model(Tensor(inputs[start:start + batch_size]))
                out.append(logits.data.argmax(axis=1))
    return np.concatenate(out)


def subnet_agreement_matrix(model: Module, inputs: np.ndarray,
                            rates: list[float]) -> np.ndarray:
    """Pairwise fraction of samples on which two subnets agree.

    Rows/columns follow ``sorted(rates)``.  For a slicing-trained model
    the off-diagonal values are high (subnets share their base
    representation); independently trained models sit near the chance
    agreement level.
    """
    rates = sorted(rates)
    predictions = {rate: _predict(model, inputs, rate) for rate in rates}
    n = len(rates)
    matrix = np.ones((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            agree = float(
                (predictions[rates[i]] == predictions[rates[j]]).mean())
            matrix[i, j] = matrix[j, i] = agree
    return matrix


def marginal_gain_curve(model: Module, inputs: np.ndarray,
                        labels: np.ndarray,
                        rates: list[float]) -> list[dict]:
    """Accuracy and its marginal gain at each successive rate.

    The group-residual effect predicts positive-but-diminishing gains:
    the base groups carry the bulk of the accuracy and later groups
    refine it.
    """
    labels = np.asarray(labels)
    rates = sorted(rates)
    curve = []
    previous = None
    for rate in rates:
        accuracy = float((_predict(model, inputs, rate) == labels).mean())
        curve.append({
            "rate": rate,
            "accuracy": accuracy,
            "marginal_gain": accuracy - previous if previous is not None
            else accuracy,
        })
        previous = accuracy
    return curve


def group_scale_profile(model: Module) -> dict[str, np.ndarray]:
    """Mean ``|gamma|`` per slice group for every GN layer in the model.

    Keys are the layers' dotted module names; values are arrays of
    length ``num_groups``.  Raises if the model has no sliced GN layers.
    """
    profile: dict[str, np.ndarray] = {}

    def visit(module: Module, prefix: str) -> None:
        for name, child in module._modules.items():
            dotted = prefix + name
            if isinstance(child, SlicedGroupNorm):
                profile[dotted] = child.group_scale_means()
            visit(child, dotted + ".")

    visit(model, "")
    if not profile:
        raise ConfigError("model contains no SlicedGroupNorm layers")
    return profile


def stratification_score(profile: dict[str, np.ndarray]) -> float:
    """How strongly GN scales decrease from base to tail groups.

    For each layer, the mean of the first half of the groups minus the
    mean of the second half, averaged over layers and normalized by the
    overall mean scale.  Positive values mean Figure 6's stratified
    pattern: base groups carry larger scales.
    """
    gaps = []
    for scales in profile.values():
        half = len(scales) // 2
        if half == 0:
            continue
        denom = float(np.mean(scales)) or 1.0
        gaps.append((float(np.mean(scales[:half]))
                     - float(np.mean(scales[half:]))) / denom)
    if not gaps:
        raise ConfigError("profile has no multi-group layers")
    return float(np.mean(gaps))
