"""Model slicing: the paper's core contribution.

* :mod:`~repro.slicing.context` — the ambient slice context
  (``with slice_rate(r): ...`` / ``with slice_profile(p): ...``).
* :mod:`~repro.slicing.profile` — per-layer :class:`SliceProfile`
  objects generalizing the scalar rate.
* :mod:`~repro.slicing.partition` — rate → active-prefix-width mapping at
  group granularity.
* :mod:`~repro.slicing.layers` — sliceable dense/conv/normalization layers.
* :mod:`~repro.slicing.recurrent` — sliceable RNN/LSTM/GRU cells.
* :mod:`~repro.slicing.schemes` — slice-rate scheduling schemes (Sec. 3.4).
* :mod:`~repro.slicing.trainer` — the Algorithm-1 training loop.
* :mod:`~repro.slicing.budget` — budget → rate mapping (Eq. 3).
* :mod:`~repro.slicing.upgrade` — convert plain models to sliceable ones.
* :mod:`~repro.slicing.incremental` — group-residual computation reuse
  (Sec. 3.5).
* :mod:`~repro.slicing.resume` — resumable compiled plans: run narrow,
  retain intermediates, :meth:`~repro.slicing.resume.ResumablePlan.widen`
  to a nested wider profile with cross-term reuse.
"""

from .context import (
    SliceContext,
    current_profile,
    current_rate,
    resolve_rate,
    slice_profile,
    slice_rate,
    validate_rate,
)
from .profile import (
    LayerProfile,
    SliceProfile,
    UniformProfile,
    as_profile,
    assign_slice_points,
    named_slice_points,
    slice_granularity,
    snap_rate,
)
from .partition import GroupPartition
from .layers import (
    DEFAULT_GROUPS,
    MultiBatchNorm2d,
    SlicedBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
)
from .recurrent import (
    SlicedGRUCell,
    SlicedLSTM,
    SlicedLSTMCell,
    SlicedRNNCell,
)
from .schemes import (
    FixedScheme,
    ProfileScheme,
    RandomScheme,
    RandomStaticScheme,
    Scheme,
    StaticScheme,
)
from .distributions import (
    ContinuousScheme,
    categorical_from_cdf,
    exponential_decay_cdf,
    normal_cdf,
    uniform_cdf,
)
from .budget import (
    ProfileSearchResult,
    max_rate_for_budget,
    rate_for_budget,
    rate_for_latency,
    search_profile_for_budget,
    uniform_rate_for_budget,
    width_slice_points,
)
from .trainer import EpochRecord, SliceTrainer
from .upgrade import upgrade_model
from .deploy import materialize_subnet
from .plans import (
    FallbackPlan,
    InferencePlan,
    PlanCache,
    compile_layer,
    compile_plan,
    get_plan,
    shared_cache,
)
from .resume import (
    ResumablePlan,
    compile_resumable,
    pointwise_nested,
    scratch_madds,
)
from . import analysis, incremental

__all__ = [
    "SliceContext",
    "slice_rate",
    "slice_profile",
    "current_rate",
    "current_profile",
    "resolve_rate",
    "validate_rate",
    "SliceProfile",
    "UniformProfile",
    "LayerProfile",
    "as_profile",
    "assign_slice_points",
    "named_slice_points",
    "slice_granularity",
    "snap_rate",
    "GroupPartition",
    "DEFAULT_GROUPS",
    "SlicedLinear",
    "SlicedConv2d",
    "SlicedGroupNorm",
    "SlicedBatchNorm2d",
    "MultiBatchNorm2d",
    "SlicedRNNCell",
    "SlicedLSTMCell",
    "SlicedGRUCell",
    "SlicedLSTM",
    "Scheme",
    "FixedScheme",
    "StaticScheme",
    "RandomScheme",
    "RandomStaticScheme",
    "ProfileScheme",
    "ContinuousScheme",
    "categorical_from_cdf",
    "uniform_cdf",
    "normal_cdf",
    "exponential_decay_cdf",
    "max_rate_for_budget",
    "rate_for_budget",
    "rate_for_latency",
    "search_profile_for_budget",
    "uniform_rate_for_budget",
    "width_slice_points",
    "ProfileSearchResult",
    "SliceTrainer",
    "EpochRecord",
    "upgrade_model",
    "materialize_subnet",
    "InferencePlan",
    "FallbackPlan",
    "PlanCache",
    "compile_plan",
    "compile_layer",
    "get_plan",
    "shared_cache",
    "ResumablePlan",
    "compile_resumable",
    "pointwise_nested",
    "scratch_madds",
    "incremental",
    "analysis",
]
