"""Model slicing: the paper's core contribution.

* :mod:`~repro.slicing.context` — the shared slice-rate context
  (``with slice_rate(r): ...``).
* :mod:`~repro.slicing.partition` — rate → active-prefix-width mapping at
  group granularity.
* :mod:`~repro.slicing.layers` — sliceable dense/conv/normalization layers.
* :mod:`~repro.slicing.recurrent` — sliceable RNN/LSTM/GRU cells.
* :mod:`~repro.slicing.schemes` — slice-rate scheduling schemes (Sec. 3.4).
* :mod:`~repro.slicing.trainer` — the Algorithm-1 training loop.
* :mod:`~repro.slicing.budget` — budget → rate mapping (Eq. 3).
* :mod:`~repro.slicing.upgrade` — convert plain models to sliceable ones.
* :mod:`~repro.slicing.incremental` — group-residual computation reuse
  (Sec. 3.5).
"""

from .context import SliceContext, current_rate, slice_rate, validate_rate
from .partition import GroupPartition
from .layers import (
    DEFAULT_GROUPS,
    MultiBatchNorm2d,
    SlicedBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
)
from .recurrent import (
    SlicedGRUCell,
    SlicedLSTM,
    SlicedLSTMCell,
    SlicedRNNCell,
)
from .schemes import (
    FixedScheme,
    RandomScheme,
    RandomStaticScheme,
    Scheme,
    StaticScheme,
)
from .distributions import (
    ContinuousScheme,
    categorical_from_cdf,
    exponential_decay_cdf,
    normal_cdf,
    uniform_cdf,
)
from .budget import max_rate_for_budget, rate_for_budget, rate_for_latency
from .trainer import EpochRecord, SliceTrainer
from .upgrade import upgrade_model
from .deploy import materialize_subnet
from .plans import (
    FallbackPlan,
    InferencePlan,
    PlanCache,
    compile_layer,
    compile_plan,
    get_plan,
    shared_cache,
)
from . import analysis, incremental

__all__ = [
    "SliceContext",
    "slice_rate",
    "current_rate",
    "validate_rate",
    "GroupPartition",
    "DEFAULT_GROUPS",
    "SlicedLinear",
    "SlicedConv2d",
    "SlicedGroupNorm",
    "SlicedBatchNorm2d",
    "MultiBatchNorm2d",
    "SlicedRNNCell",
    "SlicedLSTMCell",
    "SlicedGRUCell",
    "SlicedLSTM",
    "Scheme",
    "FixedScheme",
    "StaticScheme",
    "RandomScheme",
    "RandomStaticScheme",
    "ContinuousScheme",
    "categorical_from_cdf",
    "uniform_cdf",
    "normal_cdf",
    "exponential_decay_cdf",
    "max_rate_for_budget",
    "rate_for_budget",
    "rate_for_latency",
    "SliceTrainer",
    "EpochRecord",
    "upgrade_model",
    "materialize_subnet",
    "InferencePlan",
    "FallbackPlan",
    "PlanCache",
    "compile_plan",
    "compile_layer",
    "get_plan",
    "shared_cache",
    "incremental",
    "analysis",
]
