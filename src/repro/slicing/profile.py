"""Slice profiles: per-layer slice rates behind one ambient context.

The paper shares a single slice rate ``r`` across every sliced layer
"for simplicity" (Sec. 3.1), but Eq. 2's prefix-nesting constraint is
*per layer*: each sliced layer only needs its own active groups to form
a prefix of its own width.  A :class:`SliceProfile` generalizes the
scalar rate into an ordered mapping from named *slice points* (one per
sliced module) to rates:

* :class:`UniformProfile` — the paper's shared scalar, the degenerate
  profile that resolves every slice point to the same rate.  It compares
  and hashes like its float rate, so tables and caches keyed on scalar
  rates keep working unchanged.
* :class:`LayerProfile` — an explicit ordered ``{slice_point: rate}``
  mapping with a ``default`` for unnamed points.  Non-uniform profiles
  dominate the uniform accuracy/FLOPs Pareto frontier (Slimmable
  Networks; Slicing ViT, arXiv:2412.04786), which is what the budget
  search in :mod:`repro.slicing.budget` exploits.

Every sliced module registers a slice-point name on construction (an
auto-generated one, overridden with stable dotted paths by
:func:`assign_slice_points`, which the bundled models call) and resolves
its own rate from the ambient profile via
:func:`repro.slicing.context.resolve_rate`.

Canonicalization: a :class:`LayerProfile` whose explicit entries all
equal its default collapses to the same fingerprint as the matching
:class:`UniformProfile`, so ``UniformProfile(r)`` and "all layers at
``r``" share plan-cache entries and compare equal.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterable, Mapping

from ..errors import SliceRateError


def validate_rate(rate: float) -> float:
    """Check ``rate`` is a valid slice rate and return it as a float."""
    rate = float(rate)
    if not 0.0 < rate <= 1.0:
        raise SliceRateError(f"slice rate must be in (0, 1], got {rate}")
    return rate


def snap_rate(rate: float, num_groups: int) -> int:
    """Snap ``rate`` to the number of groups it activates under ``G`` groups.

    This is the same rounding :class:`~repro.slicing.partition.GroupPartition`
    applies, exposed so profile comparisons can happen at the granularity a
    grouped slice point actually resolves widths at: two rates that activate
    the same group count produce identical prefixes and must compare equal.
    """
    rate = validate_rate(rate)
    return min(max(round(rate * num_groups), 1), num_groups)


class SliceProfile:
    """Ordered mapping from slice-point names to slice rates.

    Subclasses implement :meth:`rate_for` and :meth:`fingerprint`.
    Profiles are immutable value objects: equality and hashing follow
    the canonical fingerprint (with uniform profiles degrading to their
    scalar rate so float-keyed tables interoperate), and ordering
    follows ``(mean_rate, fingerprint)`` — a deterministic total order
    whose scalar proxy matches the rate itself for uniform profiles.
    """

    #: True when every slice point resolves to the same rate.
    uniform = False

    def rate_for(self, slice_point: str | None) -> float:
        """The slice rate this profile assigns to ``slice_point``."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Canonical string identity (plan-cache / metrics key)."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Scalar proxy used for ordering, telemetry and nearest lookups."""
        raise NotImplementedError

    def items(self) -> tuple[tuple[str, float], ...]:
        """The explicit ``(slice_point, rate)`` entries, in order."""
        return ()

    def label(self) -> str:
        """Short human-readable identity for metric labels."""
        return self.fingerprint()

    # -- value semantics -------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, SliceProfile):
            return self.fingerprint() == other.fingerprint()
        if isinstance(other, (int, float)):
            return self.uniform and float(self) == float(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self.uniform:
            return hash(float(self))
        return hash(self.fingerprint())

    def __float__(self) -> float:
        return self.mean_rate()

    def _order_key(self) -> tuple[float, str]:
        return (self.mean_rate(), self.fingerprint())

    def __lt__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return self._order_key() < other._order_key()

    def __le__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return self._order_key() <= other._order_key()

    def __gt__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return self._order_key() > other._order_key()

    def __ge__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return self._order_key() >= other._order_key()

    def __format__(self, spec: str) -> str:
        return self.label()


class UniformProfile(SliceProfile):
    """The degenerate profile: one shared rate for every slice point.

    ``UniformProfile(r)`` is bitwise-equivalent to the pre-profile
    scalar path — every resolution returns the exact same float — and
    hashes/compares equal to ``r`` itself, so rate-keyed dictionaries
    (accuracy tables, artifacts, latency calibrations) accept either.
    """

    uniform = True

    def __init__(self, rate: float):
        self.rate = validate_rate(rate)

    def rate_for(self, slice_point: str | None) -> float:
        return self.rate

    def fingerprint(self) -> str:
        return f"u:{self.rate!r}"

    def mean_rate(self) -> float:
        return self.rate

    def label(self) -> str:
        return f"{self.rate:g}"

    def __repr__(self) -> str:
        return f"UniformProfile({self.rate})"


class LayerProfile(SliceProfile):
    """An explicit ordered mapping from slice-point names to rates.

    Parameters
    ----------
    rates:
        Mapping (or iterable of pairs) from slice-point name to rate.
        Insertion order is preserved for display; the fingerprint sorts
        names so the identity is order-independent.
    default:
        Rate for slice points not named in ``rates`` (also what
        :func:`repro.slicing.context.current_rate` reports while the
        profile is active).
    """

    def __init__(self, rates: Mapping[str, float] | Iterable[tuple[str, float]],
                 default: float = 1.0):
        entries = rates.items() if isinstance(rates, Mapping) else rates
        self._rates: dict[str, float] = {
            str(name): validate_rate(rate) for name, rate in entries}
        self.default = validate_rate(default)
        self.uniform = all(rate == self.default
                           for rate in self._rates.values())
        if self.uniform:
            self._fingerprint = f"u:{self.default!r}"
        else:
            body = ",".join(f"{name}={self._rates[name]!r}"
                            for name in sorted(self._rates))
            self._fingerprint = f"p:{body};default={self.default!r}"
        values = list(self._rates.values()) or [self.default]
        self._mean = float(sum(values) / len(values))

    def rate_for(self, slice_point: str | None) -> float:
        if slice_point is None:
            return self.default
        return self._rates.get(slice_point, self.default)

    def fingerprint(self) -> str:
        return self._fingerprint

    def mean_rate(self) -> float:
        return self.default if self.uniform else self._mean

    def items(self) -> tuple[tuple[str, float], ...]:
        return tuple(self._rates.items())

    def label(self) -> str:
        if self.uniform:
            return f"{self.default:g}"
        digest = hashlib.sha1(self._fingerprint.encode()).hexdigest()[:8]
        return f"prof:{digest}"

    def with_rate(self, slice_point: str, rate: float) -> "LayerProfile":
        """A copy with one slice point's rate replaced (search steps)."""
        updated = dict(self._rates)
        updated[str(slice_point)] = validate_rate(rate)
        return LayerProfile(updated, default=self.default)

    def pointwise_leq(self, other: "SliceProfile",
                      names: Iterable[str] | None = None,
                      granularity: Mapping[str, int] | None = None) -> bool:
        """True if this profile is <= ``other`` at every slice point.

        Pointwise-ordered profiles preserve Eq. 2 across profiles: every
        layer's active prefix under ``self`` is a prefix of its active
        prefix under ``other``.

        ``granularity`` maps slice-point names to group counts (see
        :func:`slice_granularity`).  Grouped points — attention head
        partitions, grouped linear widths — quantize their rate, so two
        rates activating the same groups are the *same* width; comparing
        at group granularity keeps the ordering faithful to the widths
        the model will actually run at.  Points without a granularity
        entry compare on raw rates, as before.
        """
        if names is None:
            names = set(self._rates) | {n for n, _ in other.items()}
        if self.default > other.rate_for(None):
            return False
        granularity = granularity or {}
        for name in names:
            mine = self.rate_for(name)
            theirs = other.rate_for(name)
            groups = granularity.get(name)
            if groups:
                if snap_rate(mine, groups) > snap_rate(theirs, groups):
                    return False
            elif mine > theirs:
                return False
        return True

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={rate:g}"
                         for name, rate in self._rates.items())
        return f"LayerProfile({{{body}}}, default={self.default:g})"


def as_profile(value) -> SliceProfile:
    """Coerce ``value`` into a :class:`SliceProfile`.

    Floats become :class:`UniformProfile`; mappings become
    :class:`LayerProfile`; profiles pass through unchanged.
    """
    if isinstance(value, SliceProfile):
        return value
    if isinstance(value, (int, float)):
        return UniformProfile(value)
    if isinstance(value, Mapping):
        return LayerProfile(value)
    raise SliceRateError(
        f"cannot interpret {value!r} as a slice rate or profile")


def _coerce(value) -> SliceProfile | None:
    if isinstance(value, SliceProfile):
        return value
    if isinstance(value, (int, float)):
        return UniformProfile(value)
    return None


# ----------------------------------------------------------------------
# Slice-point registration
# ----------------------------------------------------------------------
_AUTO_COUNTER = itertools.count()


def auto_slice_point(module) -> str:
    """A process-unique fallback name for a sliced module.

    Models replace these with stable dotted paths via
    :func:`assign_slice_points`.
    """
    return f"{type(module).__name__.lower()}@{next(_AUTO_COUNTER)}"


def named_slice_points(model) -> list[tuple[str, object]]:
    """Ordered ``(path, module)`` pairs for every sliced module.

    A module participates if it carries a ``slice_point`` attribute
    (every sliced layer and recurrent cell registers one on
    construction).  Paths are dotted module paths relative to ``model``.
    """
    points: list[tuple[str, object]] = []

    def visit(module, prefix: str) -> None:
        if hasattr(module, "slice_point"):
            name = prefix[:-1] if prefix else type(module).__name__.lower()
            points.append((name, module))
        for child_name, child in module._modules.items():
            visit(child, prefix + child_name + ".")

    visit(model, "")
    return points


def slice_granularity(model) -> dict[str, int]:
    """Map each slice-point name to the group count its rates snap to.

    Grouped slice points quantize rates: a partition with ``G`` groups
    resolves every rate in ``((g-1)/G, g/G]``-ish rounding neighborhoods
    to the same prefix width.  :meth:`LayerProfile.pointwise_leq` and
    :func:`repro.slicing.resume.pointwise_nested` compare at this
    granularity so profile ordering reflects the widths a model actually
    runs at (critical for attention, where a "group" is a whole head).
    Points whose width is not partition-driven are omitted and compare
    on raw rates.
    """
    grains: dict[str, int] = {}
    for name, module in named_slice_points(model):
        part = getattr(module, "head_partition", None)
        if part is None:
            part = getattr(module, "out_partition", None)
        if part is None:
            part = getattr(module, "partition", None)
        if part is not None:
            grains[name] = part.num_groups
    return grains


def assign_slice_points(model) -> dict[str, object]:
    """Rename every slice point to its stable dotted module path.

    Returns the resulting ``{path: module}`` mapping.  Idempotent; the
    bundled models call this at the end of ``__init__`` so profiles can
    reference layers by architecture position (``"fc0"``, ``"conv3"``,
    ``"lstm.cell1"``, ...).  Every point is also guaranteed to carry a
    ``slice_group_size`` (component count per group along the slice
    axis: 1 for plain width slicing, ``head_dim`` for attention), so
    downstream consumers can rely on the attribute's presence.
    """
    mapping: dict[str, object] = {}
    for name, module in named_slice_points(model):
        module.slice_point = name
        if not hasattr(module, "slice_group_size"):
            module.slice_group_size = 1
        mapping[name] = module
    return mapping
