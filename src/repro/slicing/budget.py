"""Mapping resource budgets to slice rates and profiles (Eq. 3 + search).

The computation of ``Subnet-r`` is roughly ``r**2`` times the full
network's, so a run-time budget ``C_t`` admits any rate
``r <= sqrt(C_t / C_0)``.  These helpers pick the largest valid candidate
rate under a budget, and the latency-constrained variant used by the
serving controller (Sec. 4.1): choose ``r`` with ``n * r**2 * t <= T/2``.

:func:`search_profile_for_budget` generalizes Eq. 3 to per-layer
profiles: instead of one global rate bounded by ``sqrt(C_t/C_0)``, a
greedy ascent starts every width-controlling slice point at the
narrowest candidate rate and repeatedly widens whichever point buys the
most width per unit of *measured* cost while staying under the budget.
The returned non-uniform profile spends the budget where it matters
(cheap layers widen first), which is how a searched profile can beat the
best uniform rate at equal FLOPs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .. import obs
from ..errors import BudgetError
from .context import validate_rate
from .profile import LayerProfile, SliceProfile, UniformProfile


def max_rate_for_budget(budget: float, full_cost: float) -> float:
    """The continuous Eq. 3 bound: ``min(sqrt(budget / full_cost), 1)``."""
    if full_cost <= 0:
        raise BudgetError(f"full_cost must be positive, got {full_cost}")
    if budget <= 0:
        raise BudgetError(f"budget must be positive, got {budget}")
    return min(math.sqrt(budget / full_cost), 1.0)


def rate_for_budget(budget: float, full_cost: float,
                    rates: Sequence[float]) -> float:
    """Largest candidate rate whose quadratic cost fits in ``budget``.

    Parameters
    ----------
    budget:
        Available computation (same unit as ``full_cost``).
    full_cost:
        Cost ``C_0`` of the full network.
    rates:
        The candidate slice rates the deployed model was trained with.

    Raises
    ------
    BudgetError
        If even the smallest candidate rate exceeds the budget.
    """
    bound = max_rate_for_budget(budget, full_cost)
    valid = [validate_rate(r) for r in rates]
    feasible = [r for r in valid if r <= bound + 1e-12]
    if not feasible:
        raise BudgetError(
            f"budget {budget} (bound r<={bound:.4f}) cannot be met; "
            f"smallest candidate rate is {min(valid)}"
        )
    return max(feasible)


def rate_for_latency(batch_size: int, full_latency_per_sample: float,
                     latency_budget: float, rates: Sequence[float],
                     processing_fraction: float = 0.5) -> float:
    """Slice rate for a mini-batch under a latency SLO (Sec. 4.1).

    The paper's controller builds a batch every ``T/2`` and spends the
    remaining ``T/2`` processing it, so it picks the largest rate with
    ``n * r**2 * t <= T * processing_fraction``.

    Raises
    ------
    BudgetError
        If even the smallest rate cannot process the batch in time.
    """
    if batch_size <= 0:
        raise BudgetError("batch_size must be positive")
    window = latency_budget * processing_fraction
    per_sample = window / batch_size
    return rate_for_budget(per_sample, full_latency_per_sample, rates)


# ----------------------------------------------------------------------
# Per-layer profile search
# ----------------------------------------------------------------------
def width_slice_points(model) -> list[tuple[str, object]]:
    """The slice points whose rate controls a layer's *output* width.

    These are the profile search's decision variables: sliced linear and
    conv layers with ``slice_output=True``, recurrent cells, and
    attention layers (whose decision is the head count — the output
    width follows the input, but the active heads set the layer's
    internal width and cost).  Norm layers and unsliced-output heads
    follow their input width, so they carry no independent width
    decision.

    For transformer models, pass
    :func:`repro.models.transformer.transformer_search_points` as the
    search's ``points``: the residual-width controllers and ``fc2``
    must stay at the profile default, so perturbing them independently
    raises a shape error at the residual add.
    """
    from ..nn.attention import MultiHeadSelfAttention
    from .layers import SlicedConv2d, SlicedLinear
    from .profile import named_slice_points
    from .recurrent import _SlicedRecurrentBase

    points: list[tuple[str, object]] = []
    for name, module in named_slice_points(model):
        if isinstance(module, (SlicedLinear, SlicedConv2d)):
            if module.slice_output:
                points.append((name, module))
        elif isinstance(module, (_SlicedRecurrentBase,
                                 MultiHeadSelfAttention)):
            points.append((name, module))
    return points


def _point_widths(module, rate: float) -> tuple[int, int]:
    """``(active_width, full_width)`` of a width-controlling module."""
    head_part = getattr(module, "head_partition", None)
    if head_part is not None:
        # Attention: the width decision is head-granular (whole trailing
        # heads), so active width moves in head_dim-sized steps.
        return (head_part.groups_for(rate) * module.head_dim,
                head_part.width * module.head_dim)
    if hasattr(module, "out_partition") and module.out_partition is not None:
        full = module.out_partition.width
        return module.out_partition.width_for(rate), full
    return module.partition.width_for(rate), module.hidden_size


@dataclass
class ProfileSearchResult:
    """Outcome of a budget-constrained profile search."""

    profile: SliceProfile
    cost: float
    budget: float
    evals: int
    history: list[tuple[str, float]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "profile": {name: rate for name, rate in self.profile.items()},
            "default_rate": self.profile.rate_for(None),
            "fingerprint": self.profile.fingerprint(),
            "uniform": self.profile.uniform,
            "cost": self.cost,
            "budget": self.budget,
            "evals": self.evals,
        }


class _CostEvaluator:
    """Memoized profile-cost evaluation with obs accounting."""

    def __init__(self, cost_fn: Callable[[SliceProfile], float]):
        self._cost_fn = cost_fn
        self._memo: dict[str, float] = {}
        self.evals = 0

    def __call__(self, profile: SliceProfile) -> float:
        key = profile.fingerprint()
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        cost = float(self._cost_fn(profile))
        self._memo[key] = cost
        self.evals += 1
        if obs.enabled():
            obs.count("profile_search_evals_total")
        return cost


def _make_cost_fn(model, input_shape, cost_fn, input_builder):
    if cost_fn is not None:
        return cost_fn
    if input_shape is None:
        raise BudgetError("profile search needs input_shape or cost_fn")
    from ..metrics.flops import measured_flops

    return lambda profile: measured_flops(
        model, input_shape, rate=profile, input_builder=input_builder)


def search_profile_for_budget(
        model, input_shape, budget: float, rates: Sequence[float], *,
        cost_fn: Callable[[SliceProfile], float] | None = None,
        points: Sequence[str] | None = None,
        importance: dict[str, float] | None = None,
        default_rate: float = 1.0,
        input_builder=None) -> ProfileSearchResult:
    """Greedy per-layer profile search under a cost budget.

    Starts every width-controlling slice point at the narrowest candidate
    rate and repeatedly raises the point with the best
    ``importance * width_gain / extra_cost`` among the raises that stay
    within ``budget``, until no raise fits.  Costs are *measured* (one
    instrumented forward per evaluated profile, memoized by fingerprint),
    so the search sees the true per-layer cost structure rather than the
    global ``r**2`` approximation.

    Parameters
    ----------
    budget:
        Cost ceiling, in the units of ``cost_fn`` (FLOPs by default).
    rates:
        Candidate rates each slice point may take (typically the trained
        rates, so every searched profile slices along trained widths).
    cost_fn:
        Optional ``profile -> cost`` override (e.g. measured latency).
    points:
        Slice-point names to search over; defaults to
        :func:`width_slice_points`.
    importance:
        Optional per-point weights biasing the greedy score (e.g. from
        group-scale telemetry); missing points weigh 1.0.
    default_rate:
        Rate for slice points outside the searched set.

    Raises
    ------
    BudgetError
        If even the all-narrowest profile exceeds ``budget``.
    """
    candidates = sorted({validate_rate(r) for r in rates})
    if not candidates:
        raise BudgetError("profile search needs at least one candidate rate")
    modules = dict(width_slice_points(model))
    if points is None:
        names = list(modules)
    else:
        names = [str(p) for p in points]
        missing = [n for n in names if n not in modules]
        if missing:
            raise BudgetError(
                f"unknown width slice points {missing}; "
                f"available: {sorted(modules)}")
    importance = importance or {}
    evaluate = _CostEvaluator(_make_cost_fn(
        model, input_shape, cost_fn, input_builder))

    profile = LayerProfile({n: candidates[0] for n in names},
                           default=default_rate)
    cost = evaluate(profile)
    if cost > budget:
        raise BudgetError(
            f"even the narrowest profile costs {cost:.4g} "
            f"> budget {budget:.4g}")
    history: list[tuple[str, float]] = [(profile.fingerprint(), cost)]

    while True:
        best_name, best_profile, best_cost, best_score = None, None, None, 0.0
        for name in names:
            current = profile.rate_for(name)
            index = candidates.index(current)
            if index + 1 == len(candidates):
                continue
            trial = profile.with_rate(name, candidates[index + 1])
            trial_cost = evaluate(trial)
            if trial_cost > budget:
                continue
            active, full = _point_widths(modules[name], current)
            new_active, _ = _point_widths(modules[name], candidates[index + 1])
            gain = (new_active - active) / full
            delta = max(trial_cost - cost, 1e-12)
            score = importance.get(name, 1.0) * gain / delta
            if score > best_score:
                best_name, best_profile = name, trial
                best_cost, best_score = trial_cost, score
        if best_profile is None:
            break
        profile, cost = best_profile, best_cost
        history.append((profile.fingerprint(), cost))

    return ProfileSearchResult(profile=profile, cost=cost, budget=budget,
                               evals=evaluate.evals, history=history)


def uniform_rate_for_budget(
        model, input_shape, budget: float, rates: Sequence[float], *,
        cost_fn: Callable[[SliceProfile], float] | None = None,
        input_builder=None) -> ProfileSearchResult:
    """Largest uniform candidate rate under ``budget``, by measured cost.

    The uniform counterpart of :func:`search_profile_for_budget` (and
    the measured-cost refinement of :func:`rate_for_budget`), used as
    the baseline a searched profile has to beat.
    """
    candidates = sorted({validate_rate(r) for r in rates})
    evaluate = _CostEvaluator(_make_cost_fn(
        model, input_shape, cost_fn, input_builder))
    best: tuple[SliceProfile, float] | None = None
    history: list[tuple[str, float]] = []
    for rate in candidates:
        profile = UniformProfile(rate)
        cost = evaluate(profile)
        history.append((profile.fingerprint(), cost))
        if cost <= budget:
            best = (profile, cost)
    if best is None:
        raise BudgetError(
            f"no uniform candidate rate fits budget {budget:.4g}; "
            f"smallest candidate is {candidates[0]}")
    return ProfileSearchResult(profile=best[0], cost=best[1], budget=budget,
                               evals=evaluate.evals, history=history)
