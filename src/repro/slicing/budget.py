"""Mapping resource budgets to slice rates (Eq. 3 of the paper).

The computation of ``Subnet-r`` is roughly ``r**2`` times the full
network's, so a run-time budget ``C_t`` admits any rate
``r <= sqrt(C_t / C_0)``.  These helpers pick the largest valid candidate
rate under a budget, and the latency-constrained variant used by the
serving controller (Sec. 4.1): choose ``r`` with ``n * r**2 * t <= T/2``.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import BudgetError
from .context import validate_rate


def max_rate_for_budget(budget: float, full_cost: float) -> float:
    """The continuous Eq. 3 bound: ``min(sqrt(budget / full_cost), 1)``."""
    if full_cost <= 0:
        raise BudgetError(f"full_cost must be positive, got {full_cost}")
    if budget <= 0:
        raise BudgetError(f"budget must be positive, got {budget}")
    return min(math.sqrt(budget / full_cost), 1.0)


def rate_for_budget(budget: float, full_cost: float,
                    rates: Sequence[float]) -> float:
    """Largest candidate rate whose quadratic cost fits in ``budget``.

    Parameters
    ----------
    budget:
        Available computation (same unit as ``full_cost``).
    full_cost:
        Cost ``C_0`` of the full network.
    rates:
        The candidate slice rates the deployed model was trained with.

    Raises
    ------
    BudgetError
        If even the smallest candidate rate exceeds the budget.
    """
    bound = max_rate_for_budget(budget, full_cost)
    valid = [validate_rate(r) for r in rates]
    feasible = [r for r in valid if r <= bound + 1e-12]
    if not feasible:
        raise BudgetError(
            f"budget {budget} (bound r<={bound:.4f}) cannot be met; "
            f"smallest candidate rate is {min(valid)}"
        )
    return max(feasible)


def rate_for_latency(batch_size: int, full_latency_per_sample: float,
                     latency_budget: float, rates: Sequence[float],
                     processing_fraction: float = 0.5) -> float:
    """Slice rate for a mini-batch under a latency SLO (Sec. 4.1).

    The paper's controller builds a batch every ``T/2`` and spends the
    remaining ``T/2`` processing it, so it picks the largest rate with
    ``n * r**2 * t <= T * processing_fraction``.

    Raises
    ------
    BudgetError
        If even the smallest rate cannot process the batch in time.
    """
    if batch_size <= 0:
        raise BudgetError("batch_size must be positive")
    window = latency_budget * processing_fraction
    per_sample = window / batch_size
    return rate_for_budget(per_sample, full_latency_per_sample, rates)
