"""Compiled per-rate inference plans: pay the slicing cost once per rate.

Every sliced forward pass re-derives the same computation: it slices
weight prefixes out of the full tensors, re-applies the
``full_in / active_in`` rescale, and builds an autograd graph that
inference never uses.  A plan bakes all of that ahead of time for one
``(model, rate)`` pair:

* **contiguous weight prefixes** — each step copies exactly the
  ``Subnet-r`` prefix of its layer's parameters into contiguous arrays
  (the rescale factor folded in), so the hot loop is plain BLAS over
  dense operands;
* **no autograd** — steps are pure-numpy callables on ``ndarray``s, no
  ``Tensor`` graph is ever built;
* **allocation-lean execution** — the convolution step keeps scratch
  buffers (padded input, im2col matrix, output) keyed on the input
  shape, so steady-state serving does not re-allocate per request.

Plans are *snapshots*: compiling copies the weights, so a plan never
observes later parameter mutation.  Staleness is detected instead — each
:class:`~repro.nn.module.Parameter` carries a version counter bumped on
every rebinding write (``param.data = ...``, ``param.data -= ...``), and
a plan records the ``(parameter, version)`` pairs it was compiled from.
:meth:`InferencePlan.is_valid` re-walks the model and fails on any
version bump, identity change (e.g. ``upgrade_model`` swapped layers) or
rebound running-statistics buffer, and :class:`PlanCache` recompiles.

Models with no registered compiler get a :class:`FallbackPlan` that runs
the ordinary sliced forward under ``no_grad`` — correct, never stale,
just not fast; the ``plan_fallbacks_total`` counter records how often
that happens.  Plans always execute **eval-mode semantics**: dropout is
identity and batch norm uses running statistics, regardless of the
model's ``training`` flag at compile time.

Cache metrics (``plan_cache_hits_total``, ``plan_cache_misses_total``,
``plan_cache_invalidations_total``, ``plan_cache_evictions_total``,
``plan_compiles_total``, ``plan_cache_size``) flow through
:mod:`repro.obs` when observability is enabled.

Execution is single-threaded by design: steps share scratch buffers, so
one plan must not be invoked concurrently from multiple threads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .. import obs
from ..errors import PlanError
from ..nn.dropout import Dropout
from ..nn.embedding import Embedding
from ..nn.norm import BatchNorm2d
from ..nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from ..tensor import Tensor, no_grad
from .context import slice_profile
from .profile import SliceProfile, as_profile, validate_rate
from .layers import (
    MultiBatchNorm2d,
    SlicedBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
)
from .recurrent import (
    SlicedGRUCell,
    SlicedLSTM,
    SlicedLSTMCell,
    SlicedRNNCell,
)

__all__ = [
    "InferencePlan",
    "FallbackPlan",
    "PlanCache",
    "compile_plan",
    "compile_layer",
    "shared_cache",
    "get_plan",
]


def _f32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float32)


def _log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    # Mirrors repro.tensor.functional.log_softmax exactly.
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return shifted - np.log(exp.sum(axis=axis, keepdims=True))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


# ----------------------------------------------------------------------
# Steps: pure-numpy callables over contiguous weight prefixes
# ----------------------------------------------------------------------
class PlanStep:
    """One compiled operation; subclasses are ``ndarray -> ndarray``."""

    kind = "step"

    def param_bytes(self) -> int:
        """Bytes of weight data resident in this step."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class LinearStep(PlanStep):
    """``y = x @ W.T + b`` over the ``Subnet-r`` prefix of a dense layer.

    ``weight``/``bias`` keep the *unscaled* prefix (so nesting tests can
    compare raw prefixes across rates); the executed operands fold the
    rescale ``scale`` in unless ``fold_scale=False``, in which case the
    scale is applied after the bias exactly as the sliced forward does —
    the mode :mod:`repro.anytime` needs to keep ``widen()`` invertible.
    """

    kind = "linear"

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None,
                 scale: float = 1.0, fold_scale: bool = True,
                 relu: bool = False):
        self.weight = _f32(weight)
        self.bias = None if bias is None else _f32(bias)
        self.scale = float(scale)
        self.folded = bool(fold_scale)
        self.relu = bool(relu)
        if self.folded and self.scale != 1.0:
            self._wt = _f32((self.weight * self.scale).T)
            self._b = None if self.bias is None else _f32(self.bias * self.scale)
            self._post = 1.0
        else:
            self._wt = _f32(self.weight.T)
            self._b = self.bias
            self._post = 1.0 if self.folded else self.scale

    def param_bytes(self) -> int:
        return self._wt.nbytes + (0 if self._b is None else self._b.nbytes)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        y = x @ self._wt
        if self._b is not None:
            y += self._b
        if self._post != 1.0:
            y *= self._post
        if self.relu:
            np.maximum(y, 0.0, out=y)
        return y


class ConvStep(PlanStep):
    """im2col convolution with pre-baked prefix weights and scratch reuse.

    The padded-input, column and output buffers are allocated once per
    input shape and reused; the im2col gather is a strided view copied
    into the column buffer, and the contraction is a single GEMM with an
    ``out=`` destination.
    """

    kind = "conv"

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None,
                 stride: int = 1, padding: int = 0):
        self.weight = _f32(weight)  # (out_ch, in_ch, kh, kw) prefix
        self.bias = None if bias is None else _f32(bias)
        out_ch, in_ch, kh, kw = self.weight.shape
        self.out_channels = out_ch
        self.in_channels = in_ch
        self.kernel_size = (kh, kw)
        self.stride = int(stride)
        self.padding = int(padding)
        self.w_mat = _f32(self.weight.reshape(out_ch, in_ch * kh * kw))
        self._bias_col = None if self.bias is None \
            else self.bias.reshape(1, out_ch, 1, 1)
        self._shape: tuple[int, ...] | None = None

    def param_bytes(self) -> int:
        return self.w_mat.nbytes + (0 if self.bias is None else self.bias.nbytes)

    def _prepare(self, shape: tuple[int, ...]) -> None:
        batch, channels, height, width = shape
        if channels != self.in_channels:
            raise PlanError(
                f"conv step compiled for {self.in_channels} input channels, "
                f"got {channels}")
        kh, kw = self.kernel_size
        p, s = self.padding, self.stride
        hp, wp = height + 2 * p, width + 2 * p
        h_out = (hp - kh) // s + 1
        w_out = (wp - kw) // s + 1
        if h_out <= 0 or w_out <= 0:
            raise PlanError(f"conv step input {shape} smaller than kernel")
        self._padded = np.zeros((batch, channels, hp, wp), dtype=np.float32)
        self._cols = np.empty((channels * kh * kw, batch * h_out * w_out),
                              dtype=np.float32)
        self._gemm_out = np.empty((self.out_channels, batch * h_out * w_out),
                                  dtype=np.float32)
        self._out = np.empty((batch, self.out_channels, h_out, w_out),
                             dtype=np.float32)
        strides = self._padded.strides
        self._view_shape = (channels, kh, kw, batch, h_out, w_out)
        self._view_strides = (strides[1], strides[2], strides[3],
                              strides[0], strides[2] * s, strides[3] * s)
        self._h_out, self._w_out = h_out, w_out
        self._shape = shape

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape != self._shape:
            self._prepare(x.shape)
        p = self.padding
        if p:
            self._padded[:, :, p:-p, p:-p] = x
        else:
            self._padded[...] = x
        view = as_strided(self._padded, self._view_shape, self._view_strides)
        self._cols.reshape(self._view_shape)[...] = view
        np.matmul(self.w_mat, self._cols, out=self._gemm_out)
        batch = x.shape[0]
        folded = self._gemm_out.reshape(
            self.out_channels, batch, self._h_out, self._w_out)
        self._out[...] = folded.transpose(1, 0, 2, 3)
        if self._bias_col is not None:
            self._out += self._bias_col
        return self._out


class GroupNormStep(PlanStep):
    """Per-group normalization over the active channel prefix."""

    kind = "groupnorm"

    def __init__(self, gamma: np.ndarray, beta: np.ndarray, group_size: int,
                 eps: float, relu: bool = False):
        self.weight = _f32(gamma)  # (active_channels,) prefix
        self.bias = _f32(beta)
        self.channels = self.weight.shape[0]
        self.group_size = int(group_size)
        if self.channels % self.group_size:
            raise PlanError(
                f"group-norm step: {self.channels} channels not a multiple "
                f"of group size {self.group_size}")
        self.eps = float(eps)
        self.relu = bool(relu)

    def param_bytes(self) -> int:
        return self.weight.nbytes + self.bias.nbytes

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise PlanError(
                f"group-norm step compiled for {self.channels} channels, "
                f"got {x.shape[1]}")
        batch = x.shape[0]
        spatial = x.shape[2:]
        flat = int(np.prod(spatial, dtype=int)) if spatial else 1
        groups = self.channels // self.group_size
        grouped = x.reshape(batch, groups, self.group_size * flat)
        mean = grouped.mean(axis=2, keepdims=True)
        centered = grouped - mean
        var = np.einsum("bgk,bgk->bg", centered, centered) \
            / (self.group_size * flat)
        centered *= ((var + self.eps) ** -0.5)[:, :, None]
        normed = centered.reshape((batch, self.channels) + spatial)
        shape = (1, self.channels) + (1,) * len(spatial)
        out = normed * self.weight.reshape(shape)
        out += self.bias.reshape(shape)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class BatchNormStep(PlanStep):
    """Eval-mode batch norm folded to one scale and one shift per channel."""

    kind = "batchnorm"

    def __init__(self, gamma: np.ndarray, beta: np.ndarray,
                 running_mean: np.ndarray, running_var: np.ndarray,
                 eps: float, relu: bool = False):
        gamma, beta = _f32(gamma), _f32(beta)
        mean, var = _f32(running_mean), _f32(running_var)
        inv = (var + np.float32(eps)) ** -0.5
        self.channels = gamma.shape[0]
        self.scale = _f32(gamma * inv)
        self.shift = _f32(beta - mean * inv * gamma)
        self.relu = bool(relu)

    def param_bytes(self) -> int:
        return self.scale.nbytes + self.shift.nbytes

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise PlanError(
                f"batch-norm step compiled for {self.channels} channels, "
                f"got {x.shape[1]}")
        shape = (1, self.channels) + (1,) * (x.ndim - 2)
        out = x * self.scale.reshape(shape)
        out += self.shift.reshape(shape)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class ReluStep(PlanStep):
    kind = "relu"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)


class IdentityStep(PlanStep):
    """Eval-mode dropout (and any other inference no-op)."""

    kind = "identity"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x


class MaxPoolStep(PlanStep):
    kind = "maxpool"

    def __init__(self, kernel_size: int):
        self.kernel_size = int(kernel_size)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise PlanError(
                f"max-pool step: spatial dims {height}x{width} "
                f"not divisible by {k}")
        return x.reshape(batch, channels, height // k, k, width // k, k) \
                .max(axis=(3, 5))


class AvgPoolStep(PlanStep):
    kind = "avgpool"

    def __init__(self, kernel_size: int):
        self.kernel_size = int(kernel_size)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise PlanError(
                f"avg-pool step: spatial dims {height}x{width} "
                f"not divisible by {k}")
        return x.reshape(batch, channels, height // k, k, width // k, k) \
                .mean(axis=(3, 5))


class GlobalAvgPoolStep(PlanStep):
    kind = "global_avg_pool"

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.mean(axis=(2, 3))


class EmbeddingStep(PlanStep):
    kind = "embedding"

    def __init__(self, table: np.ndarray):
        self.weight = _f32(table)

    def param_bytes(self) -> int:
        return self.weight.nbytes

    def __call__(self, indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(indices)
        if idx.dtype.kind not in "iu":
            raise PlanError("embedding step expects integer token ids")
        return self.weight[idx]


class LogSoftmaxStep(PlanStep):
    kind = "log_softmax"

    def __init__(self, axis: int = -1):
        self.axis = axis

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return _log_softmax(x, axis=self.axis)


# -- transformer steps --------------------------------------------------
# These steps deliberately keep weights in the *live orientation*
# ((out, in), applied as ``x @ W.T``) instead of pre-transposing like
# LinearStep: the transformer acceptance bar is bitwise identity between
# the live sliced forward, the compiled plan and the materialized subnet,
# so every GEMM must present BLAS with the same shapes and orientation
# the live path does.
class DenseStep(PlanStep):
    """``y = x @ W.T + b`` over a prefix, replaying the live op order."""

    kind = "dense"

    def __init__(self, weight: np.ndarray, bias: np.ndarray,
                 relu: bool = False):
        self.weight = _f32(weight)  # (out, in) prefix, live orientation
        self.bias = _f32(bias)
        self.relu = bool(relu)

    def param_bytes(self) -> int:
        return self.weight.nbytes + self.bias.nbytes

    def __call__(self, x: np.ndarray) -> np.ndarray:
        y = x @ self.weight.T
        y = y + self.bias
        if self.relu:
            # Tensor.relu computes x * (x > 0); mirror it exactly.
            y = y * (y > 0)
        return y


class LayerNormStep(PlanStep):
    """Layer norm over the arriving width, via the shared numpy eval."""

    kind = "layernorm"

    def __init__(self, gamma: np.ndarray, beta: np.ndarray, eps: float):
        from ..nn.norm import layer_norm_eval

        self.weight = _f32(gamma)
        self.bias = _f32(beta)
        self.eps = float(eps)
        self._eval = layer_norm_eval

    def param_bytes(self) -> int:
        return self.weight.nbytes + self.bias.nbytes

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self._eval(x, self.weight, self.bias, self.eps)


class PositionalStep(PlanStep):
    """Adds the learned positional prefix (seq length from the input)."""

    kind = "positional"

    def __init__(self, table: np.ndarray, batch_first: bool):
        self.weight = _f32(table)  # (max_len, width) prefix
        self.batch_first = bool(batch_first)

    def param_bytes(self) -> int:
        return self.weight.nbytes

    def __call__(self, x: np.ndarray) -> np.ndarray:
        seq_len = x.shape[1] if self.batch_first else x.shape[0]
        if seq_len > self.weight.shape[0]:
            raise PlanError(
                f"positional step compiled for max {self.weight.shape[0]} "
                f"positions, got {seq_len}")
        pos = self.weight[:seq_len]
        if not self.batch_first:
            pos = pos.reshape(seq_len, 1, -1)
        return x + pos


class AttentionBlockStep(PlanStep):
    """Pre-norm attention half-block: ``x + attn(ln(x))``, LN folded in.

    The LayerNorm is evaluated inline (no separate step, no autograd
    graph) and the packed head-major QKV prefix runs as **one GEMM** for
    all active heads.  The causal mask comes from the process-wide
    :func:`repro.nn.attention.causal_mask` cache, shared with the live
    layer and resumable plans.  ``qkv_weight``/``proj_weight`` hold the
    raw prefixes, so nesting tests can compare them across profiles.
    """

    kind = "attention"

    def __init__(self, ln_gamma: np.ndarray, ln_beta: np.ndarray, eps: float,
                 qkv_weight: np.ndarray, qkv_bias: np.ndarray,
                 proj_weight: np.ndarray, proj_bias: np.ndarray,
                 head_dim: int, causal: bool, batch_first: bool):
        from ..nn.attention import attention_eval, causal_mask
        from ..nn.norm import layer_norm_eval

        self.ln_gamma = _f32(ln_gamma)
        self.ln_beta = _f32(ln_beta)
        self.eps = float(eps)
        self.qkv_weight = _f32(qkv_weight)
        self.qkv_bias = _f32(qkv_bias)
        self.proj_weight = _f32(proj_weight)
        self.proj_bias = _f32(proj_bias)
        self.head_dim = int(head_dim)
        self.heads = self.qkv_weight.shape[0] // (3 * self.head_dim)
        self.causal = bool(causal)
        self.batch_first = bool(batch_first)
        self._attention = attention_eval
        self._mask = causal_mask
        self._ln = layer_norm_eval

    def param_bytes(self) -> int:
        return (self.ln_gamma.nbytes + self.ln_beta.nbytes
                + self.qkv_weight.nbytes + self.qkv_bias.nbytes
                + self.proj_weight.nbytes + self.proj_bias.nbytes)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        hx = self._ln(x, self.ln_gamma, self.ln_beta, self.eps)
        seq_len = x.shape[1] if self.batch_first else x.shape[0]
        mask = self._mask(seq_len) if self.causal else None
        return x + self._attention(
            hx, self.qkv_weight, self.qkv_bias, self.proj_weight,
            self.proj_bias, self.head_dim, mask=mask,
            batch_first=self.batch_first,
        )


class FFNBlockStep(PlanStep):
    """Pre-norm FFN half-block: ``x + fc2(relu(fc1(ln(x))))``."""

    kind = "ffn"

    def __init__(self, ln_gamma: np.ndarray, ln_beta: np.ndarray, eps: float,
                 fc1_weight: np.ndarray, fc1_bias: np.ndarray,
                 fc2_weight: np.ndarray, fc2_bias: np.ndarray):
        from ..nn.norm import layer_norm_eval

        self.ln_gamma = _f32(ln_gamma)
        self.ln_beta = _f32(ln_beta)
        self.eps = float(eps)
        self.fc1_weight = _f32(fc1_weight)
        self.fc1_bias = _f32(fc1_bias)
        self.fc2_weight = _f32(fc2_weight)
        self.fc2_bias = _f32(fc2_bias)
        self._ln = layer_norm_eval

    def param_bytes(self) -> int:
        return (self.ln_gamma.nbytes + self.ln_beta.nbytes
                + self.fc1_weight.nbytes + self.fc1_bias.nbytes
                + self.fc2_weight.nbytes + self.fc2_bias.nbytes)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        shape = x.shape
        hx = self._ln(x, self.ln_gamma, self.ln_beta, self.eps)
        flat = hx.reshape(-1, shape[-1])
        hidden = flat @ self.fc1_weight.T
        hidden = hidden + self.fc1_bias
        hidden = hidden * (hidden > 0)  # Tensor.relu's exact arithmetic
        out = hidden @ self.fc2_weight.T
        out = out + self.fc2_bias
        return x + out.reshape(shape)


class MeanPoolStep(PlanStep):
    """Mean over the token axis, replaying ``Tensor.mean``'s sum*scale."""

    kind = "meanpool"

    def __init__(self, axis: int = 1):
        self.axis = int(axis)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        count = x.shape[self.axis]
        return x.sum(axis=self.axis) * (1.0 / count)


# -- recurrent steps ----------------------------------------------------
class RNNCellStep(PlanStep):
    """Sliced vanilla RNN cell with the rescale folded into the weights."""

    kind = "rnn_cell"

    def __init__(self, cell: SlicedRNNCell, rate: float, in_width: int):
        hidden = cell.partition.width_for(rate)
        self.hidden = hidden
        self.in_width = in_width
        self.scale = _recurrent_scale(cell, in_width, hidden)
        s = np.float32(self.scale)
        self.weight_ih = _f32(cell.weight_ih.data[:hidden, :in_width])
        self.weight_hh = _f32(cell.weight_hh.data[:hidden, :hidden])
        self.bias = _f32(cell.bias.data[:hidden])
        self._wih_t = _f32((self.weight_ih * s).T)
        self._whh_t = _f32((self.weight_hh * s).T)
        self._b = _f32(self.bias * s)

    def param_bytes(self) -> int:
        return self._wih_t.nbytes + self._whh_t.nbytes + self._b.nbytes

    def __call__(self, x: np.ndarray, h: np.ndarray | None = None
                 ) -> np.ndarray:
        if h is None:
            h = np.zeros((x.shape[0], self.hidden), dtype=np.float32)
        return np.tanh(x @ self._wih_t + h @ self._whh_t + self._b)


class LSTMCellStep(PlanStep):
    """Sliced LSTM cell with the four gates packed into one GEMM each.

    The sliced reference computes one ``(B, h)`` matmul per gate per
    operand; the plan concatenates the per-gate prefixes (i, f, g, o —
    the layout :func:`~repro.slicing.deploy.materialize_subnet` also
    uses) so each timestep is two ``(B, 4h)`` matmuls.
    """

    kind = "lstm_cell"
    _GATES = ("i", "f", "g", "o")

    def __init__(self, cell: SlicedLSTMCell, rate: float, in_width: int):
        hidden = cell.partition.width_for(rate)
        self.hidden = hidden
        self.in_width = in_width
        self.scale = _recurrent_scale(cell, in_width, hidden)
        s = np.float32(self.scale)
        w_ih = np.concatenate([
            getattr(cell, f"w_ih_{g}").data[:hidden, :in_width]
            for g in self._GATES])
        w_hh = np.concatenate([
            getattr(cell, f"w_hh_{g}").data[:hidden, :hidden]
            for g in self._GATES])
        bias = np.concatenate([
            getattr(cell, f"bias_{g}").data[:hidden] for g in self._GATES])
        self.weight_ih = _f32(w_ih)   # (4h, in_width), unscaled
        self.weight_hh = _f32(w_hh)   # (4h, hidden), unscaled
        self.bias = _f32(bias)
        self._wih_t = _f32((self.weight_ih * s).T)
        self._whh_t = _f32((self.weight_hh * s).T)
        self._b = _f32(self.bias * s)

    def param_bytes(self) -> int:
        return self._wih_t.nbytes + self._whh_t.nbytes + self._b.nbytes

    def step(self, x: np.ndarray, h: np.ndarray, c: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray]:
        n = self.hidden
        gates = x @ self._wih_t + h @ self._whh_t + self._b
        i = _sigmoid(gates[:, :n])
        f = _sigmoid(gates[:, n:2 * n])
        g = np.tanh(gates[:, 2 * n:3 * n])
        o = _sigmoid(gates[:, 3 * n:])
        c_next = f * c + i * g
        h_next = o * np.tanh(c_next)
        return h_next, c_next

    def __call__(self, x: np.ndarray,
                 state: tuple[np.ndarray, np.ndarray] | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        if state is None:
            h = np.zeros((x.shape[0], self.hidden), dtype=np.float32)
            c = np.zeros_like(h)
        else:
            h, c = state
        return self.step(x, h, c)


class GRUCellStep(PlanStep):
    """Sliced GRU cell with r/z gates packed into one GEMM.

    Mirrors the reference exactly: the rescale applies to the r and z
    pre-activations only — the candidate is recomputed unscaled from the
    reset-gated hidden state.
    """

    kind = "gru_cell"

    def __init__(self, cell: SlicedGRUCell, rate: float, in_width: int):
        hidden = cell.partition.width_for(rate)
        self.hidden = hidden
        self.in_width = in_width
        self.scale = _recurrent_scale(cell, in_width, hidden)
        s = np.float32(self.scale)
        self.weight_ih = _f32(np.concatenate([
            cell.w_ih_r.data[:hidden, :in_width],
            cell.w_ih_z.data[:hidden, :in_width],
            cell.w_ih_n.data[:hidden, :in_width]]))
        self.weight_hh = _f32(np.concatenate([
            cell.w_hh_r.data[:hidden, :hidden],
            cell.w_hh_z.data[:hidden, :hidden]]))
        self.bias = _f32(np.concatenate([
            cell.bias_r.data[:hidden], cell.bias_z.data[:hidden]]))
        scaled_ih = self.weight_ih.copy()
        scaled_ih[:2 * hidden] *= s
        self._wih_t = _f32(scaled_ih.T)          # (in_w, 3h): [s*r, s*z, n]
        self._whh_rz_t = _f32((self.weight_hh * s).T)  # (h, 2h)
        self._b_rz = _f32(self.bias * s)
        self._whh_n_t = _f32(cell.w_hh_n.data[:hidden, :hidden].T)
        self._b_n = _f32(cell.bias_n.data[:hidden])

    def param_bytes(self) -> int:
        return (self._wih_t.nbytes + self._whh_rz_t.nbytes
                + self._b_rz.nbytes + self._whh_n_t.nbytes + self._b_n.nbytes)

    def __call__(self, x: np.ndarray, h: np.ndarray | None = None
                 ) -> np.ndarray:
        n = self.hidden
        if h is None:
            h = np.zeros((x.shape[0], n), dtype=np.float32)
        xw = x @ self._wih_t
        pre_rz = xw[:, :2 * n] + h @ self._whh_rz_t + self._b_rz
        r = _sigmoid(pre_rz[:, :n])
        z = _sigmoid(pre_rz[:, n:])
        cand = np.tanh(xw[:, 2 * n:] + (r * h) @ self._whh_n_t + self._b_n)
        return (1.0 - z) * cand + z * h


class LSTMStackStep(PlanStep):
    """A multi-layer LSTM over a ``(T, B, I)`` sequence from zero states."""

    kind = "lstm"

    def __init__(self, cells: list[LSTMCellStep]):
        self.cells = list(cells)

    def param_bytes(self) -> int:
        return sum(cell.param_bytes() for cell in self.cells)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        steps, batch = x.shape[0], x.shape[1]
        layer_input = x
        for cell in self.cells:
            h = np.zeros((batch, cell.hidden), dtype=np.float32)
            c = np.zeros_like(h)
            outputs = np.empty((steps, batch, cell.hidden), dtype=np.float32)
            for t in range(steps):
                h, c = cell.step(layer_input[t], h, c)
                outputs[t] = h
            layer_input = outputs
        return layer_input


def _recurrent_scale(cell, in_width: int, hidden: int) -> float:
    if not cell.rescale:
        return 1.0
    return (cell.input_size / in_width + cell.hidden_size / hidden) / 2.0


# ----------------------------------------------------------------------
# Layer compilation
# ----------------------------------------------------------------------
def _linear_in_width(layer: SlicedLinear, rate: float) -> int:
    if not layer.slice_input:
        return layer.in_features
    return layer.in_partition.width_for(rate)


def _linear_scale(layer: SlicedLinear, in_width: int) -> float:
    if layer.rescale and layer.slice_input and in_width != layer.in_features:
        return layer.in_features / in_width
    return 1.0


def compile_layer(layer, rate, fold_rescale: bool = True,
                  in_width: int | None = None, relu: bool = False) -> PlanStep:
    """Compile one sliced layer into a :class:`PlanStep` at ``rate``.

    ``rate`` may be a scalar or a :class:`SliceProfile`; a profile is
    resolved to this layer's own rate via its ``slice_point`` name
    (containers like :class:`SlicedLSTM` resolve per child cell).
    ``in_width`` overrides the input width the step is specialized for
    (model compilers thread the actual upstream activation width through;
    standalone compilation derives it from the layer's own partition).
    ``relu`` fuses a trailing ReLU into steps that support it.
    """
    profile = as_profile(rate)
    if isinstance(layer, SlicedLSTM):
        cell_steps: list[PlanStep] = []
        width = in_width
        for cell in layer.cells:
            cell_steps.append(_compile_cell(
                cell, profile.rate_for(cell.slice_point), width))
            width = cell_steps[-1].hidden
        return LSTMStackStep(cell_steps)
    rate = validate_rate(profile.rate_for(getattr(layer, "slice_point", None)))
    if isinstance(layer, SlicedLinear):
        in_w = in_width if in_width is not None else _linear_in_width(layer, rate)
        out_w = layer.out_partition.width_for(rate) if layer.slice_output \
            else layer.out_features
        bias = None if layer.bias is None else layer.bias.data[:out_w]
        return LinearStep(layer.weight.data[:out_w, :in_w], bias,
                          scale=_linear_scale(layer, in_w),
                          fold_scale=fold_rescale, relu=relu)
    if isinstance(layer, SlicedConv2d):
        in_w = in_width if in_width is not None else (
            layer.in_partition.width_for(rate) if layer.slice_input
            else layer.in_channels)
        out_w = layer.active_out_channels(rate)
        bias = None if layer.bias is None else layer.bias.data[:out_w]
        step = ConvStep(layer.weight.data[:out_w, :in_w], bias,
                        stride=layer.stride, padding=layer.padding)
        if relu:
            raise PlanError("ConvStep does not fuse ReLU")
        return step
    if isinstance(layer, SlicedGroupNorm):
        if in_width is None:
            groups = max(1, min(round(rate * layer.num_groups),
                                layer.num_groups))
            in_width = groups * layer.group_size
        if in_width % layer.group_size:
            raise PlanError(
                f"active width {in_width} is not a multiple of the "
                f"group size {layer.group_size}")
        return GroupNormStep(layer.weight.data[:in_width],
                             layer.bias.data[:in_width],
                             layer.group_size, layer.eps, relu=relu)
    if isinstance(layer, SlicedBatchNorm2d):
        channels = in_width if in_width is not None else layer.num_features
        return BatchNormStep(layer.weight.data[:channels],
                             layer.bias.data[:channels],
                             layer.running_mean[:channels],
                             layer.running_var[:channels],
                             layer.eps, relu=relu)
    if isinstance(layer, MultiBatchNorm2d):
        best = min(layer._rate_keys, key=lambda r: abs(r - rate))
        if abs(best - rate) > 1e-6:
            raise PlanError(
                f"MultiBatchNorm2d has no BN for rate {rate}; "
                f"configured rates: {layer._rate_keys}")
        bn: BatchNorm2d = getattr(layer, f"bn_{layer._key(best)}")
        if in_width is not None and in_width != bn.num_features:
            raise PlanError(
                f"rate {rate} BN expects {bn.num_features} channels, "
                f"got {in_width}")
        return compile_layer(bn, rate, in_width=bn.num_features, relu=relu)
    if isinstance(layer, BatchNorm2d):
        return BatchNormStep(layer.weight.data, layer.bias.data,
                             layer.running_mean, layer.running_var,
                             layer.eps, relu=relu)
    if isinstance(layer, (SlicedLSTMCell, SlicedGRUCell, SlicedRNNCell)):
        return _compile_cell(layer, rate, in_width)
    if isinstance(layer, Embedding):
        return EmbeddingStep(layer.weight.data)
    if isinstance(layer, Dropout):
        return IdentityStep()
    if isinstance(layer, MaxPool2d):
        return MaxPoolStep(layer.kernel_size)
    if isinstance(layer, AvgPool2d):
        return AvgPoolStep(layer.kernel_size)
    if isinstance(layer, GlobalAvgPool2d):
        return GlobalAvgPoolStep()
    raise PlanError(f"no plan compiler for layer {type(layer).__name__}")


def _compile_cell(cell, rate: float, in_width: int | None = None) -> PlanStep:
    if in_width is None:
        in_width = cell.in_partition.width_for(rate) if cell.slice_input \
            else cell.input_size
    if isinstance(cell, SlicedLSTMCell):
        return LSTMCellStep(cell, rate, in_width)
    if isinstance(cell, SlicedGRUCell):
        return GRUCellStep(cell, rate, in_width)
    if isinstance(cell, SlicedRNNCell):
        return RNNCellStep(cell, rate, in_width)
    raise PlanError(f"no plan compiler for cell {type(cell).__name__}")


# ----------------------------------------------------------------------
# Model compilation
# ----------------------------------------------------------------------
def _compile_mlp(model, profile: SliceProfile,
                 fold_rescale: bool) -> list[PlanStep]:
    steps: list[PlanStep] = []
    width = model.in_features
    for layer in model.layers:
        rate = profile.rate_for(layer.slice_point)
        steps.append(compile_layer(layer, rate, fold_rescale,
                                   in_width=width, relu=True))
        width = layer.out_partition.width_for(rate) if layer.slice_output \
            else layer.out_features
    steps.append(compile_layer(model.head, profile, fold_rescale,
                               in_width=width))
    return steps


def _compile_vgg(model, profile: SliceProfile,
                 fold_rescale: bool) -> list[PlanStep]:
    steps: list[PlanStep] = []
    width = model._ops[0][1].in_channels
    rate = profile.rate_for(None)
    for kind, op in model._ops:
        if kind == "conv":
            rate = profile.rate_for(op.slice_point)
            steps.append(compile_layer(op, rate, fold_rescale, in_width=width))
            width = op.active_out_channels(rate)
        elif kind == "norm":
            # Norms normalize whatever width arrives, so they compile at
            # the feeding conv's rate — naming them is unnecessary.
            steps.append(compile_layer(op, rate, fold_rescale,
                                       in_width=width, relu=True))
        else:
            steps.append(compile_layer(op, profile, fold_rescale))
    steps.append(GlobalAvgPoolStep())
    steps.append(compile_layer(model.head, profile, fold_rescale,
                               in_width=width))
    return steps


class _NNLMRunner:
    """Token ids ``(T, B)`` -> log-probabilities ``(T, B, vocab)``."""

    def __init__(self, embed: EmbeddingStep, lstm: LSTMStackStep,
                 decoder: LinearStep):
        self.steps = [embed, lstm, decoder]
        self._embed, self._lstm, self._decoder = embed, lstm, decoder

    def __call__(self, tokens: np.ndarray) -> np.ndarray:
        steps, batch = tokens.shape
        x = self._embed(tokens)
        hidden = self._lstm(x)
        logits = self._decoder(hidden.reshape(steps * batch, -1))
        return _log_softmax(logits).reshape(steps, batch, -1)


def _compile_nnlm(model, profile: SliceProfile, fold_rescale: bool):
    last = model.lstm.cells[-1]
    hidden_w = last.partition.width_for(profile.rate_for(last.slice_point))
    runner = _NNLMRunner(
        compile_layer(model.embedding, profile, fold_rescale),
        compile_layer(model.lstm, profile, fold_rescale),
        compile_layer(model.decoder, profile, fold_rescale, in_width=hidden_w),
    )
    return runner.steps, runner


def _block_steps(block, profile: SliceProfile, width: int) -> list[PlanStep]:
    """Compile one pre-norm transformer block at the residual ``width``."""
    attn = block.attn
    heads = attn.active_heads(profile.rate_for(attn.slice_point))
    inner = heads * attn.head_dim
    rows = 3 * inner
    attn_step = AttentionBlockStep(
        block.ln1.weight.data[:width], block.ln1.bias.data[:width],
        block.ln1.eps,
        attn.qkv_weight.data[:rows, :width], attn.qkv_bias.data[:rows],
        attn.proj_weight.data[:width, :inner], attn.proj_bias.data[:width],
        attn.head_dim, attn.causal, attn.batch_first,
    )
    ffn = block.fc1.out_partition.width_for(
        profile.rate_for(block.fc1.slice_point))
    fc2_out = block.fc2.out_partition.width_for(
        profile.rate_for(block.fc2.slice_point))
    if fc2_out != width:
        raise PlanError(
            f"profile gives fc2 width {fc2_out} but the residual stream is "
            f"{width} wide; fc2 must stay at the default (residual) rate")
    ffn_step = FFNBlockStep(
        block.ln2.weight.data[:width], block.ln2.bias.data[:width],
        block.ln2.eps,
        block.fc1.weight.data[:ffn, :width], block.fc1.bias.data[:ffn],
        block.fc2.weight.data[:width, :ffn], block.fc2.bias.data[:width],
    )
    return [attn_step, ffn_step]


class _TransformerEncoderRunner:
    """Images ``(B, C, H, W)`` -> class log-probabilities ``(B, classes)``."""

    def __init__(self, patchify, steps: list[PlanStep]):
        self.steps = steps
        self._patchify = patchify

    def __call__(self, images: np.ndarray) -> np.ndarray:
        x = self._patchify(np.asarray(images))
        for step in self.steps:
            x = step(x)
        return x


class _TransformerLMRunner:
    """Token ids ``(T, B)`` -> log-probabilities ``(T, B, vocab)``."""

    def __init__(self, steps: list[PlanStep]):
        self.steps = steps

    def __call__(self, tokens: np.ndarray) -> np.ndarray:
        seq, batch = tokens.shape
        x = self.steps[0](tokens)
        for step in self.steps[1:-1]:
            x = step(x)
        logits = self.steps[-1](x.reshape(seq * batch, x.shape[-1]))
        return _log_softmax(logits).reshape(seq, batch, -1)


def _compile_transformer_encoder(model, profile: SliceProfile,
                                 fold_rescale: bool):
    width = model.patch_embed.out_partition.width_for(
        profile.rate_for(model.patch_embed.slice_point))
    steps: list[PlanStep] = [
        DenseStep(model.patch_embed.weight.data[:width, :],
                  model.patch_embed.bias.data[:width]),
        PositionalStep(model.pos.weight.data[:, :width], batch_first=True),
    ]
    for block in model.blocks:
        steps.extend(_block_steps(block, profile, width))
    steps.append(LayerNormStep(model.ln_f.weight.data[:width],
                               model.ln_f.bias.data[:width], model.ln_f.eps))
    steps.append(MeanPoolStep(axis=1))
    steps.append(DenseStep(model.head.weight.data[:, :width],
                           model.head.bias.data))
    steps.append(LogSoftmaxStep())
    runner = _TransformerEncoderRunner(model.patchify, steps)
    return steps, runner


def _compile_transformer_lm(model, profile: SliceProfile,
                            fold_rescale: bool):
    width = model.embedding.active_width(
        profile.rate_for(model.embedding.slice_point))
    steps: list[PlanStep] = [
        EmbeddingStep(model.embedding.weight.data[:, :width]),
        PositionalStep(model.pos.weight.data[:, :width], batch_first=False),
    ]
    for block in model.blocks:
        steps.extend(_block_steps(block, profile, width))
    steps.append(LayerNormStep(model.ln_f.weight.data[:width],
                               model.ln_f.bias.data[:width], model.ln_f.eps))
    steps.append(DenseStep(model.decoder.weight.data[:, :width],
                           model.decoder.bias.data))
    runner = _TransformerLMRunner(steps)
    return steps, runner


def _find_compiler(model):
    # Imported lazily: repro.models imports repro.slicing at module load.
    from ..models.mlp import MLP
    from ..models.nnlm import NNLM
    from ..models.transformer import TransformerEncoder, TransformerLM
    from ..models.vgg import SlicedVGG

    if isinstance(model, MLP):
        return _compile_mlp
    if isinstance(model, SlicedVGG):
        return _compile_vgg
    if isinstance(model, NNLM):
        return _compile_nnlm
    if isinstance(model, TransformerEncoder):
        return _compile_transformer_encoder
    if isinstance(model, TransformerLM):
        return _compile_transformer_lm
    return None


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class InferencePlan:
    """The compiled forward pass of one model at one slice profile.

    :attr:`profile` is the full per-layer identity; :attr:`rate` keeps
    the scalar view for uniform profiles (``None`` for genuinely
    non-uniform ones, where no single scalar describes the plan).
    """

    compiled = True
    fallback = False

    def __init__(self, model, rate, steps: list[PlanStep],
                 run_fn: Callable[[np.ndarray], np.ndarray] | None = None,
                 fold_rescale: bool = True):
        self.model = model
        self.profile = as_profile(rate)
        self.rate = float(self.profile) if self.profile.uniform else None
        self.steps = list(steps)
        self.fold_rescale = bool(fold_rescale)
        self._run = run_fn
        self._sources = [(p, p.version) for p in model.parameters()]
        self._extra = [
            (module, key, value)
            for module in model.modules()
            for key, value in module.extra_state().items()
        ]

    # -- staleness -------------------------------------------------------
    def is_valid(self) -> bool:
        """True while the snapshot still matches the live model."""
        current = self.model.parameters()
        if len(current) != len(self._sources):
            return False
        for param, (source, version) in zip(current, self._sources):
            if param is not source or param.version != version:
                return False
        for module, key, value in self._extra:
            if module.extra_state().get(key) is not value:
                return False
        return True

    # -- execution -------------------------------------------------------
    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Execute the plan on a raw ``ndarray`` batch."""
        x = np.asarray(inputs)
        if x.dtype.kind not in "iu":
            x = np.ascontiguousarray(x, dtype=np.float32)
        if self._run is not None:
            return self._run(x)
        for step in self.steps:
            x = step(x)
        return x

    def __call__(self, x) -> Tensor:
        """Tensor-compatible entry point (drop-in for ``model(x)``)."""
        arr = x.data if isinstance(x, Tensor) else x
        return Tensor(np.array(self.run(arr)))

    # -- introspection ---------------------------------------------------
    def param_bytes(self) -> int:
        """Bytes of weight data materialized by this plan."""
        return sum(step.param_bytes() for step in self.steps)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({type(self.model).__name__}, "
                f"profile={self.profile.label()}, steps={len(self.steps)})")


class FallbackPlan(InferencePlan):
    """Uncompiled escape hatch: the sliced forward under ``no_grad``.

    Used when no compiler is registered for the model class.  It reads
    the live weights on every call, so it can never go stale.
    """

    compiled = False
    fallback = True

    def __init__(self, model, rate):
        super().__init__(model, rate, steps=[])

    def is_valid(self) -> bool:
        return True

    def run(self, inputs: np.ndarray) -> np.ndarray:
        x = np.asarray(inputs)
        arg = x if x.dtype.kind in "iu" \
            else Tensor(np.ascontiguousarray(x, dtype=np.float32))
        with no_grad(), slice_profile(self.profile):
            out = self.model(arg)
        return out.data if isinstance(out, Tensor) else np.asarray(out)


def compile_plan(model, rate, fold_rescale: bool = True
                 ) -> InferencePlan:
    """Compile ``model`` at ``rate`` (a :class:`FallbackPlan` if unknown).

    ``rate`` may be a scalar rate or a :class:`SliceProfile`.
    ``fold_rescale=False`` keeps the ``full_in / active_in`` rescale as a
    separate post-bias multiply instead of baking it into the weights —
    bit-compatible with the incremental (anytime) forward.
    """
    profile = as_profile(rate)
    compiler = _find_compiler(model)
    if compiler is None:
        if obs.enabled():
            obs.count("plan_fallbacks_total", kind=type(model).__name__)
        return FallbackPlan(model, profile)
    result = compiler(model, profile, fold_rescale)
    if isinstance(result, tuple):
        steps, run_fn = result
    else:
        steps, run_fn = result, None
    return InferencePlan(model, profile, steps, run_fn=run_fn,
                         fold_rescale=fold_rescale)


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class PlanCache:
    """LRU cache of compiled plans keyed by ``(model, profile)``.

    The profile key is the canonical fingerprint, so ``0.5``,
    ``UniformProfile(0.5)`` and an all-``0.5`` :class:`LayerProfile` all
    share one entry.  A hit requires the cached plan to still be valid:
    any parameter version bump, parameter-identity change or rebound
    running-stats buffer invalidates the entry and recompiles (counted
    separately from cold misses).  Eviction is least-recently-used.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise PlanError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[tuple, InferencePlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, model, rate, fold_rescale: bool = True
            ) -> InferencePlan:
        """The cached plan for ``(model, rate)``, compiling on miss.

        ``rate`` may be a scalar or a :class:`SliceProfile`; the cache
        key is the canonical profile fingerprint.
        """
        profile = as_profile(rate)
        key = (id(model), profile.fingerprint(), bool(fold_rescale))
        plan = self._entries.get(key)
        if plan is not None and plan.model is model and plan.is_valid():
            self._entries.move_to_end(key)
            self.hits += 1
            if obs.enabled():
                obs.count("plan_cache_hits_total")
            return plan
        if plan is not None:
            del self._entries[key]
            self.invalidations += 1
            if obs.enabled():
                obs.count("plan_cache_invalidations_total")
        self.misses += 1
        if obs.enabled():
            obs.count("plan_cache_misses_total")
        plan = compile_plan(model, profile, fold_rescale)
        if obs.enabled():
            obs.count("plan_compiles_total", kind=type(model).__name__)
        self._entries[key] = plan
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            if obs.enabled():
                obs.count("plan_cache_evictions_total")
        if obs.enabled():
            self._observe_size()
        return plan

    def profile_keys(self) -> int:
        """Number of distinct profile fingerprints currently cached."""
        return len({key[1] for key in self._entries})

    def _observe_size(self) -> None:
        obs.gauge("plan_cache_size", len(self._entries))
        obs.gauge("plan_cache_profile_keys", self.profile_keys())

    def invalidate(self, model=None) -> int:
        """Drop entries for ``model`` (all entries if None); returns count."""
        if model is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            keys = [k for k, plan in self._entries.items()
                    if plan.model is model]
            for key in keys:
                del self._entries[key]
            dropped = len(keys)
        self.invalidations += dropped
        if obs.enabled():
            if dropped:
                obs.count("plan_cache_invalidations_total", amount=dropped)
            self._observe_size()
        return dropped

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = self.misses = self.invalidations = self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (f"PlanCache(size={len(self._entries)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")


_SHARED_CACHE = PlanCache()


def shared_cache() -> PlanCache:
    """The process-wide default plan cache."""
    return _SHARED_CACHE


def get_plan(model, rate, cache: PlanCache | None = None
             ) -> InferencePlan:
    """Convenience: fetch/compile a plan through ``cache`` (shared default)."""
    return (cache if cache is not None else _SHARED_CACHE).get(model, rate)
