"""Resumable compiled plans: run narrow, retain intermediates, widen.

A :class:`~repro.slicing.plans.InferencePlan` answers once at one
profile.  A :class:`ResumablePlan` answers at a *narrow* profile and
keeps what the paper's Sec. 3.5 block decomposition needs to upgrade
that answer later: per slice point it retains the layer input, the
pre-activation tensor (the raw ``x W^T`` product, before bias/rescale),
and the post-activation output.  :meth:`ResumablePlan.widen` then moves
the plan to a wider (pointwise-nested, Eq. 2) profile by computing only
the cross-term blocks ``B xb``, ``C xa`` and ``D xb`` per layer —
falling back to recompute-from-intermediates where reuse cannot be
justified — instead of re-running the model from scratch.

Two widening modes exist because the paper's reuse is an approximation:

* **exact mode** (the default): the widened output is *bitwise* equal to
  compiling and running a fresh :class:`ResumablePlan` at the target
  profile.  BLAS GEMMs cannot deliver that guarantee — kernel selection
  (and hence the K-accumulation order of an output element) varies with
  the output shape, so the same columns computed inside a narrower or
  wider product can differ in the last bit.  The resumable path
  therefore computes its dense products with :func:`_cgemm`, a
  canonical fixed-order accumulation whose every output element depends
  only on its own input row and weight row — making column extension
  *and* row subsetting reproducible by construction.  Exact mode then
  reuses cached work only where a step's input is bitwise unchanged and
  the step merely gained output columns; everything downstream of the
  first changed activation is recomputed from the retained
  intermediates with the same canonical arithmetic a from-scratch
  resumable plan uses.
* **approximate mode** (``exact=False``): the paper's Sec. 3.5 rule —
  keep the cached base product ``ya`` even though the widened input
  would perturb it, and spend only the analytic
  ``batch * (wb_out*wb_in - wa_out*wa_in)`` multiply-adds per dense
  layer.  The serving cascade defaults to exact mode (bit-identical
  escalations are what make its traces deterministic); approximate
  mode is the cheaper paper-faithful option for callers that accept
  tolerance-level drift.

Execution mirrors the live sliced forward's operation order (matmul,
then bias, then the *unfolded* ``full_in/active_in`` rescale, then the
activation), which keeps the from-scratch resumable pass numerically
aligned with ``compile_plan(model, profile, fold_rescale=False)`` for
dense chains (equal to float tolerance; the canonical GEMM's
accumulation order differs from BLAS, so not bitwise).  Recurrent
cells keep the rescale unfolded for the same reason, so their cached
per-gate input projections stay reusable across hidden widths.

Plans validate against parameter mutation exactly like
:class:`~repro.slicing.plans.InferencePlan`: any ``Parameter`` version
bump after construction makes :meth:`run`/:meth:`widen` raise
:class:`~repro.errors.PlanError` rather than resume from stale
intermediates.

FLOPs accounting: every ``run``/``widen`` records per-node spent vs
from-scratch multiply-adds (:attr:`last_report`), and
:meth:`flops_saved` totals the reuse over the plan's lifetime — the
number the cascade's ``cascade_flops_saved_total`` counter exports.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import PlanError, SliceRateError
from ..nn.attention import causal_mask, softmax_eval
from ..nn.dropout import Dropout
from ..nn.embedding import Embedding
from ..nn.norm import layer_norm_eval
from .layers import SlicedConv2d, SlicedGroupNorm, SlicedLinear
from .plans import (
    AvgPoolStep,
    ConvStep,
    GlobalAvgPoolStep,
    GroupNormStep,
    MaxPoolStep,
    _log_softmax,
    _recurrent_scale,
    _sigmoid,
)
from .profile import SliceProfile, as_profile, named_slice_points
from .recurrent import SlicedLSTM

__all__ = [
    "ResumablePlan",
    "compile_resumable",
    "pointwise_nested",
    "scratch_madds",
]


def _f32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float32)


def _cgemm(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Canonical ``x @ w.T`` for ``(M, K) x (N, K)`` float32 operands.

    Fixed left-to-right axpy accumulation, vectorized across the batch:
    ``out[:, j] = ((x[:, 0] * w[j, 0]) + x[:, 1] * w[j, 1]) + ...``.
    Every output element depends only on its own input row and weight
    row, so computing extra columns (N growth) or a row subset (M
    shrink) reproduces the remaining elements bit for bit — the
    property exact-mode widening and :meth:`ResumablePlan.subset` are
    built on, and one BLAS GEMMs do *not* provide (kernel choice, and
    with it the K summation order, varies with the output shape).
    """
    out = np.empty((x.shape[0], w.shape[0]), dtype=np.float32)
    for j, row in enumerate(w):
        acc = x[:, 0] * row[0]
        for k in range(1, row.shape[0]):
            acc += x[:, k] * row[k]
        out[:, j] = acc
    return out


def pointwise_nested(model, narrow, wide) -> bool:
    """True if ``narrow`` <= ``wide`` at every slice point of ``model``.

    This is the Eq. 2 prefix-nesting condition under which widening is
    well defined: every layer's active prefix under ``narrow`` must be a
    prefix of its active prefix under ``wide``.  Grouped slice points
    (attention heads, group norms) compare after snapping to their group
    grid: two rates that round to the same head count activate the same
    prefix, so they nest even when the raw rates are ordered the other
    way.
    """
    from .profile import slice_granularity, snap_rate

    narrow, wide = as_profile(narrow), as_profile(wide)
    eps = 1e-12
    if narrow.rate_for(None) > wide.rate_for(None) + eps:
        return False
    granularity = slice_granularity(model)
    for name, _ in named_slice_points(model):
        low, high = narrow.rate_for(name), wide.rate_for(name)
        groups = granularity.get(name, 1)
        if groups > 1:
            if snap_rate(low, groups) > snap_rate(high, groups):
                return False
        elif low > high + eps:
            return False
    return True


# ----------------------------------------------------------------------
# Nodes: stateful resumable steps
# ----------------------------------------------------------------------
class _Node:
    """One resumable step; holds the retained intermediates after a run.

    ``run`` executes from scratch at a profile; ``widen`` moves the
    cached state to a wider profile.  Both return
    ``(y, changed, spent, full)`` where ``changed`` says whether the
    output *prefix values* differ from the cached ones (width growth is
    visible to the next node through the array shape), ``spent`` is the
    multiply-adds actually executed and ``full`` the from-scratch cost
    of this node at the target profile.
    """

    name = "step"
    #: attribute names of retained ndarrays, row-sliceable on axis 0
    #: (overridden by sequence nodes whose batch axis differs).
    _cached = ()

    def run(self, x, profile):
        raise NotImplementedError

    def widen(self, x, profile, changed_in, exact):
        raise NotImplementedError

    def take_rows(self, rows) -> None:
        """Restrict the retained intermediates to ``rows`` (batch axis)."""
        for attr in self._cached:
            value = getattr(self, attr, None)
            if value is not None:
                setattr(self, attr, value[rows])


class _LinearNode(_Node):
    """A :class:`SlicedLinear` with retained input/raw/output tensors."""

    _cached = ("x", "raw", "y")

    def __init__(self, layer: SlicedLinear, relu: bool = False):
        self.layer = layer
        self.relu = bool(relu)
        self.name = layer.slice_point
        self.x = self.raw = self.y = None
        self.in_w = self.out_w = 0

    # -- helpers ---------------------------------------------------------
    def _out_width(self, profile: SliceProfile) -> int:
        layer = self.layer
        if not layer.slice_output:
            return layer.out_features
        return layer.out_partition.width_for(
            profile.rate_for(layer.slice_point))

    def _scale(self, in_w: int) -> float:
        layer = self.layer
        if layer.rescale and layer.slice_input and in_w != layer.in_features:
            return layer.in_features / in_w
        return 1.0

    def _post(self, raw: np.ndarray, out_lo: int, out_hi: int,
              in_w: int) -> np.ndarray:
        """Bias + unfolded rescale + activation, live-forward op order."""
        layer = self.layer
        y = raw.copy()
        if layer.bias is not None:
            y += _f32(layer.bias.data[out_lo:out_hi])
        scale = self._scale(in_w)
        if scale != 1.0:
            y *= scale
        if self.relu:
            np.maximum(y, 0.0, out=y)
        return y

    def _full(self, batch: int, in_w: int, out_w: int) -> int:
        return batch * out_w * in_w

    # -- execution -------------------------------------------------------
    def run(self, x, profile):
        out_w = self._out_width(profile)
        in_w = x.shape[-1]
        raw = _cgemm(x, _f32(self.layer.weight.data[:out_w, :in_w]))
        y = self._post(raw, 0, out_w, in_w)
        self.x, self.raw, self.y = x, raw, y
        self.in_w, self.out_w = in_w, out_w
        full = self._full(x.shape[0], in_w, out_w)
        return y, True, full, full

    def widen(self, x, profile, changed_in, exact):
        in_old, out_old = self.in_w, self.out_w
        in_new = x.shape[-1]
        out_new = self._out_width(profile)
        if in_new < in_old or out_new < out_old:
            raise SliceRateError(
                f"{self.name}: widen() target is narrower than the "
                f"cached profile ({in_new}x{out_new} < {in_old}x{out_old})")
        batch = x.shape[0]
        full = self._full(batch, in_new, out_new)
        weight = self.layer.weight.data
        clean = not changed_in and in_new == in_old

        if clean and out_new == out_old:
            # Untouched layer: the cached output is the answer.
            return self.y, False, 0, full
        if exact and clean:
            # Output-only growth on a bitwise-identical input: under the
            # canonical GEMM each output column is an independent
            # fixed-order accumulation, so the cached prefix extends
            # bitwise and only the new columns are computed.
            raw_new = _cgemm(x, _f32(weight[out_old:out_new, :in_new]))
            y_new = self._post(raw_new, out_old, out_new, in_new)
            self.raw = np.concatenate([self.raw, raw_new], axis=-1)
            self.y = np.concatenate([self.y, y_new], axis=-1)
            self.x, self.in_w, self.out_w = x, in_new, out_new
            spent = batch * (out_new - out_old) * in_new
            return self.y, False, spent, full
        if exact:
            # The input changed (values or width): recompute from the
            # intermediates with from-scratch arithmetic.
            y, _, spent, full = self.run(x, profile)
            return y, True, spent, full

        # Paper mode (Sec. 3.5): keep the cached base product ya and add
        # only the cross-term blocks B xb / C xa / D xb.
        x_a = x[..., :in_old]
        x_b = x[..., in_old:in_new]
        base = self.raw
        if in_new > in_old:
            base = base + _cgemm(x_b, _f32(weight[:out_old,
                                                  in_old:in_new]))
        if out_new > out_old:
            lower = _cgemm(x_a, _f32(weight[out_old:out_new, :in_old]))
            if in_new > in_old:
                lower = lower + _cgemm(
                    x_b, _f32(weight[out_old:out_new, in_old:in_new]))
            raw = np.concatenate([base, lower], axis=-1)
        else:
            raw = base if base is not self.raw else base.copy()
        y = self._post(raw, 0, out_new, in_new)
        self.x, self.raw, self.y = x, raw, y
        self.in_w, self.out_w = in_new, out_new
        spent = batch * (out_new * in_new - out_old * in_old)
        return y, True, spent, full


class _EmbeddingNode(_Node):
    """Unsliced embedding: its output never changes across profiles."""

    _cached = ("y",)
    name = "embedding"

    def __init__(self, layer: Embedding):
        self.layer = layer
        self.tokens = None
        self.y = None

    def run(self, tokens, profile):
        idx = np.asarray(tokens)
        if idx.dtype.kind not in "iu":
            raise PlanError("embedding node expects integer token ids")
        self.tokens = idx
        self.y = _f32(self.layer.weight.data)[idx]
        return self.y, True, 0, 0

    def widen(self, tokens, profile, changed_in, exact):
        return self.y, False, 0, 0

    def take_rows(self, rows) -> None:
        # Token ids are (T, B); activations (T, B, E) — batch axis 1.
        self.tokens = self.tokens[:, rows]
        self.y = self.y[:, rows]


class _LSTMNode(_Node):
    """A sliced LSTM stack retaining per-cell input projections.

    The per-gate input projections ``X W_ih^T`` over the whole sequence
    are the only part of a recurrent layer that survives a width change
    bitwise: the hidden trajectory (and the rescale factor) depend on
    the hidden width, so the recurrence itself is always recomputed from
    the retained intermediates — this is the resume-or-recompute
    fallback the dense cross-term rule cannot cover.  Both widening
    modes share it.
    """

    _GATES = ("i", "f", "g", "o")

    def __init__(self, lstm: SlicedLSTM):
        self.lstm = lstm
        self.name = "lstm"
        # Per cell: {"x", "ip", "out", "in_w", "hidden"}.
        self.cells: list[dict] = [dict() for _ in lstm.cells]

    def _packed_ih(self, cell, lo: int, hi: int, in_w: int) -> np.ndarray:
        return _f32(np.concatenate([
            getattr(cell, f"w_ih_{g}").data[lo:hi, :in_w]
            for g in self._GATES]))

    def _input_projection(self, cell, x, lo: int, hi: int) -> np.ndarray:
        """``(T, B, 4*(hi-lo))`` raw per-gate input projections."""
        steps, batch, in_w = x.shape
        packed = self._packed_ih(cell, lo, hi, in_w)
        flat = _cgemm(x.reshape(steps * batch, in_w), packed)
        return flat.reshape(steps, batch, -1)

    @staticmethod
    def _graft(ip_old: np.ndarray, ip_new: np.ndarray, h_old: int,
               h_new: int) -> np.ndarray:
        """Interleave cached and freshly-extended per-gate blocks."""
        parts = []
        grown = h_new - h_old
        for g in range(4):
            parts.append(ip_old[..., g * h_old:(g + 1) * h_old])
            parts.append(ip_new[..., g * grown:(g + 1) * grown])
        return np.concatenate(parts, axis=-1)

    def _recur(self, cell, ip: np.ndarray, hidden: int,
               scale: float | None) -> np.ndarray:
        """Run the recurrence over cached input projections."""
        steps, batch = ip.shape[0], ip.shape[1]
        whh_t = _f32(np.concatenate([
            getattr(cell, f"w_hh_{g}").data[:hidden, :hidden]
            for g in self._GATES]).T)
        bias = _f32(np.concatenate([
            getattr(cell, f"bias_{g}").data[:hidden] for g in self._GATES]))
        h = np.zeros((batch, hidden), dtype=np.float32)
        c = np.zeros_like(h)
        out = np.empty((steps, batch, hidden), dtype=np.float32)
        for t in range(steps):
            pre = (ip[t] + h @ whh_t) + bias
            if scale is not None:
                pre = pre * scale
            i = _sigmoid(pre[:, :hidden])
            f = _sigmoid(pre[:, hidden:2 * hidden])
            g = np.tanh(pre[:, 2 * hidden:3 * hidden])
            o = _sigmoid(pre[:, 3 * hidden:])
            c = f * c + i * g
            h = o * np.tanh(c)
            out[t] = h
        return out

    def _run_cell(self, cell, state: dict, x, hidden: int
                  ) -> tuple[np.ndarray, int]:
        ip = self._input_projection(cell, x, 0, hidden)
        scale = self._scale_for(cell, x.shape[-1], hidden)
        out = self._recur(cell, ip, hidden, scale)
        state.update(x=x, ip=ip, out=out, in_w=x.shape[-1], hidden=hidden)
        steps, batch = x.shape[0], x.shape[1]
        cost = steps * batch * 4 * hidden * (x.shape[-1] + hidden)
        return out, cost

    @staticmethod
    def _scale_for(cell, in_w: int, hidden: int) -> float | None:
        scale = _recurrent_scale(cell, in_w, hidden)
        return None if scale == 1.0 else scale

    def _cell_cost(self, x_shape, in_w: int, hidden: int) -> int:
        steps, batch = x_shape[0], x_shape[1]
        return steps * batch * 4 * hidden * (in_w + hidden)

    def run(self, x, profile):
        total = 0
        for cell, state in zip(self.lstm.cells, self.cells):
            hidden = cell.partition.width_for(
                profile.rate_for(cell.slice_point))
            x, cost = self._run_cell(cell, state, x, hidden)
            total += cost
        return x, True, total, total

    def widen(self, x, profile, changed_in, exact):
        spent = full = 0
        changed = changed_in
        for cell, state in zip(self.lstm.cells, self.cells):
            hidden = cell.partition.width_for(
                profile.rate_for(cell.slice_point))
            h_old, in_old = state["hidden"], state["in_w"]
            in_new = x.shape[-1]
            cost = self._cell_cost(x.shape, in_new, hidden)
            full += cost
            clean = not changed and in_new == in_old
            if clean and hidden == h_old:
                x = state["out"]
                continue
            if clean:
                # Same input sequence, wider hidden state: extend the
                # cached per-gate projections by the new rows, then
                # replay the recurrence (the trajectory and the rescale
                # both depend on the hidden width, so it cannot be
                # resumed mid-sequence).
                ip_new = self._input_projection(cell, x, h_old, hidden)
                ip = self._graft(state["ip"], ip_new, h_old, hidden)
                scale = self._scale_for(cell, in_new, hidden)
                out = self._recur(cell, ip, hidden, scale)
                state.update(ip=ip, out=out, hidden=hidden)
                steps, batch = x.shape[0], x.shape[1]
                spent += steps * batch * 4 * (
                    (hidden - h_old) * in_new + hidden * hidden)
            else:
                # Input changed: full recompute from the new sequence.
                out, cost = self._run_cell(cell, state, x, hidden)
                spent += cost
            x = out
            changed = True
        return x, changed, spent, full

    def take_rows(self, rows) -> None:
        for state in self.cells:
            for key in ("x", "ip", "out"):
                state[key] = state[key][:, rows]


class _ConvNode(_Node):
    """A sliced convolution; reuse is output-channel extension only."""

    _cached = ("x", "y")

    def __init__(self, layer: SlicedConv2d):
        self.layer = layer
        self.name = layer.slice_point
        self.x = self.y = None
        self.in_w = self.out_w = 0

    def _step(self, lo: int, hi: int, in_w: int) -> ConvStep:
        layer = self.layer
        bias = None if layer.bias is None else layer.bias.data[lo:hi]
        return ConvStep(layer.weight.data[lo:hi, :in_w], bias,
                        stride=layer.stride, padding=layer.padding)

    def _channels(self, x, lo: int, hi: int, in_w: int) -> np.ndarray:
        """Canonical per-channel execution of output channels [lo, hi).

        Each output channel is one independent row of the im2col GEMM;
        computing channels one at a time makes the result of a channel
        independent of how many siblings run alongside it, so a later
        channel extension reproduces the cached block bit for bit
        (block-wise ConvStep calls would not: the GEMM kernel — and the
        contraction order — can change with the output width).
        """
        parts = [np.asarray(self._step(c, c + 1, in_w)(x)).copy()
                 for c in range(lo, hi)]
        return np.concatenate(parts, axis=1)

    def _full(self, x, out_w: int) -> int:
        kh, kw = self.layer.kernel_size
        p, s = int(self.layer.padding), int(self.layer.stride)
        h_out = (x.shape[2] + 2 * p - kh) // s + 1
        w_out = (x.shape[3] + 2 * p - kw) // s + 1
        return x.shape[0] * out_w * x.shape[1] * kh * kw * h_out * w_out

    def run(self, x, profile):
        rate = profile.rate_for(self.layer.slice_point)
        out_w = self.layer.active_out_channels(rate)
        in_w = x.shape[1]
        y = self._channels(x, 0, out_w, in_w)
        self.x, self.y = x, y
        self.in_w, self.out_w = in_w, out_w
        full = self._full(x, out_w)
        return y, True, full, full

    def widen(self, x, profile, changed_in, exact):
        rate = profile.rate_for(self.layer.slice_point)
        out_new = self.layer.active_out_channels(rate)
        in_new = x.shape[1]
        if in_new < self.in_w or out_new < self.out_w:
            raise SliceRateError(
                f"{self.name}: widen() target is narrower than cached")
        full = self._full(x, out_new)
        clean = not changed_in and in_new == self.in_w
        if clean and out_new == self.out_w:
            return self.y, False, 0, full
        if clean:
            # New output channels only, computed with the same canonical
            # per-channel arithmetic run() uses: bitwise extension.
            extra = self._channels(x, self.out_w, out_new, in_new)
            self.y = np.concatenate([self.y, extra], axis=1)
            spent = self._full(x, out_new - self.out_w)
            self.x, self.in_w, self.out_w = x, in_new, out_new
            return self.y, False, spent, full
        y, _, spent, full = self.run(x, profile)
        return y, True, spent, full


class _GroupNormNode(_Node):
    """Per-group normalization; groups are independent, cost is tiny.

    Recomputed whenever anything upstream moved (a norm is far cheaper
    than the convolutions around it); reused verbatim when the input is
    untouched.
    """

    _cached = ("x", "y")

    def __init__(self, layer: SlicedGroupNorm, relu: bool = False):
        self.layer = layer
        self.relu = bool(relu)
        self.name = "norm"
        self.x = self.y = None

    def _step(self, channels: int) -> GroupNormStep:
        layer = self.layer
        return GroupNormStep(layer.weight.data[:channels],
                             layer.bias.data[:channels],
                             layer.group_size, layer.eps, relu=self.relu)

    def run(self, x, profile):
        y = np.asarray(self._step(x.shape[1])(x))
        self.x, self.y = x, y
        return y, True, 0, 0

    def widen(self, x, profile, changed_in, exact):
        if not changed_in and self.x is not None \
                and x.shape == self.x.shape:
            return self.y, False, 0, 0
        y, _, _, _ = self.run(x, profile)
        return y, True, 0, 0


class _PoolNode(_Node):
    """Max/avg/global pooling; stateless apart from the cached output."""

    _cached = ("x", "y")

    def __init__(self, step, name: str):
        self.step = step
        self.name = name
        self.x = self.y = None

    def run(self, x, profile):
        y = np.asarray(self.step(x))
        self.x, self.y = x, y
        return y, True, 0, 0

    def widen(self, x, profile, changed_in, exact):
        if not changed_in and self.x is not None \
                and x.shape == self.x.shape:
            return self.y, False, 0, 0
        return self.run(x, profile)


class _LogSoftmaxNode(_Node):
    _cached = ("x", "y")
    name = "log_softmax"

    def __init__(self):
        self.x = self.y = None

    def run(self, x, profile):
        y = _log_softmax(x)
        self.x, self.y = x, y
        return y, True, 0, 0

    def widen(self, x, profile, changed_in, exact):
        if not changed_in and self.x is not None \
                and x.shape == self.x.shape:
            return self.y, False, 0, 0
        return self.run(x, profile)


class _SlicedEmbeddingNode(_Node):
    """Width-controller embedding: widening appends gathered columns.

    Gathering rows of a column prefix equals the column prefix of the
    full gather, so column extension is bitwise by construction — no
    canonical GEMM needed.
    """

    _cached = ("y",)

    def __init__(self, layer: Embedding):
        self.layer = layer
        self.name = getattr(layer, "slice_point", "embedding")
        self.tokens = None
        self.y = None
        self.width = 0

    def _width(self, profile: SliceProfile) -> int:
        return self.layer.active_width(
            profile.rate_for(self.layer.slice_point))

    def run(self, tokens, profile):
        idx = np.asarray(tokens)
        if idx.dtype.kind not in "iu":
            raise PlanError("embedding node expects integer token ids")
        width = self._width(profile)
        self.tokens = idx
        self.y = _f32(self.layer.weight.data[:, :width])[idx]
        self.width = width
        return self.y, True, 0, 0

    def widen(self, tokens, profile, changed_in, exact):
        width = self._width(profile)
        if width < self.width:
            raise SliceRateError(
                f"{self.name}: widen() target is narrower than cached")
        if width == self.width:
            return self.y, False, 0, 0
        extra = _f32(self.layer.weight.data[:, self.width:width])
        self.y = np.concatenate([self.y, extra[self.tokens]], axis=-1)
        self.width = width
        return self.y, False, 0, 0

    def take_rows(self, rows) -> None:
        self.tokens = self.tokens[:, rows]
        self.y = self.y[:, rows]


class _PosNode(_Node):
    """Learned positional add; elementwise, so prefix-preserving."""

    _cached = ("x", "y")
    name = "pos"

    def __init__(self, layer):
        self.layer = layer
        self.x = self.y = None

    def run(self, x, profile):
        d = x.shape[-1]
        t = x.shape[1] if self.layer.batch_first else x.shape[0]
        table = _f32(self.layer.weight.data[:t, :d])
        if not self.layer.batch_first:
            table = table.reshape(t, 1, d)
        y = x + table
        self.x, self.y = x, y
        return y, True, 0, 0

    def widen(self, x, profile, changed_in, exact):
        if not changed_in and self.x is not None and x.shape == self.x.shape:
            return self.y, False, 0, 0
        y, _, _, _ = self.run(x, profile)
        # The add is elementwise: growing the width leaves the cached
        # prefix columns bit-identical, so upstream cleanliness carries.
        return y, changed_in, 0, 0


class _LayerNormNode(_Node):
    """LayerNorm over the arriving width; stats couple every feature,
    so any width growth invalidates the cached output (cost ~0 anyway).
    """

    _cached = ("x", "y")
    name = "norm"

    def __init__(self, layer):
        self.layer = layer
        self.x = self.y = None

    def run(self, x, profile):
        d = x.shape[-1]
        y = layer_norm_eval(x, _f32(self.layer.weight.data[:d]),
                            _f32(self.layer.bias.data[:d]), self.layer.eps)
        self.x, self.y = x, y
        return y, True, 0, 0

    def widen(self, x, profile, changed_in, exact):
        if not changed_in and self.x is not None and x.shape == self.x.shape:
            return self.y, False, 0, 0
        y, _, _, _ = self.run(x, profile)
        return y, True, 0, 0


class _MeanPoolNode(_Node):
    """Sequence mean pool (encoder readout); recomputed when upstream
    moved — summation order may shift with the feature width, so width
    growth conservatively marks the output changed.
    """

    _cached = ("x", "y")
    name = "mean_pool"

    def __init__(self, axis: int = 1):
        self.axis = axis
        self.x = self.y = None

    def run(self, x, profile):
        count = x.shape[self.axis]
        y = x.sum(axis=self.axis) * (1.0 / count)
        self.x, self.y = x, y
        return y, True, 0, 0

    def widen(self, x, profile, changed_in, exact):
        if not changed_in and self.x is not None and x.shape == self.x.shape:
            return self.y, False, 0, 0
        y, _, _, _ = self.run(x, profile)
        return y, True, 0, 0


class _AttentionBlockNode(_Node):
    """Residual pre-norm attention: ``x + proj(attn(ln(x)))``.

    The reuse unit is the *head*: run() computes scores, softmax and
    context per ``(batch, head)`` 2-d slice with the canonical GEMM, so
    each head's result is independent of how many heads run beside it.
    Widening on a clean input then appends whole head blocks — the
    softmax stages cannot use the dense cross-term rule, so the new
    heads are recomputed per head (reported as ``"per-head recompute"``
    in ``last_report``).  The output projection's input columns grow
    with the heads, so exact mode recomputes it in full with the
    canonical GEMM while approximate mode keeps the cached base product
    and adds only the new heads' cross-term (the Sec. 3.5 rule).
    """

    _cached = ("xc", "hx_flat", "ctx", "raw", "y")

    def __init__(self, ln, attn):
        self.ln = ln
        self.attn = attn
        self.name = attn.slice_point
        self.xc = self.hx_flat = self.ctx = self.raw = self.y = None
        self.heads = self.d = 0
        self.last_note = None

    # -- helpers ---------------------------------------------------------
    def _active_heads(self, profile: SliceProfile) -> int:
        return self.attn.active_heads(
            profile.rate_for(self.attn.slice_point))

    def _full(self, b: int, t: int, d: int, heads: int) -> int:
        dk = self.attn.head_dim
        inner = heads * dk
        return b * t * 3 * inner * d + 2 * b * heads * t * t * dk \
            + b * t * d * inner

    def _head_qkv(self, hx_flat, head: int, d: int, b: int, t: int):
        """Head ``head``'s q, k, v as ``(b, t, d_k)`` arrays."""
        dk = self.attn.head_dim
        weight = self.attn.qkv_weight.data
        bias = self.attn.qkv_bias.data
        base = 3 * dk * head
        parts = []
        for j in range(3):
            lo, hi = base + j * dk, base + (j + 1) * dk
            raw = _cgemm(hx_flat, _f32(weight[lo:hi, :d]))
            parts.append((raw + _f32(bias[lo:hi])).reshape(b, t, dk))
        return parts

    def _head_ctx(self, q, k, v, mask, b: int, t: int) -> np.ndarray:
        dk = self.attn.head_dim
        scale = 1.0 / math.sqrt(dk)
        ctx = np.empty((b, t, dk), dtype=np.float32)
        for i in range(b):
            scores = _cgemm(q[i], k[i]) * scale
            if mask is not None:
                scores = scores + mask
            probs = softmax_eval(scores)
            ctx[i] = _cgemm(probs, np.ascontiguousarray(v[i].T))
        return ctx

    def _project(self, ctx: np.ndarray, d: int) -> np.ndarray:
        """Full output projection + residual from the context blocks."""
        b, heads, t, dk = ctx.shape
        flat = np.ascontiguousarray(
            np.moveaxis(ctx, 1, 2)).reshape(b * t, heads * dk)
        self.raw = _cgemm(flat, _f32(self.attn.proj_weight.data[:d,
                                                                :heads * dk]))
        out = self.raw + _f32(self.attn.proj_bias.data[:d])
        return self.xc + out.reshape(b, t, d)

    def _layout(self, y: np.ndarray) -> np.ndarray:
        if self.attn.batch_first:
            return y
        return np.ascontiguousarray(np.swapaxes(y, 0, 1))

    # -- execution -------------------------------------------------------
    def run(self, x, profile):
        self.last_note = None
        attn = self.attn
        heads = self._active_heads(profile)
        xc = x if attn.batch_first \
            else np.ascontiguousarray(np.swapaxes(x, 0, 1))
        b, t, d = xc.shape
        hx = layer_norm_eval(xc, _f32(self.ln.weight.data[:d]),
                             _f32(self.ln.bias.data[:d]), self.ln.eps)
        self.xc = xc
        self.hx_flat = _f32(hx.reshape(b * t, d))
        mask = causal_mask(t) if attn.causal else None
        ctx = np.empty((b, heads, t, attn.head_dim), dtype=np.float32)
        for h in range(heads):
            q, k, v = self._head_qkv(self.hx_flat, h, d, b, t)
            ctx[:, h] = self._head_ctx(q, k, v, mask, b, t)
        self.ctx = ctx
        y = self._layout(self._project(ctx, d))
        self.y = y
        self.heads, self.d = heads, d
        full = self._full(b, t, d, heads)
        return y, True, full, full

    def widen(self, x, profile, changed_in, exact):
        self.last_note = None
        attn = self.attn
        dk = attn.head_dim
        heads_new = self._active_heads(profile)
        d_new = x.shape[-1]
        if heads_new < self.heads or d_new < self.d:
            raise SliceRateError(
                f"{self.name}: widen() target is narrower than cached")
        b, _, t, _ = self.ctx.shape
        full = self._full(b, t, d_new, heads_new)
        clean = not changed_in and d_new == self.d
        if clean and heads_new == self.heads:
            return self.y, False, 0, full
        if clean:
            grown = heads_new - self.heads
            mask = causal_mask(t) if attn.causal else None
            extra = np.empty((b, grown, t, dk), dtype=np.float32)
            for h in range(self.heads, heads_new):
                q, k, v = self._head_qkv(self.hx_flat, h, d_new, b, t)
                extra[:, h - self.heads] = self._head_ctx(q, k, v, mask, b, t)
            ctx = np.concatenate([self.ctx, extra], axis=1)
            spent = b * t * 3 * grown * dk * d_new \
                + 2 * b * grown * t * t * dk
            if exact:
                # proj input columns grew: canonical full recompute keeps
                # the guarantee (every column's accumulation is fixed).
                y = self._layout(self._project(ctx, d_new))
                spent += b * t * d_new * heads_new * dk
            else:
                flat = np.ascontiguousarray(
                    np.moveaxis(extra, 1, 2)).reshape(b * t, grown * dk)
                self.raw = self.raw + _cgemm(
                    flat, _f32(attn.proj_weight.data[
                        :d_new, self.heads * dk:heads_new * dk]))
                out = self.raw + _f32(attn.proj_bias.data[:d_new])
                y = self._layout(self.xc + out.reshape(b, t, d_new))
                spent += b * t * d_new * grown * dk
            self.ctx, self.y = ctx, y
            self.heads = heads_new
            self.last_note = "per-head recompute"
            return y, True, spent, full
        # Residual width or input values changed: the LayerNorm stats
        # moved, so nothing cached survives — recompute from scratch.
        y, _, spent, full = self.run(x, profile)
        self.last_note = "full recompute"
        return y, True, spent, full


class _FFNBlockNode(_Node):
    """Residual pre-norm FFN: ``x + fc2(relu(fc1(ln(x))))``.

    Clean-input widening appends FFN columns: fc1's new output columns
    are independent canonical accumulations (bitwise extension), the
    relu is elementwise, and fc2 — whose *input* columns grew — is
    recomputed in full under exact mode or cross-termed under the
    paper's approximate rule.
    """

    _cached = ("x", "hx_flat", "hidden", "raw", "y")

    def __init__(self, ln, fc1: SlicedLinear, fc2: SlicedLinear):
        self.ln = ln
        self.fc1 = fc1
        self.fc2 = fc2
        self.name = fc1.slice_point
        self.x = self.hx_flat = self.hidden = self.raw = self.y = None
        self.d = self.f = 0

    def _widths(self, profile: SliceProfile, d: int) -> int:
        ffn = self.fc1.out_partition.width_for(
            profile.rate_for(self.fc1.slice_point))
        fc2_out = self.fc2.out_partition.width_for(
            profile.rate_for(self.fc2.slice_point))
        if fc2_out != d:
            raise PlanError(
                f"profile gives fc2 width {fc2_out} but the residual "
                f"stream is {d} wide; fc2 must stay at the default rate")
        return ffn

    def _hidden_cols(self, lo: int, hi: int, d: int) -> np.ndarray:
        raw = _cgemm(self.hx_flat, _f32(self.fc1.weight.data[lo:hi, :d]))
        return np.maximum(raw + _f32(self.fc1.bias.data[lo:hi]), 0.0)

    def _finish(self, hidden: np.ndarray, raw: np.ndarray, d: int,
                shape) -> np.ndarray:
        out = raw + _f32(self.fc2.bias.data[:d])
        return self.x + out.reshape(shape)

    def run(self, x, profile):
        d = x.shape[-1]
        ffn = self._widths(profile, d)
        hx = layer_norm_eval(x, _f32(self.ln.weight.data[:d]),
                             _f32(self.ln.bias.data[:d]), self.ln.eps)
        self.x = x
        self.hx_flat = _f32(hx.reshape(-1, d))
        self.hidden = self._hidden_cols(0, ffn, d)
        self.raw = _cgemm(self.hidden, _f32(self.fc2.weight.data[:d, :ffn]))
        y = self._finish(self.hidden, self.raw, d, x.shape)
        self.y = y
        self.d, self.f = d, ffn
        rows = self.hx_flat.shape[0]
        full = 2 * rows * ffn * d
        return y, True, full, full

    def widen(self, x, profile, changed_in, exact):
        d_new = x.shape[-1]
        ffn_new = self._widths(profile, d_new)
        if ffn_new < self.f or d_new < self.d:
            raise SliceRateError(
                f"{self.name}: widen() target is narrower than cached")
        rows = int(np.prod(x.shape[:-1]))
        full = 2 * rows * ffn_new * d_new
        clean = not changed_in and d_new == self.d
        if clean and ffn_new == self.f:
            return self.y, False, 0, full
        if clean:
            grown = self._hidden_cols(self.f, ffn_new, d_new)
            hidden = np.concatenate([self.hidden, grown], axis=-1)
            spent = rows * (ffn_new - self.f) * d_new
            if exact:
                raw = _cgemm(hidden, _f32(self.fc2.weight.data[:d_new,
                                                               :ffn_new]))
                spent += rows * d_new * ffn_new
            else:
                raw = self.raw + _cgemm(
                    grown, _f32(self.fc2.weight.data[:d_new,
                                                     self.f:ffn_new]))
                spent += rows * d_new * (ffn_new - self.f)
            self.hidden, self.raw = hidden, raw
            y = self._finish(hidden, raw, d_new, x.shape)
            self.y, self.f = y, ffn_new
            return y, True, spent, full
        y, _, spent, full = self.run(x, profile)
        return y, True, spent, full


# ----------------------------------------------------------------------
# Model builders
# ----------------------------------------------------------------------
def _build_mlp(model) -> tuple[list[_Node], str]:
    nodes: list[_Node] = [_LinearNode(layer, relu=True)
                          for layer in model.layers]
    nodes.append(_LinearNode(model.head, relu=False))
    return nodes, "chain"


def _build_nnlm(model) -> tuple[list[_Node], str]:
    nodes: list[_Node] = [
        _EmbeddingNode(model.embedding),
        _LSTMNode(model.lstm),
        _LinearNode(model.decoder, relu=False),
        _LogSoftmaxNode(),
    ]
    return nodes, "nnlm"


def _build_vgg(model) -> tuple[list[_Node], str]:
    from ..nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

    nodes: list[_Node] = []
    for kind, op in model._ops:
        if kind == "conv":
            nodes.append(_ConvNode(op))
        elif kind == "norm":
            if not isinstance(op, SlicedGroupNorm):
                raise PlanError(
                    f"no resumable compiler for norm {type(op).__name__}")
            nodes.append(_GroupNormNode(op, relu=True))
        elif isinstance(op, MaxPool2d):
            nodes.append(_PoolNode(MaxPoolStep(op.kernel_size), "pool"))
        elif isinstance(op, AvgPool2d):
            nodes.append(_PoolNode(AvgPoolStep(op.kernel_size), "pool"))
        elif isinstance(op, GlobalAvgPool2d):
            nodes.append(_PoolNode(GlobalAvgPoolStep(), "pool"))
        elif isinstance(op, Dropout):
            continue
        else:
            raise PlanError(
                f"no resumable compiler for op {type(op).__name__}")
    nodes.append(_PoolNode(GlobalAvgPoolStep(), "global_pool"))
    nodes.append(_LinearNode(model.head, relu=False))
    return nodes, "chain"


def _build_transformer_blocks(model) -> list[_Node]:
    nodes: list[_Node] = []
    for block in model.blocks:
        nodes.append(_AttentionBlockNode(block.ln1, block.attn))
        nodes.append(_FFNBlockNode(block.ln2, block.fc1, block.fc2))
    return nodes


def _build_transformer_encoder(model) -> tuple[list[_Node], str]:
    nodes: list[_Node] = [
        _LinearNode(model.patch_embed, relu=False),
        _PosNode(model.pos),
        *_build_transformer_blocks(model),
        _LayerNormNode(model.ln_f),
        _MeanPoolNode(axis=1),
        _LinearNode(model.head, relu=False),
        _LogSoftmaxNode(),
    ]
    return nodes, "tenc"


def _build_transformer_lm(model) -> tuple[list[_Node], str]:
    nodes: list[_Node] = [
        _SlicedEmbeddingNode(model.embedding),
        _PosNode(model.pos),
        *_build_transformer_blocks(model),
        _LayerNormNode(model.ln_f),
        _LinearNode(model.decoder, relu=False),
        _LogSoftmaxNode(),
    ]
    return nodes, "tlm"


def _find_builder(model):
    from ..models.mlp import MLP
    from ..models.nnlm import NNLM
    from ..models.transformer import TransformerEncoder, TransformerLM
    from ..models.vgg import SlicedVGG

    if isinstance(model, MLP):
        return _build_mlp
    if isinstance(model, NNLM):
        return _build_nnlm
    if isinstance(model, SlicedVGG):
        return _build_vgg
    if isinstance(model, TransformerEncoder):
        return _build_transformer_encoder
    if isinstance(model, TransformerLM):
        return _build_transformer_lm
    return None


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
class ResumablePlan:
    """A compiled plan that retains intermediates and widens in place.

    Parameters
    ----------
    model:
        A supported sliced model (MLP, NNLM, SlicedVGG,
        TransformerEncoder, TransformerLM).
    profile:
        The starting (narrow) slice profile; scalar rates coerce.
    exact:
        Default widening mode.  ``True`` guarantees bitwise equality
        with a from-scratch plan at the target profile; ``False`` uses
        the paper's approximate cross-term reuse (cheaper, the serving
        default for cascades).

    Typical lifecycle::

        plan = ResumablePlan(model, 0.25, exact=False)
        logits = plan.run(batch)            # narrow answer
        logits = plan.widen(0.5)            # upgraded answer, cross-terms only
        saved = plan.flops_saved()          # reuse accounting
    """

    def __init__(self, model, profile, exact: bool = True):
        builder = _find_builder(model)
        if builder is None:
            raise PlanError(
                f"no resumable compiler for model {type(model).__name__}")
        self.model = model
        self.profile = as_profile(profile)
        self.exact = bool(exact)
        self.nodes, self._kind = builder(model)
        self._sources = [(p, p.version) for p in model.parameters()]
        self._inputs = None
        self._output = None
        self._shape = None  # (steps, batch) for the NNLM runner
        self.history: list[SliceProfile] = []
        self.spent_madds = 0
        self.scratch_madds = 0
        self.last_report: list[dict] = []

    # -- staleness -------------------------------------------------------
    def is_valid(self) -> bool:
        """True while no parameter mutated since construction."""
        current = self.model.parameters()
        if len(current) != len(self._sources):
            return False
        return all(param is source and param.version == version
                   for param, (source, version)
                   in zip(current, self._sources))

    def _check_valid(self, what: str) -> None:
        if not self.is_valid():
            raise PlanError(
                f"cannot {what}: the model's parameters mutated after this "
                f"ResumablePlan was compiled; retained intermediates are "
                f"stale — rebuild the plan")

    # -- execution -------------------------------------------------------
    def run(self, inputs) -> np.ndarray:
        """Execute from scratch at the starting profile; retain state."""
        self._check_valid("run")
        x = np.asarray(inputs)
        if x.dtype.kind not in "iu":
            x = _f32(x)
        self._inputs = x
        out, report = self._execute(x, self.profile, from_scratch=True)
        self.history = [self.profile]
        self._tally(report)
        self._output = out
        return out

    def widen(self, to_profile, exact: bool | None = None) -> np.ndarray:
        """Move the plan to ``to_profile``, reusing retained work."""
        self._check_valid("widen")
        if self._inputs is None:
            raise PlanError("widen() before run(): nothing to resume")
        target = as_profile(to_profile)
        if not pointwise_nested(self.model, self.profile, target):
            raise SliceRateError(
                f"widen() target {target!r} is not pointwise >= the "
                f"current profile {self.profile!r}")
        exact = self.exact if exact is None else bool(exact)
        out, report = self._execute(self._inputs, target,
                                    from_scratch=False, exact=exact)
        self.profile = target
        self.history.append(target)
        self._tally(report)
        self._output = out
        return out

    @property
    def output(self) -> np.ndarray | None:
        """The most recent answer (None before the first run)."""
        return self._output

    # -- accounting ------------------------------------------------------
    def flops_saved(self) -> int:
        """Multiply-adds avoided versus from-scratch execution so far."""
        return self.scratch_madds - self.spent_madds

    def _tally(self, report: list[dict]) -> None:
        self.last_report = report
        self.spent_madds += sum(r["spent"] for r in report)
        self.scratch_madds += sum(r["full"] for r in report)

    # -- row restriction -------------------------------------------------
    def subset(self, rows) -> "ResumablePlan":
        """A new plan whose retained state covers only ``rows``.

        Under the canonical GEMM every output element depends only on
        its own input row, so widening the subset gives exactly the
        rows the full-batch widen would — this is how the cascade
        escalates only the low-margin requests without recomputing
        their narrow pass.
        """
        if self._inputs is None:
            raise PlanError("subset() before run(): nothing to restrict")
        if self._kind in ("nnlm", "tenc", "tlm"):
            raise PlanError(
                "subset() is not supported for sequence and transformer "
                "models: their decoders flatten time and batch together "
                "(and attention mixes every position)")
        rows = np.asarray(rows)
        clone = ResumablePlan.__new__(ResumablePlan)
        clone.model = self.model
        clone.profile = self.profile
        clone.exact = self.exact
        clone._kind = self._kind
        clone._sources = self._sources
        clone.nodes = []
        builder = _find_builder(self.model)
        clone.nodes, _ = builder(self.model)
        for mine, theirs in zip(self.nodes, clone.nodes):
            theirs.__dict__.update({
                k: v for k, v in mine.__dict__.items()
                if k not in ("layer", "lstm", "step")})
            theirs.take_rows(rows)
        clone._inputs = self._inputs[rows]
        clone._output = None if self._output is None \
            else self._output[rows]
        clone._shape = None
        clone.history = list(self.history)
        clone.spent_madds = 0
        clone.scratch_madds = 0
        clone.last_report = []
        return clone

    # -- internals -------------------------------------------------------
    def _execute(self, x, profile: SliceProfile, from_scratch: bool,
                 exact: bool = True):
        report: list[dict] = []
        if self._kind == "nnlm":
            return self._execute_nnlm(x, profile, from_scratch, exact)
        if self._kind in ("tenc", "tlm"):
            return self._execute_transformer(x, profile, from_scratch, exact)
        changed = False
        for node in self.nodes:
            if from_scratch:
                x, changed, spent, full = node.run(x, profile)
            else:
                x, changed, spent, full = node.widen(x, profile,
                                                     changed, exact)
            report.append({"name": node.name, "spent": spent,
                           "full": full, "saved": full - spent,
                           "reused": not changed})
        return x, report

    def _execute_nnlm(self, tokens, profile: SliceProfile,
                      from_scratch: bool, exact: bool):
        embed, lstm, decoder, softmax = self.nodes
        steps, batch = tokens.shape
        report: list[dict] = []

        def apply(node, value, changed):
            if from_scratch:
                out, chg, spent, full = node.run(value, profile)
            else:
                out, chg, spent, full = node.widen(value, profile,
                                                   changed, exact)
            report.append({"name": node.name, "spent": spent,
                           "full": full, "saved": full - spent,
                           "reused": not chg})
            return out, chg

        x, changed = apply(embed, tokens, False)
        hidden, changed = apply(lstm, x, changed)
        flat = hidden.reshape(steps * batch, hidden.shape[-1])
        logits, changed = apply(decoder, flat, changed)
        out, _ = apply(softmax, logits, changed)
        self._shape = (steps, batch)
        return out.reshape(steps, batch, -1), report

    def _execute_transformer(self, x, profile: SliceProfile,
                             from_scratch: bool, exact: bool):
        report: list[dict] = []

        def apply(node, value, changed):
            if from_scratch:
                out, chg, spent, full = node.run(value, profile)
            else:
                out, chg, spent, full = node.widen(value, profile,
                                                   changed, exact)
            entry = {"name": node.name, "spent": spent, "full": full,
                     "saved": full - spent, "reused": not chg}
            note = getattr(node, "last_note", None)
            if note:
                entry["note"] = note
            report.append(entry)
            return out, chg

        nodes = self.nodes
        if self._kind == "tenc":
            patches = self.model.patchify(x)
            b, t, patch_dim = patches.shape
            h, changed = apply(nodes[0], _f32(patches.reshape(b * t,
                                                              patch_dim)),
                               False)
            h = h.reshape(b, t, -1)
        else:
            steps, batch = x.shape
            h, changed = apply(nodes[0], x, False)
        h, changed = apply(nodes[1], h, changed)
        tail = 4 if self._kind == "tenc" else 3
        for node in nodes[2:len(nodes) - tail]:
            h, changed = apply(node, h, changed)
        h, changed = apply(nodes[-tail], h, changed)  # final LayerNorm
        if self._kind == "tenc":
            h, changed = apply(nodes[-3], h, changed)  # mean pool
            logits, changed = apply(nodes[-2], h, changed)
            out, _ = apply(nodes[-1], logits, changed)
            return out, report
        flat = h.reshape(steps * batch, h.shape[-1])
        logits, changed = apply(nodes[-2], flat, changed)
        out, _ = apply(nodes[-1], logits, changed)
        self._shape = (steps, batch)
        return out.reshape(steps, batch, -1), report

    def __repr__(self) -> str:
        return (f"ResumablePlan({type(self.model).__name__}, "
                f"profile={self.profile.label()}, "
                f"exact={self.exact}, widens={max(len(self.history) - 1, 0)})")


def compile_resumable(model, profile, exact: bool = True) -> ResumablePlan:
    """Build a :class:`ResumablePlan` (mirrors :func:`compile_plan`)."""
    return ResumablePlan(model, profile, exact=exact)


def scratch_madds(model, profile, batch: int = 1) -> int:
    """Analytic from-scratch multiply-adds of one pass at ``profile``.

    Counts the GEMM-shaped work (dense and recurrent projections,
    convolution contractions) the resumable plan accounts — the same
    units :meth:`ResumablePlan.flops_saved` reports, so cascade cost
    models and the serving-time FLOPs fractions agree with the measured
    counters.  Supported for the dense models (MLP); sequence and conv
    models derive their cost from an executed plan's report instead.
    """
    from ..models.mlp import MLP

    profile = as_profile(profile)
    if not isinstance(model, MLP):
        raise PlanError(
            f"scratch_madds supports MLP models, got {type(model).__name__}")
    total = 0
    width = model.in_features
    for layer in list(model.layers) + [model.head]:
        rate = profile.rate_for(layer.slice_point)
        out_w = layer.out_partition.width_for(rate) if layer.slice_output \
            else layer.out_features
        total += batch * out_w * width
        width = out_w
    return total
