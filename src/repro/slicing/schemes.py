"""Slice-rate scheduling schemes (Sec. 3.4 of the paper).

A scheme decides which subnets are trained on each batch, i.e. which list
of slice rates Algorithm 1 iterates over.  The paper evaluates three
families (Table 1):

* **Random scheduling** — sample ``k`` rates from a categorical
  distribution over the valid rates (uniform, or weighted to emphasise the
  base and full networks).
* **Static scheduling** — train *every* valid rate on every batch
  (what SlimmableNet does).
* **Random-static scheduling** — always include the base and/or full
  network, plus randomly sampled middle rates (``R-min``, ``R-max``,
  ``R-min-max``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SchedulingError
from .context import validate_rate
from .profile import SliceProfile, as_profile


def _normalize_rates(rates: Sequence[float]) -> list[float]:
    cleaned = sorted({validate_rate(r) for r in rates})
    if not cleaned:
        raise SchedulingError("a scheduling scheme needs at least one rate")
    return cleaned


class Scheme:
    """Base class: a scheme yields a list of slice rates per training pass."""

    def __init__(self, rates: Sequence[float]):
        self.rates = _normalize_rates(rates)

    @property
    def min_rate(self) -> float:
        return self.rates[0]

    @property
    def max_rate(self) -> float:
        return self.rates[-1]

    def sample(self, rng: np.random.Generator) -> list[float]:
        """Rates to train on the next batch, in execution order."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rates={self.rates})"


class FixedScheme(Scheme):
    """Always train one fixed rate — the conventional-training baseline.

    ``FixedScheme([1.0])`` is the paper's ``r1 = 1.0 (single model)``
    baseline; a narrower fixed rate trains an individual small model for
    the fixed-ensemble baseline.
    """

    def __init__(self, rate: float = 1.0):
        super().__init__([rate])

    def sample(self, rng: np.random.Generator) -> list[float]:
        return [self.rates[0]]


class StaticScheme(Scheme):
    """Train every candidate rate on every batch (cost grows linearly)."""

    def sample(self, rng: np.random.Generator) -> list[float]:
        return list(reversed(self.rates))


class RandomScheme(Scheme):
    """Sample ``num_samples`` rates per batch from a categorical distribution.

    Parameters
    ----------
    rates:
        Candidate slice rates.
    probabilities:
        Sampling probability of each rate, aligned with the *sorted*
        ``rates``.  ``None`` means uniform.  The paper's ``R-weighted``
        scheme puts extra mass on the base and full networks, e.g.
        ``(0.5, 0.125, 0.125, 0.25)`` ordered from the largest rate in the
        paper's notation; here probabilities align with ascending rates.
    num_samples:
        ``k`` in ``R-uniform-k`` / ``R-weighted-k``.
    """

    def __init__(self, rates: Sequence[float],
                 probabilities: Sequence[float] | None = None,
                 num_samples: int = 1):
        super().__init__(rates)
        if num_samples < 1:
            raise SchedulingError("num_samples must be >= 1")
        self.num_samples = num_samples
        if probabilities is None:
            self.probabilities = np.full(len(self.rates), 1.0 / len(self.rates))
        else:
            probs = np.asarray(probabilities, dtype=np.float64)
            if probs.shape != (len(self.rates),):
                raise SchedulingError(
                    f"{len(self.rates)} rates need {len(self.rates)} "
                    f"probabilities, got {probs.shape}"
                )
            if (probs < 0).any() or probs.sum() <= 0:
                raise SchedulingError("probabilities must be non-negative")
            self.probabilities = probs / probs.sum()

    @classmethod
    def weighted_min_max(cls, rates: Sequence[float], min_weight: float = 0.25,
                         max_weight: float = 0.5, num_samples: int = 1
                         ) -> "RandomScheme":
        """The paper's R-weighted distribution: extra mass on base and full."""
        rates = _normalize_rates(rates)
        if len(rates) == 1:
            return cls(rates, num_samples=num_samples)
        middle = (1.0 - min_weight - max_weight) / max(len(rates) - 2, 1)
        if middle < 0:
            raise SchedulingError("min_weight + max_weight must be <= 1")
        probs = [middle] * len(rates)
        probs[0] = min_weight
        probs[-1] = max_weight
        return cls(rates, probabilities=probs, num_samples=num_samples)

    def sample(self, rng: np.random.Generator) -> list[float]:
        picks = rng.choice(
            len(self.rates), size=self.num_samples, replace=False
            if self.num_samples <= len(self.rates) else True,
            p=self.probabilities,
        )
        chosen = sorted((self.rates[i] for i in np.atleast_1d(picks)),
                        reverse=True)
        return chosen


class RandomStaticScheme(Scheme):
    """Statically include base/full rates, randomly sample the rest.

    ``include_min``/``include_max`` give ``R-min``, ``R-max`` and
    ``R-min-max``; ``num_random`` middle rates are drawn uniformly from the
    remaining candidates on each batch.
    """

    def __init__(self, rates: Sequence[float], include_min: bool = True,
                 include_max: bool = True, num_random: int = 1):
        super().__init__(rates)
        if not include_min and not include_max:
            raise SchedulingError(
                "RandomStaticScheme needs include_min or include_max; "
                "use RandomScheme for fully random scheduling"
            )
        if num_random < 0:
            raise SchedulingError("num_random must be >= 0")
        self.include_min = include_min
        self.include_max = include_max
        self.num_random = num_random
        self._pool = [
            r for r in self.rates
            if not (include_min and r == self.min_rate)
            and not (include_max and r == self.max_rate)
        ]

    def sample(self, rng: np.random.Generator) -> list[float]:
        chosen = set()
        if self.include_max:
            chosen.add(self.max_rate)
        if self.include_min:
            chosen.add(self.min_rate)
        pool = self._pool
        if pool and self.num_random:
            k = min(self.num_random, len(pool))
            picks = rng.choice(len(pool), size=k, replace=False)
            chosen.update(pool[i] for i in np.atleast_1d(picks))
        return sorted(chosen, reverse=True)


class ProfileScheme(Scheme):
    """Schedule explicit slice profiles — per-layer Algorithm 1.

    Entries may be floats (coerced to
    :class:`~repro.slicing.profile.UniformProfile`), mappings, or
    :class:`~repro.slicing.profile.SliceProfile` objects; duplicates
    (by canonical fingerprint) collapse.  Like
    :class:`StaticScheme`, every profile trains on every batch, widest
    (by mean rate) first — unless ``num_random`` limits each batch to
    the widest and narrowest profiles plus that many randomly drawn
    middles (the random-static pattern generalized to profiles).
    """

    def __init__(self, profiles: Sequence, num_random: int | None = None):
        entries = [as_profile(p) for p in profiles]
        if not entries:
            raise SchedulingError(
                "a scheduling scheme needs at least one profile")
        unique: dict[str, SliceProfile] = {
            p.fingerprint(): p for p in entries}
        self.rates: list[SliceProfile] = sorted(unique.values())
        if num_random is not None and num_random < 0:
            raise SchedulingError("num_random must be >= 0")
        self.num_random = num_random

    def sample(self, rng: np.random.Generator) -> list[SliceProfile]:
        if self.num_random is None or len(self.rates) <= 2:
            return list(reversed(self.rates))
        chosen = [self.rates[-1]]
        middles = self.rates[1:-1]
        if middles and self.num_random:
            k = min(self.num_random, len(middles))
            picks = rng.choice(len(middles), size=k, replace=False)
            for i in sorted(np.atleast_1d(picks), reverse=True):
                chosen.append(middles[i])
        chosen.append(self.rates[0])
        return chosen
