"""Eq. 8: parameterizing random scheduling with a continuous distribution.

Sec. 3.4 of the paper defines random scheduling by sampling the slice
rate from a continuous distribution ``F`` (e.g. uniform or normal) and
shows (Eq. 8) how ``F`` induces a categorical distribution over the valid
rate grid: each grid point ``r_i`` receives the probability mass of
``F`` between the midpoints of its neighbouring rates,

    p(r_1) = F((r_1 + r_2) / 2)
    p(r_i) = F((r_i + r_{i+1}) / 2) - F((r_{i-1} + r_i) / 2)
    p(r_G) = 1 - F((r_{G-1} + r_G) / 2).

:func:`categorical_from_cdf` implements exactly that, and
:class:`ContinuousScheme` wraps the result as a scheduling scheme, so any
distribution with a CDF can drive Algorithm 1.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from ..errors import SchedulingError
from .schemes import RandomScheme


def categorical_from_cdf(rates: Sequence[float],
                         cdf: Callable[[float], float]) -> list[float]:
    """Discretize a continuous CDF onto a rate grid per Eq. 8."""
    rates = sorted(float(r) for r in set(rates))
    if not rates:
        raise SchedulingError("need at least one rate")
    if len(rates) == 1:
        return [1.0]
    probabilities = []
    for i, rate in enumerate(rates):
        upper = 1.0 if i == len(rates) - 1 \
            else cdf((rate + rates[i + 1]) / 2.0)
        lower = 0.0 if i == 0 else cdf((rates[i - 1] + rate) / 2.0)
        mass = upper - lower
        if mass < -1e-9:
            raise SchedulingError("cdf is not monotone on the rate grid")
        probabilities.append(max(mass, 0.0))
    total = sum(probabilities)
    if total <= 0:
        raise SchedulingError("cdf places no mass on the rate grid")
    return [p / total for p in probabilities]


def uniform_cdf(low: float = 0.0, high: float = 1.0) -> Callable[[float], float]:
    """CDF of U(low, high)."""
    if high <= low:
        raise SchedulingError("uniform requires high > low")

    def cdf(x: float) -> float:
        if x <= low:
            return 0.0
        if x >= high:
            return 1.0
        return (x - low) / (high - low)

    return cdf


def normal_cdf(mean: float, std: float) -> Callable[[float], float]:
    """CDF of N(mean, std^2) via the error function."""
    if std <= 0:
        raise SchedulingError("normal requires std > 0")

    def cdf(x: float) -> float:
        return 0.5 * (1.0 + math.erf((x - mean) / (std * math.sqrt(2.0))))

    return cdf


def exponential_decay_cdf(scale: float) -> Callable[[float], float]:
    """CDF of an Exp(scale) variable reflected to favour *large* rates.

    ``P(rate <= x) = exp(-(1 - x) / scale)`` up to normalization on
    [0, 1]: most mass near rate 1.0, decaying toward the base network —
    a useful prior when the full model dominates the serving mix.
    """
    if scale <= 0:
        raise SchedulingError("exponential requires scale > 0")
    floor = math.exp(-1.0 / scale)

    def cdf(x: float) -> float:
        if x <= 0.0:
            return 0.0
        if x >= 1.0:
            return 1.0
        return (math.exp(-(1.0 - x) / scale) - floor) / (1.0 - floor)

    return cdf


class ContinuousScheme(RandomScheme):
    """Random scheduling driven by a continuous distribution (Eq. 8).

    Parameters
    ----------
    rates:
        The valid rate grid.
    cdf:
        Cumulative distribution function of the sampling distribution
        ``F`` over rates, e.g. :func:`uniform_cdf`, :func:`normal_cdf`.
    num_samples:
        Rates scheduled per training pass.
    """

    def __init__(self, rates: Sequence[float],
                 cdf: Callable[[float], float], num_samples: int = 1):
        probabilities = categorical_from_cdf(sorted(set(rates)), cdf)
        super().__init__(rates, probabilities=probabilities,
                         num_samples=num_samples)

    @classmethod
    def uniform(cls, rates: Sequence[float],
                num_samples: int = 1) -> "ContinuousScheme":
        """F = U(min rate, max rate): Eq. 8's uniform example."""
        rates = sorted(set(float(r) for r in rates))
        return cls(rates, uniform_cdf(rates[0], rates[-1]),
                   num_samples=num_samples)

    @classmethod
    def normal(cls, rates: Sequence[float], mean: float, std: float,
               num_samples: int = 1) -> "ContinuousScheme":
        """F = N(mean, std^2): Eq. 8's normal example."""
        return cls(rates, normal_cdf(mean, std), num_samples=num_samples)
