"""The global slice context.

The paper shares a single slice rate ``r`` across every sliced layer of
the network (Sec. 3.1).  We generalize that to an ambient
:class:`~repro.slicing.profile.SliceProfile` stack: entering
``with slice_rate(r):`` pushes the degenerate ``UniformProfile(r)``
(bitwise-identical to the old scalar path), while
``with slice_profile(p):`` activates a per-layer profile.  Each sliced
module resolves its own rate from the top of the stack via
:func:`resolve_rate` using its registered slice-point name.  The default
profile is ``UniformProfile(1.0)`` (the full network), so untouched code
paths always see the full model.
"""

from __future__ import annotations

import contextlib

from .profile import SliceProfile, UniformProfile, as_profile, validate_rate

__all__ = [
    "validate_rate",
    "current_rate",
    "current_profile",
    "resolve_rate",
    "slice_rate",
    "slice_profile",
    "SliceContext",
]

_PROFILE_STACK: list[SliceProfile] = [UniformProfile(1.0)]


def current_profile() -> SliceProfile:
    """The slice profile active for the current forward pass."""
    return _PROFILE_STACK[-1]


def current_rate() -> float:
    """The scalar slice rate active for the current forward pass.

    For a uniform profile this is the shared rate; for a per-layer
    profile it is the profile's default rate (what an *unnamed* slice
    point would resolve to).  Sliced modules use :func:`resolve_rate`
    instead so per-layer overrides apply.
    """
    return _PROFILE_STACK[-1].rate_for(None)


def resolve_rate(module=None) -> float:
    """The slice rate the active profile assigns to ``module``.

    Resolution uses the module's ``slice_point`` name (registered at
    construction; see :func:`repro.slicing.profile.assign_slice_points`).
    Modules without a slice point — and ``module=None`` — resolve to the
    profile's default rate.
    """
    slice_point = getattr(module, "slice_point", None)
    return _PROFILE_STACK[-1].rate_for(slice_point)


@contextlib.contextmanager
def slice_profile(profile):
    """Run the enclosed block under the given slice profile.

    Accepts a :class:`SliceProfile`, a float rate, or a
    ``{slice_point: rate}`` mapping (coerced via
    :func:`repro.slicing.profile.as_profile`).

    Example
    -------
    >>> with slice_profile(LayerProfile({"fc0": 1.0}, default=0.5)):
    ...     logits = model(images)   # wide first layer, narrow rest
    """
    _PROFILE_STACK.append(as_profile(profile))
    try:
        yield
    finally:
        _PROFILE_STACK.pop()


def slice_rate(rate: float):
    """Run the enclosed block with the given uniform slice rate.

    Sugar for ``slice_profile(UniformProfile(rate))`` — the paper's
    shared-scalar semantics, preserved bitwise.

    Example
    -------
    >>> with slice_rate(0.5):
    ...     logits = model(images)   # half-width subnet, ~25% FLOPs
    """
    return slice_profile(UniformProfile(rate))


class SliceContext:
    """Object-style access to the slice context.

    Thin aliases of the module-level API (one source of truth); provided
    for callers that prefer passing a handle around explicitly.
    """

    get = staticmethod(current_rate)
    get_profile = staticmethod(current_profile)
    at = staticmethod(slice_rate)
    at_profile = staticmethod(slice_profile)
