"""The global slice-rate context.

The paper shares a single slice rate ``r`` across every sliced layer of the
network (Sec. 3.1).  We model that with a process-wide stack: entering
``with slice_rate(r):`` makes every sliced layer inside the block use the
corresponding sub-layer.  The default rate is 1.0 (the full network), so
untouched code paths always see the full model.
"""

from __future__ import annotations

import contextlib

from ..errors import SliceRateError

_RATE_STACK: list[float] = [1.0]


def validate_rate(rate: float) -> float:
    """Check ``rate`` is a valid slice rate and return it as a float."""
    rate = float(rate)
    if not 0.0 < rate <= 1.0:
        raise SliceRateError(f"slice rate must be in (0, 1], got {rate}")
    return rate


def current_rate() -> float:
    """The slice rate active for the current forward pass."""
    return _RATE_STACK[-1]


@contextlib.contextmanager
def slice_rate(rate: float):
    """Run the enclosed block with the given slice rate.

    Example
    -------
    >>> with slice_rate(0.5):
    ...     logits = model(images)   # half-width subnet, ~25% FLOPs
    """
    _RATE_STACK.append(validate_rate(rate))
    try:
        yield
    finally:
        _RATE_STACK.pop()


class SliceContext:
    """Object-style access to the slice-rate context.

    Functionally equivalent to :func:`slice_rate` / :func:`current_rate`;
    provided for callers that prefer passing a handle around explicitly.
    """

    @staticmethod
    def get() -> float:
        return current_rate()

    @staticmethod
    def at(rate: float):
        return slice_rate(rate)
