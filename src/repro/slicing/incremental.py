"""Incremental widening: reuse of base-subnet computation (Sec. 3.5).

Because a wider sub-layer's transform decomposes in block form

    [ y~a ]   [ Wa  B ]   [ xa ]   [ Wa xa + B xb ]
    [ yb  ] = [ C   D ] * [ xb ] = [ C xa  + D xb ]

the paper observes that ``y~a ~= ya`` (the already-computed narrow output),
so widening from rate ``r_a`` to ``r_b`` only needs the cross terms
``B xb``, ``C xa`` and ``D xb``.  For a dense layer this cuts the extra
cost of the wider pass from ``(wb_out * wb_in)`` multiplies to
``(wb_out * wb_in - wa_out * wa_in)``.

This module implements that inference-time optimization for chains of
:class:`~repro.slicing.layers.SlicedLinear` layers, in both an *exact*
mode (recompute ``y~a`` exactly, still skipping nothing) and the paper's
*approximate* mode (reuse ``ya``), so the approximation error and the
FLOPs saved can both be measured (ablation A-inc in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..errors import SliceRateError
from .layers import SlicedLinear


class IncrementalLinearState:
    """Cached activations of one sliced dense layer at the narrow rate."""

    def __init__(self, x_narrow: np.ndarray, y_narrow: np.ndarray):
        self.x_narrow = x_narrow
        self.y_narrow = y_narrow


def forward_narrow(layer: SlicedLinear, x: np.ndarray, rate: float
                   ) -> tuple[np.ndarray, IncrementalLinearState]:
    """Run the narrow pass of ``layer`` and cache what widening will reuse."""
    out_w = (layer.out_partition.width_for(rate)
             if layer.slice_output else layer.out_features)
    in_w = x.shape[-1]
    weight = layer.weight.data[:out_w, :in_w]
    y = x @ weight.T
    if layer.bias is not None:
        y = y + layer.bias.data[:out_w]
    if layer.rescale and layer.slice_input and in_w != layer.in_features:
        y = y * (layer.in_features / in_w)
    return y, IncrementalLinearState(x, y)


def widen(layer: SlicedLinear, x_wide: np.ndarray, rate_wide: float,
          state: IncrementalLinearState, exact: bool = False
          ) -> tuple[np.ndarray, int]:
    """Widen a cached narrow pass to ``rate_wide``.

    Parameters
    ----------
    x_wide:
        The widened input (its leading columns must equal the cached
        narrow input when ``exact=False`` is to be a good approximation).
    exact:
        If True, recompute the base block product instead of reusing the
        cached ``ya`` (used to measure the approximation error).

    Returns
    -------
    (y_wide, multiplies):
        The widened output and the number of multiply-adds actually spent,
        for comparison against the full-recompute cost.
    """
    in_narrow = state.x_narrow.shape[-1]
    out_narrow = state.y_narrow.shape[-1]
    in_wide = x_wide.shape[-1]
    out_wide = (layer.out_partition.width_for(rate_wide)
                if layer.slice_output else layer.out_features)
    if in_wide < in_narrow or out_wide < out_narrow:
        raise SliceRateError("widen() requires rate_wide >= the cached rate")
    batch = x_wide.shape[0]
    weight = layer.weight.data
    x_a = x_wide[:, :in_narrow]
    x_b = x_wide[:, in_narrow:in_wide]

    if exact:
        base = x_a @ weight[:out_narrow, :in_narrow].T
        spent = batch * out_narrow * in_narrow
    else:
        # Invert forward_narrow's post-processing: it computed
        # (x W^T + b) * scale, so recover the raw product x W^T.
        base = state.y_narrow.copy()
        if layer.rescale and layer.slice_input and in_narrow != layer.in_features:
            base = base / (layer.in_features / in_narrow)
        if layer.bias is not None:
            base = base - layer.bias.data[:out_narrow]
        spent = 0

    # Cross terms: B xb (top-right), C xa and D xb (bottom rows).
    if x_b.shape[-1]:
        base = base + x_b @ weight[:out_narrow, in_narrow:in_wide].T
        spent += batch * out_narrow * (in_wide - in_narrow)
    rows = []
    if out_wide > out_narrow:
        lower = x_a @ weight[out_narrow:out_wide, :in_narrow].T
        spent += batch * (out_wide - out_narrow) * in_narrow
        if x_b.shape[-1]:
            lower = lower + x_b @ weight[out_narrow:out_wide, in_narrow:in_wide].T
            spent += batch * (out_wide - out_narrow) * (in_wide - in_narrow)
        rows.append(lower)
    y = np.concatenate([base] + rows, axis=-1) if rows else base
    if layer.bias is not None:
        y = y + layer.bias.data[:out_wide]
    if layer.rescale and layer.slice_input and in_wide != layer.in_features:
        y = y * (layer.in_features / in_wide)
    return y, spent


def full_cost(layer: SlicedLinear, batch: int, rate: float) -> int:
    """Multiply-adds of a from-scratch pass of ``layer`` at ``rate``."""
    out_w = (layer.out_partition.width_for(rate)
             if layer.slice_output else layer.out_features)
    in_w = layer.in_features
    if layer.slice_input:
        in_w = GroupPartitionCache.for_layer(layer).width_for(rate)
    return batch * out_w * in_w


class GroupPartitionCache:
    """Partition helper mirroring a layer's *input* slicing.

    ``SlicedLinear`` slices its input by whatever width the upstream layer
    produced; for cost accounting we assume the upstream layer uses the
    same group count over ``in_features``.
    """

    _cache: dict[tuple[int, int], object] = {}

    @classmethod
    def for_layer(cls, layer: SlicedLinear):
        from .partition import GroupPartition

        key = (layer.in_features, DEFAULT_IN_GROUPS)
        if key not in cls._cache:
            cls._cache[key] = GroupPartition(
                layer.in_features, min(DEFAULT_IN_GROUPS, layer.in_features)
            )
        return cls._cache[key]


DEFAULT_IN_GROUPS = 8
