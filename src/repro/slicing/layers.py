"""Sliceable layers: dense, convolutional and normalization variants.

Each sliced layer holds the *full* parameter tensors and, on every forward
pass, uses only the prefix selected by the ambient slice rate (see
:mod:`repro.slicing.context`).  Because subnet parameters are literally
prefixes of the full tensors, ``Subnet-r_a`` is contained in ``Subnet-r_b``
whenever ``r_a < r_b`` — the structural constraint of Eq. 2.

Input widths are taken from the incoming activation itself rather than
recomputed from the rate: the previous sliced layer already produced the
correctly sliced activation, and using its width makes layer composition
robust to rounding.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..nn.init import kaiming_normal, ones, zeros
from ..nn.module import Module, Parameter
from ..nn.norm import BatchNorm2d
from ..tensor import Tensor, conv2d
from ..tensor.fused import fused_group_norm
from ..tensor.workspace import active_workspace
from .context import resolve_rate
from .partition import GroupPartition
from .profile import auto_slice_point

DEFAULT_GROUPS = 8


class SlicedLinear(Module):
    """Dense layer whose input/output neuron groups follow the slice rate.

    Parameters
    ----------
    in_features, out_features:
        Full widths.
    slice_input, slice_output:
        Whether each side participates in slicing.  Input layers keep
        ``slice_input=False``; classifier heads keep ``slice_output=False``
        (the paper leaves input and output layers unsliced).
    rescale:
        If True, multiply the output by ``full_in / active_in`` so the
        pre-activation scale is independent of the rate (the "output
        rescaling" used for the NNLM's dense layers).
    num_groups:
        Group count ``G`` for each sliced side.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 slice_input: bool = True, slice_output: bool = True,
                 rescale: bool = False, num_groups: int = DEFAULT_GROUPS,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.slice_input = slice_input
        self.slice_output = slice_output
        self.rescale = rescale
        self.out_partition = GroupPartition(
            out_features, min(num_groups, out_features)
        ) if slice_output else None
        self.in_partition = GroupPartition(
            in_features, min(num_groups, in_features)
        ) if slice_input else None
        self.weight = Parameter(kaiming_normal(rng, (out_features, in_features)))
        self.bias = Parameter(zeros((out_features,))) if bias else None
        self.slice_point = auto_slice_point(self)
        # Components per indivisible slice unit along the output axis.
        # Plain width slicing can cut at any group boundary, so the unit
        # is a single neuron; attention overrides this with head_dim.
        self.slice_group_size = 1

    def active_param_count(self, rate: float) -> int:
        """Parameters resident in memory when deployed at ``rate``."""
        out_w = self.out_partition.width_for(rate) if self.slice_output \
            else self.out_features
        in_w = self.in_partition.width_for(rate) if self.slice_input \
            else self.in_features
        return out_w * in_w + (out_w if self.bias is not None else 0)

    def forward(self, x: Tensor) -> Tensor:
        in_width = x.shape[-1]
        if not self.slice_input and in_width != self.in_features:
            raise ShapeError(
                f"unsliced input expected {self.in_features} features, "
                f"got {in_width}"
            )
        out_width = (
            self.out_partition.width_for(resolve_rate(self))
            if self.slice_output else self.out_features
        )
        weight = self.weight[:out_width, :in_width]
        out = x @ weight.transpose()
        if self.bias is not None:
            out = out + self.bias[:out_width]
        if self.rescale and self.slice_input and in_width != self.in_features:
            out = out * (self.in_features / in_width)
        return out

    def __repr__(self) -> str:
        return (
            f"SlicedLinear({self.in_features}->{self.out_features}, "
            f"in={self.slice_input}, out={self.slice_output})"
        )


class SlicedConv2d(Module):
    """Convolution whose channel groups follow the slice rate (Eq. 4).

    ``slice_input=False`` marks the stem conv (raw-image input);
    ``slice_output=False`` would mark a conv feeding an unsliced consumer.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = False,
                 slice_input: bool = True, slice_output: bool = True,
                 num_groups: int = DEFAULT_GROUPS,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) \
            else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.slice_input = slice_input
        self.slice_output = slice_output
        self.out_partition = GroupPartition(
            out_channels, min(num_groups, out_channels)
        ) if slice_output else None
        self.in_partition = GroupPartition(
            in_channels, min(num_groups, in_channels)
        ) if slice_input else None
        self.weight = Parameter(
            kaiming_normal(rng, (out_channels, in_channels, kh, kw))
        )
        self.bias = Parameter(zeros((out_channels,))) if bias else None
        self.slice_point = auto_slice_point(self)
        self.slice_group_size = 1

    def active_param_count(self, rate: float) -> int:
        """Parameters resident in memory when deployed at ``rate``."""
        out_w = self.active_out_channels(rate)
        in_w = self.in_partition.width_for(rate) if self.slice_input \
            else self.in_channels
        kh, kw = self.kernel_size
        return out_w * in_w * kh * kw + (out_w if self.bias is not None else 0)

    def active_out_channels(self, rate: float | None = None) -> int:
        """Output channels active at ``rate`` (current rate if omitted)."""
        if not self.slice_output:
            return self.out_channels
        rate = resolve_rate(self) if rate is None else rate
        return self.out_partition.width_for(rate)

    def forward(self, x: Tensor) -> Tensor:
        in_width = x.shape[1]
        if not self.slice_input and in_width != self.in_channels:
            raise ShapeError(
                f"unsliced input expected {self.in_channels} channels, "
                f"got {in_width}"
            )
        out_width = self.active_out_channels()
        weight = self.weight[:out_width, :in_width]
        bias = self.bias[:out_width] if self.bias is not None else None
        return conv2d(x, weight, bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"SlicedConv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride})"
        )


class SlicedGroupNorm(Module):
    """Group normalization aligned with the slice groups (Sec. 3.2).

    The normalization groups coincide with the slice groups, so every
    surviving group under any slice rate normalizes over exactly the
    channels it was trained with — no running statistics are needed, which
    is what makes GN the natural normalization for model slicing.
    """

    def __init__(self, num_channels: int, num_groups: int = DEFAULT_GROUPS,
                 eps: float = 1e-5):
        super().__init__()
        num_groups = min(num_groups, num_channels)
        if num_channels % num_groups != 0:
            raise ConfigError(
                f"SlicedGroupNorm needs num_channels ({num_channels}) "
                f"divisible by num_groups ({num_groups})"
            )
        self.num_channels = num_channels
        self.num_groups = num_groups
        self.group_size = num_channels // num_groups
        self.eps = eps
        self.weight = Parameter(ones((num_channels,)))
        self.bias = Parameter(zeros((num_channels,)))
        # The forward is input-width-driven, but deploy / param
        # accounting resolve this norm's own rate by name.
        self.slice_point = auto_slice_point(self)
        # A norm group only survives whole, so it is the slice unit here.
        self.slice_group_size = self.group_size

    def forward(self, x: Tensor) -> Tensor:
        channels = x.shape[1]
        if channels % self.group_size != 0:
            raise ShapeError(
                f"active width {channels} is not a multiple of the "
                f"group size {self.group_size}"
            )
        groups = channels // self.group_size
        if active_workspace() is not None:
            # Training fast path: fused kernel with analytic gradients.
            # The prefix views keep the gradient routed into the full
            # parameters through their __getitem__ backward.
            return fused_group_norm(x, self.weight[:channels],
                                    self.bias[:channels], groups, self.eps)
        batch = x.shape[0]
        spatial = x.shape[2:]
        flat = int(np.prod(spatial, dtype=int)) if spatial else 1
        grouped = x.reshape(batch, groups, self.group_size * flat)
        mean = grouped.mean(axis=2, keepdims=True)
        centered = grouped - mean
        var = (centered * centered).mean(axis=2, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        normed = normed.reshape((batch, channels) + spatial)
        shape = (1, channels) + (1,) * len(spatial)
        gamma = self.weight[:channels].reshape(shape)
        beta = self.bias[:channels].reshape(shape)
        return normed * gamma + beta

    def group_scale_means(self) -> np.ndarray:
        """Mean |gamma| per slice group — the telemetry behind Figure 6."""
        gamma = np.abs(self.weight.data)
        return gamma.reshape(self.num_groups, self.group_size).mean(axis=1)

    def active_param_count(self, rate: float) -> int:
        """Parameters resident in memory when deployed at ``rate``."""
        groups = max(1, min(round(rate * self.num_groups), self.num_groups))
        return 2 * groups * self.group_size


class SlicedBatchNorm2d(Module):
    """Batch norm with a *single* set of running statistics under slicing.

    This is the naive approach the paper argues breaks (Sec. 3.2): the
    running estimates are shared across rates, so the eval-time statistics
    are wrong for every subnet trained at a different width mix.  Kept as
    the ablation baseline.
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(ones((num_features,)))
        self.bias = Parameter(zeros((num_features,)))
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def extra_state(self) -> dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def load_extra_state(self, key: str, value: np.ndarray) -> None:
        if key == "running_mean":
            self.running_mean = value.copy()
        elif key == "running_var":
            self.running_var = value.copy()
        else:
            raise ConfigError(f"SlicedBatchNorm2d has no extra state {key!r}")

    def forward(self, x: Tensor) -> Tensor:
        channels = x.shape[1]
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.running_mean[:channels] = (
                (1 - m) * self.running_mean[:channels]
                + m * mean.data.reshape(-1)
            )
            self.running_var[:channels] = (
                (1 - m) * self.running_var[:channels]
                + m * var.data.reshape(-1)
            )
            normed = centered * ((var + self.eps) ** -0.5)
        else:
            mean = self.running_mean[:channels].reshape(1, channels, 1, 1)
            var = self.running_var[:channels].reshape(1, channels, 1, 1)
            normed = (x - mean) * ((Tensor(var) + self.eps) ** -0.5)
        gamma = self.weight[:channels].reshape(1, channels, 1, 1)
        beta = self.bias[:channels].reshape(1, channels, 1, 1)
        return normed * gamma + beta


class MultiBatchNorm2d(Module):
    """One batch-norm layer per candidate slice rate (SlimmableNet [52]).

    The forward pass dispatches on the current rate to the matching BN
    instance, each of which keeps its own running statistics.  Memory grows
    linearly with the number of candidate rates, which is the cost the
    paper's GN-based solution avoids.
    """

    def __init__(self, num_features: int, rates: list[float],
                 num_groups: int = DEFAULT_GROUPS,
                 eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        if not rates:
            raise ConfigError("MultiBatchNorm2d needs at least one rate")
        self.num_features = num_features
        self.partition = GroupPartition(
            num_features, min(num_groups, num_features)
        )
        self._rate_keys: list[float] = []
        for rate in sorted(set(float(r) for r in rates)):
            key = self._key(rate)
            width = self.partition.width_for(rate)
            self.register_module(f"bn_{key}", BatchNorm2d(
                width, eps=eps, momentum=momentum,
            ))
            self._rate_keys.append(rate)
        self.slice_point = auto_slice_point(self)

    @staticmethod
    def _key(rate: float) -> str:
        return format(rate, ".4f").replace(".", "_")

    def forward(self, x: Tensor) -> Tensor:
        # Dispatches on this layer's resolved rate, which must match one
        # of the configured BN widths: non-uniform profiles must assign
        # the feeding conv and this norm the same rate (or leave both at
        # the default) — each BN instance only knows one width.
        rate = resolve_rate(self)
        best = min(self._rate_keys, key=lambda r: abs(r - rate))
        if abs(best - rate) > 1e-6:
            raise ShapeError(
                f"MultiBatchNorm2d has no BN for rate {rate}; "
                f"configured rates: {self._rate_keys}"
            )
        bn: BatchNorm2d = getattr(self, f"bn_{self._key(best)}")
        if x.shape[1] != bn.num_features:
            raise ShapeError(
                f"rate {rate} BN expects {bn.num_features} channels, "
                f"got {x.shape[1]}"
            )
        return bn(x)
