"""Algorithm 1: training with model slicing.

For each batch the trainer asks the scheduling scheme for a list of slice
rates, runs a forward/backward pass for each corresponding subnet,
*accumulates* the gradients, and applies one optimizer update — exactly the
structure of Algorithm 1 in the paper.

Schemes may schedule scalar rates or per-layer
:class:`~repro.slicing.profile.SliceProfile` objects
(:class:`~repro.slicing.schemes.ProfileScheme`); each scheduled item runs
as one forward/backward under the corresponding ambient profile, so
heterogeneous-width subnets train through the same Algorithm-1 loop.
"""

from __future__ import annotations

import json
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..errors import ConfigError
from ..nn.module import Module
from ..optim import SGD
from ..tensor import Tensor, cross_entropy, no_grad
from ..tensor.workspace import WorkspaceArena, use_workspace
from .context import slice_profile
from .schemes import Scheme


def _rate_key(key):
    """JSON-safe (string) dict key for a scheduled rate or profile.

    Scalar rates (and uniform profiles, which collapse back to their
    float rate) use the float repr — the same string ``json.dumps``
    would coerce a float key to — so mixed rate/profile tables sort and
    serialize cleanly.  Non-uniform profiles use their fingerprint.
    """
    if isinstance(key, (int, float)):
        return repr(float(key))
    if getattr(key, "uniform", False):
        return repr(float(key))
    return key.fingerprint()


class EpochRecord:
    """Per-epoch telemetry: losses and evaluation metrics per slice rate."""

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.train_loss: dict[float, float] = {}
        self.eval_error: dict[float, float] = {}
        self.eval_loss: dict[float, float] = {}
        self.extra: dict[str, object] = {}

    def __repr__(self) -> str:
        return f"EpochRecord(epoch={self.epoch}, eval_error={self.eval_error})"

    def to_dict(self) -> dict:
        """JSON-serializable view: scalar slice-rate keys become their
        float-repr strings, non-uniform profile keys become fingerprint
        strings (see :func:`_rate_key`)."""
        return {
            "epoch": self.epoch,
            "train_loss": {_rate_key(k): v for k, v in self.train_loss.items()},
            "eval_error": {_rate_key(k): v for k, v in self.eval_error.items()},
            "eval_loss": {_rate_key(k): v for k, v in self.eval_loss.items()},
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochRecord":
        """Inverse of :meth:`to_dict`; accepts string rate keys (JSON).

        Keys that don't parse as floats (non-uniform profile
        fingerprints) are kept as strings.
        """
        def parse(key):
            try:
                return float(key)
            except ValueError:
                return key

        record = cls(int(data["epoch"]))
        for field in ("train_loss", "eval_error", "eval_loss"):
            record.__dict__[field] = {
                parse(rate): float(value)
                for rate, value in data.get(field, {}).items()}
        record.extra = dict(data.get("extra", {}))
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class SliceTrainer:
    """Trains a sliceable classification model per Algorithm 1.

    Parameters
    ----------
    model:
        A model built from sliced layers (e.g. :class:`~repro.models.SlicedVGG`).
    scheme:
        The slice-rate scheduling scheme deciding which subnets each batch
        trains.
    optimizer:
        Typically :class:`~repro.optim.SGD`; gradients from all scheduled
        subnets are accumulated before its single ``step()``.
    loss_fn:
        ``loss_fn(logits, targets) -> Tensor``; defaults to cross-entropy.
    rng:
        Generator driving the scheme's sampling.
    fast_path:
        When True (the default) each :meth:`train_batch` runs under a
        pooled :class:`~repro.tensor.workspace.WorkspaceArena`: conv
        im2col/col2im buffers are reused across batches, the unsliced
        input's columns are shared across the scheduled rates, and
        GroupNorm / cross-entropy use fused analytic-gradient kernels.
        Loss values are bitwise identical to the reference path per
        forward; weight trajectories agree to float32 rounding (the fused
        backwards round differently).  Set False to train through the
        plain composed autograd.
    """

    def __init__(self, model: Module, scheme: Scheme, optimizer: SGD,
                 loss_fn: Callable = cross_entropy,
                 rng: np.random.Generator | None = None,
                 fast_path: bool = True):
        if not isinstance(scheme, Scheme):
            raise ConfigError(f"scheme must be a Scheme, got {type(scheme)}")
        self.model = model
        self.scheme = scheme
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.rng = rng if rng is not None else np.random.default_rng()
        self.fast_path = bool(fast_path)
        self.arena = WorkspaceArena() if self.fast_path else None
        self.history: list[EpochRecord] = []

    # ------------------------------------------------------------------
    def train_batch(self, inputs: np.ndarray, targets: np.ndarray
                    ) -> dict[float, float]:
        """One Algorithm-1 step; returns the loss observed per slice rate.

        Gradients from the scheduled subnets are accumulated as in
        Algorithm 1 and then *averaged* over the number of scheduled
        rates.  (The paper's pseudo-code sums; averaging makes the
        effective step size independent of how many subnets a scheduling
        scheme trains per batch, so a single learning rate works for
        every scheme — without it, static scheduling of k rates behaves
        like a k-times larger learning rate and diverges.)
        """
        started = obs.clock_now() if obs.enabled() else None
        self.model.train()
        self.optimizer.zero_grad()
        rates = self.scheme.sample(self.rng)
        # Integer payloads (token ids) go to the model raw — embedding
        # lookups take plain index arrays; everything else is wrapped
        # once, outside the rate loop, so all rates share one array.
        arr = np.asarray(inputs)
        if arr.dtype.kind in "iu":
            model_input, pinned = arr, None
        else:
            model_input = Tensor(arr)
            pinned = model_input.data
        losses: dict[float, float] = {}
        if self.arena is not None:
            self.arena.begin_step(pinned_input=pinned)
            with use_workspace(self.arena):
                for rate in rates:
                    with slice_profile(rate):
                        logits = self.model(model_input)
                        loss = self.loss_fn(logits, targets)
                    loss.backward()
                    losses[rate] = loss.item()
                    self.arena.end_pass()
            self.arena.end_step()
            if started is not None:
                obs.count("train_fast_steps_total")
        else:
            for rate in rates:
                with slice_profile(rate):
                    logits = self.model(model_input)
                    loss = self.loss_fn(logits, targets)
                loss.backward()
                losses[rate] = loss.item()
        if len(rates) > 1:
            inv = 1.0 / len(rates)
            for param in self.optimizer.params:
                if param.grad is not None:
                    param.grad *= inv
        if started is not None:
            obs.gauge("train_grad_norm", self._grad_norm())
        self.optimizer.step()
        if started is not None:
            obs.count("train_steps_total")
            for rate, value in losses.items():
                obs.count("train_rate_scheduled_total", rate=f"{rate:g}")
                obs.gauge("train_loss", value, rate=f"{rate:g}")
            obs.observe("train_step_seconds", obs.clock_now() - started)
        return losses

    def _grad_norm(self) -> float:
        """Global L2 norm of the accumulated (averaged) gradients."""
        total = 0.0
        for param in self.optimizer.params:
            if param.grad is not None:
                flat = param.grad.reshape(-1)
                total += float(np.dot(flat, flat))
        return total ** 0.5

    def train_epoch(self, loader) -> dict[float, float]:
        """Train over an iterable of ``(inputs, targets)`` batches.

        Returns the mean observed loss per slice rate for the epoch.
        """
        sums: dict[float, float] = {}
        counts: dict[float, int] = {}
        for inputs, targets in loader:
            for rate, value in self.train_batch(inputs, targets).items():
                sums[rate] = sums.get(rate, 0.0) + value
                counts[rate] = counts.get(rate, 0) + 1
        return {rate: sums[rate] / counts[rate] for rate in sums}

    # ------------------------------------------------------------------
    def evaluate(self, loader, rates: Sequence[float] | None = None
                 ) -> dict[float, dict[str, float]]:
        """Evaluate the model at each rate; returns error/loss/accuracy."""
        rates = list(rates) if rates is not None else list(self.scheme.rates)
        self.model.eval()
        results: dict[float, dict[str, float]] = {}
        for rate in rates:
            correct = 0
            total = 0
            loss_sum = 0.0
            batches = 0
            with no_grad():
                with slice_profile(rate):
                    for inputs, targets in loader:
                        logits = self.model(Tensor(inputs))
                        loss_sum += self.loss_fn(logits, targets).item()
                        batches += 1
                        pred = logits.data.argmax(axis=1)
                        correct += int((pred == targets).sum())
                        total += len(targets)
            accuracy = correct / total if total else 0.0
            results[rate] = {
                "accuracy": accuracy,
                "error": 1.0 - accuracy,
                "loss": loss_sum / max(batches, 1),
            }
        return results

    # ------------------------------------------------------------------
    def fit(self, train_loader_fn: Callable[[], object],
            eval_loader_fn: Callable[[], object] | None = None,
            epochs: int = 1, eval_rates: Sequence[float] | None = None,
            lr_schedule=None, epoch_hook=None) -> list[EpochRecord]:
        """Full training loop with per-epoch evaluation telemetry.

        ``train_loader_fn`` / ``eval_loader_fn`` are zero-argument callables
        returning fresh batch iterables (so shuffling re-randomizes per
        epoch).  ``epoch_hook(record, model)`` runs after each epoch.
        """
        for epoch in range(epochs):
            record = EpochRecord(epoch)
            with obs.span("train.epoch", epoch=epoch):
                record.train_loss = self.train_epoch(train_loader_fn())
                if eval_loader_fn is not None:
                    results = self.evaluate(eval_loader_fn(),
                                            rates=eval_rates)
                    record.eval_error = {r: m["error"]
                                         for r, m in results.items()}
                    record.eval_loss = {r: m["loss"]
                                        for r, m in results.items()}
            obs.event("train.epoch_record", **record.to_dict())
            if lr_schedule is not None:
                lr_schedule.step()
            if epoch_hook is not None:
                epoch_hook(record, self.model)
            self.history.append(record)
        return self.history

    # ------------------------------------------------------------------
    def history_dicts(self) -> list[dict]:
        """The training history as JSON-serializable dicts."""
        return [record.to_dict() for record in self.history]

    def export_history(self, path: str) -> int:
        """Write the history as JSONL ``train.epoch`` trace events.

        The records use the same schema as :mod:`repro.obs` traces, so
        training curves and runtime telemetry flow through the same
        tooling (``repro obs summarize`` reads either).  Returns the
        number of records written.
        """
        with open(path, "w") as handle:
            for n, record in enumerate(self.history, 1):
                handle.write(obs.dumps_record({
                    "kind": "event", "id": n, "parent": None,
                    "name": "train.epoch", "time": float(record.epoch),
                    "attrs": record.to_dict(),
                }) + "\n")
        return len(self.history)
