"""Materialize a deployed subnet as a standalone plain network.

The paper's conclusion notes that "model slicing is readily applicable to
the model compression scenario by deploying a proper subnet".  This
module makes that concrete: :func:`materialize_subnet` walks a sliced
model and produces an independent network built from *plain*
:mod:`repro.nn` layers whose weights are the active prefixes at the
chosen rate — nothing of the full model is retained, so the deployed
artifact genuinely shrinks on disk and in memory.

Rescaling factors (``full_in / active_in``) are baked into the
materialized weights, so the deployed network computes exactly what the
sliced model computes at that rate.
"""

from __future__ import annotations

import copy

import numpy as np

from ..errors import ConfigError
from ..nn.attention import MultiHeadSelfAttention
from ..nn.conv import Conv2d
from ..nn.embedding import Embedding
from ..nn.linear import Linear
from ..nn.module import Module
from ..nn.norm import GroupNorm
from ..nn.norm import BatchNorm2d, LayerNorm
from ..nn.module import Parameter
from ..nn.recurrent import GRUCell, LSTMCell, RNNCell
from .profile import as_profile, named_slice_points
from .layers import (
    MultiBatchNorm2d,
    SlicedBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
)
from .recurrent import SlicedGRUCell, SlicedLSTMCell, SlicedRNNCell


def _set(param: Parameter, value, key=...) -> None:
    """Write into a parameter through :meth:`Parameter.mutate`."""
    with param.mutate() as data:
        data[key] = value


def _linear_from(layer: SlicedLinear, rate: float, in_rate: float) -> Linear:
    out_w = layer.out_partition.width_for(rate) if layer.slice_output \
        else layer.out_features
    in_w = layer.in_partition.width_for(in_rate) if layer.slice_input \
        else layer.in_features
    plain = Linear(in_w, out_w, bias=layer.bias is not None,
                   rng=np.random.default_rng(0))
    scale = (layer.in_features / in_w) if (layer.rescale and
                                           layer.slice_input) else 1.0
    _set(plain.weight, layer.weight.data[:out_w, :in_w] * scale)
    if layer.bias is not None:
        # The sliced layer rescales (Wx + b); bake the same factor in.
        _set(plain.bias, layer.bias.data[:out_w] * scale)
    return plain


def _conv_from(layer: SlicedConv2d, rate: float, in_rate: float) -> Conv2d:
    out_w = layer.active_out_channels(rate)
    in_w = layer.in_partition.width_for(in_rate) if layer.slice_input \
        else layer.in_channels
    plain = Conv2d(in_w, out_w, layer.kernel_size, stride=layer.stride,
                   padding=layer.padding, bias=layer.bias is not None,
                   rng=np.random.default_rng(0))
    _set(plain.weight, layer.weight.data[:out_w, :in_w])
    if layer.bias is not None:
        _set(plain.bias, layer.bias.data[:out_w])
    return plain


def _groupnorm_from(layer: SlicedGroupNorm, rate: float,
                    in_rate: float) -> GroupNorm:
    # Norm width follows the arriving activation (the feeding layer's
    # rate), exactly as the live input-width-driven forward does.
    groups = max(1, min(round(in_rate * layer.num_groups), layer.num_groups))
    channels = groups * layer.group_size
    plain = GroupNorm(groups, channels, eps=layer.eps)
    _set(plain.weight, layer.weight.data[:channels])
    _set(plain.bias, layer.bias.data[:channels])
    return plain


def _rnn_cell_from(cell: SlicedRNNCell, rate: float,
                   in_rate: float) -> RNNCell:
    hidden = cell.partition.width_for(rate)
    in_w = cell.in_partition.width_for(in_rate) if cell.slice_input \
        else cell.input_size
    plain = RNNCell(in_w, hidden, rng=np.random.default_rng(0))
    scale = 1.0
    if cell.rescale:
        scale = (cell.input_size / in_w + cell.hidden_size / hidden) / 2.0
    _set(plain.weight_ih, cell.weight_ih.data[:hidden, :in_w] * scale)
    _set(plain.weight_hh, cell.weight_hh.data[:hidden, :hidden] * scale)
    _set(plain.bias, cell.bias.data[:hidden] * scale)
    return plain


def _lstm_cell_from(cell: SlicedLSTMCell, rate: float,
                    in_rate: float) -> LSTMCell:
    hidden = cell.partition.width_for(rate)
    in_w = cell.in_partition.width_for(in_rate) if cell.slice_input \
        else cell.input_size
    plain = LSTMCell(in_w, hidden, rng=np.random.default_rng(0))
    scale = 1.0
    if cell.rescale:
        scale = (cell.input_size / in_w + cell.hidden_size / hidden) / 2.0
    for k, gate in enumerate(("i", "f", "g", "o")):
        w_ih = getattr(cell, f"w_ih_{gate}").data[:hidden, :in_w]
        w_hh = getattr(cell, f"w_hh_{gate}").data[:hidden, :hidden]
        bias = getattr(cell, f"bias_{gate}").data[:hidden]
        rows = slice(k * hidden, (k + 1) * hidden)
        _set(plain.weight_ih, w_ih * scale, rows)
        _set(plain.weight_hh, w_hh * scale, rows)
        _set(plain.bias, bias * scale, rows)
    return plain


def _gru_cell_from(cell: SlicedGRUCell, rate: float,
                   in_rate: float) -> GRUCell:
    hidden = cell.partition.width_for(rate)
    in_w = cell.in_partition.width_for(in_rate) if cell.slice_input \
        else cell.input_size
    plain = GRUCell(in_w, hidden, rng=np.random.default_rng(0))
    scale = 1.0
    if cell.rescale:
        scale = (cell.input_size / in_w + cell.hidden_size / hidden) / 2.0
    for k, gate in enumerate(("r", "z", "n")):
        w_ih = getattr(cell, f"w_ih_{gate}").data[:hidden, :in_w]
        w_hh = getattr(cell, f"w_hh_{gate}").data[:hidden, :hidden]
        bias = getattr(cell, f"bias_{gate}").data[:hidden]
        rows = slice(k * hidden, (k + 1) * hidden)
        _set(plain.weight_ih, w_ih * scale, rows)
        _set(plain.weight_hh, w_hh * scale, rows)
        _set(plain.bias_ih, bias * scale, rows)
    return plain


def _attention_from(layer: MultiHeadSelfAttention, rate: float,
                    in_rate: float) -> MultiHeadSelfAttention:
    """A non-sliceable attention holding only the active head prefix.

    ``rate`` picks the head count (whole trailing heads drop, so each
    retained head keeps its full ``head_dim``); the arriving rate picks
    the residual width the QKV columns and output rows follow.
    """
    if not layer.sliceable:
        return copy.deepcopy(layer)
    heads = layer.head_partition.groups_for(rate)
    head_dim = layer.head_dim
    inner = heads * head_dim
    width = layer.embed_partition.width_for(in_rate)
    plain = MultiHeadSelfAttention(
        width, heads, head_dim=head_dim, causal=layer.causal,
        batch_first=layer.batch_first, sliceable=False,
        rng=np.random.default_rng(0),
    )
    _set(plain.qkv_weight, layer.qkv_weight.data[:3 * inner, :width])
    _set(plain.qkv_bias, layer.qkv_bias.data[:3 * inner])
    _set(plain.proj_weight, layer.proj_weight.data[:width, :inner])
    _set(plain.proj_bias, layer.proj_bias.data[:width])
    return plain


def _layernorm_from(layer: LayerNorm, rate: float,
                    in_rate: float) -> LayerNorm:
    # Like GroupNorm, width follows the arriving activation.
    groups = max(1, min(round(in_rate * layer.num_groups), layer.num_groups))
    width = round(layer.num_features * groups / layer.num_groups)
    plain = LayerNorm(width, eps=layer.eps,
                      num_groups=min(layer.num_groups, width))
    _set(plain.weight, layer.weight.data[:width])
    _set(plain.bias, layer.bias.data[:width])
    return plain


def _embedding_from(layer: Embedding, rate: float, in_rate: float) -> Embedding:
    # Width controllers shrink to their active columns; plain embeddings
    # materialize at full width (nothing to slice).
    width = layer.out_partition.width_for(rate) if layer.slice_output \
        else layer.embedding_dim
    plain = Embedding(layer.num_embeddings, width,
                      rng=np.random.default_rng(0))
    _set(plain.weight, layer.weight.data[:, :width])
    return plain


def _multi_bn_from(layer: MultiBatchNorm2d, rate: float,
                   in_rate: float) -> BatchNorm2d:
    # The arriving width (feeding conv's rate) picks the statistics
    # branch, matching the width the live forward would normalize.
    best = min(layer._rate_keys, key=lambda r: abs(r - in_rate))
    source: BatchNorm2d = getattr(layer, f"bn_{layer._key(best)}")
    plain = BatchNorm2d(source.num_features, eps=source.eps,
                        momentum=source.momentum)
    _set(plain.weight, source.weight.data)
    _set(plain.bias, source.bias.data)
    plain.running_mean = source.running_mean.copy()
    plain.running_var = source.running_var.copy()
    return plain


_CONVERTERS = [
    (SlicedLinear, _linear_from),
    (SlicedConv2d, _conv_from),
    (SlicedGroupNorm, _groupnorm_from),
    (SlicedLSTMCell, _lstm_cell_from),
    (SlicedRNNCell, _rnn_cell_from),
    (SlicedGRUCell, _gru_cell_from),
    (MultiBatchNorm2d, _multi_bn_from),
    (MultiHeadSelfAttention, _attention_from),
    (LayerNorm, _layernorm_from),
    (Embedding, _embedding_from),
]


def materialize_subnet(model: Module, rate) -> Module:
    """Return a standalone plain copy of ``Subnet-rate``.

    ``rate`` may be a scalar or a
    :class:`~repro.slicing.profile.SliceProfile`; each sliced layer is
    materialized at the rate the profile resolves for its slice-point
    name.  Input widths are *threaded*: each input-sliced layer consumes
    the width produced by the previous width-controlling slice point (in
    slice-point traversal order, which matches dataflow order for the
    sequential bundled models), so non-uniform profiles deploy with the
    exact widths the live forward produces.

    The original model is untouched.  Sliced layers become plain layers
    holding only the active prefix weights (with any rescaling baked in);
    everything else (activations, pooling, containers, composite blocks)
    is deep-copied.  The result no longer responds to ``slice_rate`` —
    it *is* the subnet.

    Raises
    ------
    ConfigError
        If the model contains a sliced layer type with no converter
        (e.g. :class:`SlicedBatchNorm2d`, whose running statistics are
        not meaningful for a single deployed width).
    """
    profile = as_profile(rate)
    clone = copy.deepcopy(model)
    replaced = 0

    # The rate of the activation *arriving* at each sliced module: the
    # most recent width-controlling slice point before it in traversal
    # order (dataflow order for the sequential bundled models).
    in_rates: dict[int, float] = {}
    feeder = profile.rate_for(None)
    for point, module in named_slice_points(clone):
        in_rates[id(module)] = feeder
        if isinstance(module, (SlicedLinear, SlicedConv2d)):
            if module.slice_output:
                feeder = profile.rate_for(point)
        elif isinstance(module, (SlicedRNNCell, SlicedLSTMCell,
                                 SlicedGRUCell)):
            feeder = profile.rate_for(point)
        elif isinstance(module, Embedding) and module.slice_output:
            # Width-controller embedding: everything downstream follows
            # its width.  (Attention is *not* a feeder — its output width
            # equals its input width, like norms.)
            feeder = profile.rate_for(point)

    def visit(module: Module) -> None:
        nonlocal replaced
        for name, child in list(module._modules.items()):
            converted = None
            for kind, converter in _CONVERTERS:
                if type(child) is kind:
                    layer_rate = profile.rate_for(
                        getattr(child, "slice_point", None))
                    in_rate = in_rates.get(id(child), layer_rate)
                    converted = converter(child, layer_rate, in_rate)
                    break
            if converted is not None:
                module.register_module(name, converted)
                replaced += 1
                # Composite modules may alias children in plain lists
                # (e.g. SlicedVGG._ops, SlicedLSTM.cells); patch those.
                _patch_aliases(module, child, converted)
            else:
                if isinstance(child, SlicedBatchNorm2d):
                    raise ConfigError(
                        "cannot materialize SlicedBatchNorm2d; train with "
                        "group normalization for deployable subnets"
                    )
                visit(child)

    visit(clone)
    if replaced == 0:
        raise ConfigError("model contains no sliceable layers")
    return clone


def _patch_aliases(parent: Module, old: Module, new: Module) -> None:
    """Replace references to ``old`` inside plain-list attributes."""
    for attr, value in vars(parent).items():
        if isinstance(value, list):
            for i, item in enumerate(value):
                if item is old:
                    value[i] = new
                elif (isinstance(item, tuple) and len(item) == 2
                        and item[1] is old):
                    value[i] = (item[0], new)
