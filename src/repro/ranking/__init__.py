"""Cascade ranking: the Sec. 4.2 example application."""

from .cascade import (
    CascadeSimulation,
    CascadeStage,
    StageResult,
    fixed_model_stages,
    sliced_model_stages,
)

__all__ = [
    "CascadeSimulation",
    "CascadeStage",
    "StageResult",
    "sliced_model_stages",
    "fixed_model_stages",
]
