"""Cascade ranking (Sec. 4.2 / Table 5 of the paper).

A cascade of increasingly expensive classifiers filters a large item set:
an item survives stage ``k`` only if stage ``k``'s prediction agrees with
what earlier stages established (here, as in the paper's simulation, the
item's type: a correct, consistent prediction chain).  The paper's
metrics:

* **precision** of stage ``k`` — its standalone accuracy on the full set;
* **aggregate recall** after stage ``k`` — the fraction of items
  correctly classified by *every* stage up to ``k`` (accumulated false
  negatives are the complement).

The comparison: a cascade of independently trained models of growing
width versus the subnets of one slicing-trained model.  Because a sliced
model's larger subnets *contain* the smaller ones, their predictions are
far more consistent, so fewer positives are lost along the cascade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError


@dataclass
class CascadeStage:
    """One ranking stage: a named predictor with its deployment cost."""

    name: str
    predict: Callable[[np.ndarray], np.ndarray]
    params: int
    flops: int


@dataclass
class StageResult:
    """Per-stage outcome of a cascade run."""

    name: str
    precision: float
    aggregate_recall: float
    params: int
    flops: int


class CascadeSimulation:
    """Run a classifier cascade over a labelled item set."""

    def __init__(self, stages: Sequence[CascadeStage]):
        if not stages:
            raise ConfigError("cascade needs at least one stage")
        self.stages = list(stages)

    def run(self, inputs: np.ndarray, labels: np.ndarray
            ) -> list[StageResult]:
        """Evaluate the cascade; returns per-stage precision and recall."""
        labels = np.asarray(labels)
        correct_so_far = np.ones(len(labels), dtype=bool)
        results = []
        for stage in self.stages:
            predictions = np.asarray(stage.predict(inputs))
            if predictions.shape != labels.shape:
                raise ConfigError(
                    f"stage {stage.name} returned predictions of shape "
                    f"{predictions.shape}, expected {labels.shape}"
                )
            correct = predictions == labels
            correct_so_far &= correct
            results.append(StageResult(
                name=stage.name,
                precision=float(correct.mean()),
                aggregate_recall=float(correct_so_far.mean()),
                params=stage.params,
                flops=stage.flops,
            ))
        return results

    def total_params(self) -> int:
        """Parameters deployed across the whole cascade."""
        return sum(stage.params for stage in self.stages)

    def total_flops(self) -> int:
        """Per-item FLOPs if every stage evaluates every item."""
        return sum(stage.flops for stage in self.stages)


def sliced_model_stages(model, rates: Sequence[float],
                        flops_of_rate: dict[float, int],
                        params_of_rate: dict[float, int]) -> list[CascadeStage]:
    """Build cascade stages from the subnets of one sliced model."""
    from ..slicing.context import slice_rate
    from ..tensor import Tensor, no_grad

    stages = []
    for rate in sorted(rates):
        def predict(inputs, rate=rate):
            model.eval()
            with no_grad():
                with slice_rate(rate):
                    return model(Tensor(inputs)).data.argmax(axis=1)

        stages.append(CascadeStage(
            name=f"Subnet-{rate}",
            predict=predict,
            params=params_of_rate[rate],
            flops=flops_of_rate[rate],
        ))
    return stages


def fixed_model_stages(members: dict[float, object],
                       flops_of_rate: dict[float, int],
                       params_of_rate: dict[float, int]) -> list[CascadeStage]:
    """Build cascade stages from independently trained fixed models."""
    from ..slicing.context import slice_rate
    from ..tensor import Tensor, no_grad

    stages = []
    for rate in sorted(members):
        model = members[rate]

        def predict(inputs, model=model, rate=rate):
            model.eval()
            with no_grad():
                with slice_rate(rate):
                    return model(Tensor(inputs)).data.argmax(axis=1)

        stages.append(CascadeStage(
            name=f"Fixed-{rate}",
            predict=predict,
            params=params_of_rate[rate],
            flops=flops_of_rate[rate],
        ))
    return stages
