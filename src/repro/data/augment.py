"""Image augmentation: the paper's CIFAR scheme (pad, crop, flip).

Implemented as a batch transform for :class:`~repro.data.datasets.DataLoader`:
each image is zero-padded by ``pad`` pixels per side, randomly cropped back
to its original size, and horizontally flipped with probability 0.5.
"""

from __future__ import annotations

import numpy as np


def pad_crop_flip(pad: int = 2, flip: bool = True):
    """Build the standard augmentation transform with ``pad`` pixels.

    Set ``flip=False`` for datasets whose classes are *not* mirror
    invariant (e.g. the synthetic oriented-texture task, where a
    horizontal flip maps one class's orientation signature onto
    another's and destroys the label).
    """

    def transform(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, _, height, width = images.shape
        padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out = np.empty_like(images)
        offsets_y = rng.integers(0, 2 * pad + 1, size=n)
        offsets_x = rng.integers(0, 2 * pad + 1, size=n)
        flips = rng.random(n) < 0.5 if flip else np.zeros(n, dtype=bool)
        for i in range(n):
            crop = padded[i, :, offsets_y[i]:offsets_y[i] + height,
                          offsets_x[i]:offsets_x[i] + width]
            out[i] = crop[:, :, ::-1] if flips[i] else crop
        return out

    return transform


def pad_crop(pad: int = 2):
    """Label-preserving augmentation: zero-pad and random-crop only."""
    return pad_crop_flip(pad=pad, flip=False)


def normalize(images: np.ndarray) -> np.ndarray:
    """Channel-wise standardization (mean 0, std 1 per channel)."""
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    return (images - mean) / np.maximum(std, 1e-6)
