"""Data substrate: loaders, synthetic image and text datasets."""

from .datasets import ArrayDataset, DataLoader
from .synthetic_images import SyntheticImageTask
from .synthetic_text import SyntheticTextCorpus, batchify, bptt_windows
from .augment import normalize, pad_crop, pad_crop_flip

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "SyntheticImageTask",
    "SyntheticTextCorpus",
    "batchify",
    "bptt_windows",
    "normalize",
    "pad_crop",
    "pad_crop_flip",
]
