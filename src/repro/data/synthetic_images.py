"""Synthetic image-classification dataset (CIFAR stand-in).

The environment has no network access, so the CIFAR-10/ImageNet experiments
run on a procedurally generated dataset with the properties the paper's
comparisons actually rely on:

* classes are separable by *spatial texture*, so convolutional features
  genuinely help (a linear model cannot saturate it);
* difficulty is tunable (noise, per-sample jitter), so accuracy responds
  to model capacity — which is the axis the width/accuracy trade-off
  curves measure;
* everything is seeded, so all baselines see identical data.

Each class is defined by a mixture of oriented sinusoidal gratings
("Gabor-like" textures) with class-specific frequencies, orientations and
per-channel color weights.  Each sample draws random phases, a random
spatial shift, per-sample amplitude jitter and Gaussian pixel noise.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .datasets import ArrayDataset


class SyntheticImageTask:
    """Factory for a seeded synthetic image-classification problem.

    Parameters
    ----------
    num_classes:
        Number of texture classes.
    image_size:
        Square image side in pixels.
    channels:
        Color channels (3 for the CIFAR-like default).
    components:
        Sinusoid components mixed per class; more components makes the
        texture richer and the task harder for narrow models.
    noise:
        Standard deviation of the additive Gaussian pixel noise.
    amplitude_jitter:
        Relative per-sample scaling of each component's amplitude.
    seed:
        Master seed; the class definitions and every sample derive from it.
    """

    def __init__(self, num_classes: int = 8, image_size: int = 16,
                 channels: int = 3, components: int = 4,
                 noise: float = 0.8, amplitude_jitter: float = 0.5,
                 seed: int = 0):
        if num_classes < 2:
            raise DataError("need at least two classes")
        if image_size < 4:
            raise DataError("image_size must be at least 4")
        self.num_classes = num_classes
        self.image_size = image_size
        self.channels = channels
        self.components = components
        self.noise = noise
        self.amplitude_jitter = amplitude_jitter
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Class signatures: frequency vectors, per-channel colour weights
        # and base amplitudes for each component.
        self.freq = rng.uniform(0.5, image_size / 4.0,
                                size=(num_classes, components, 2))
        self.orientation_sign = rng.choice(
            [-1.0, 1.0], size=(num_classes, components, 2)
        )
        self.freq = self.freq * self.orientation_sign
        self.color = rng.normal(0.0, 1.0, size=(num_classes, components, channels))
        self.amplitude = rng.uniform(0.5, 1.0, size=(num_classes, components))

    def sample(self, labels: np.ndarray, rng: np.random.Generator
               ) -> np.ndarray:
        """Render images for the given integer ``labels``."""
        labels = np.asarray(labels)
        n = len(labels)
        size = self.image_size
        coords = np.arange(size, dtype=np.float64) / size
        yy, xx = np.meshgrid(coords, coords, indexing="ij")

        freq = self.freq[labels]            # (n, K, 2)
        color = self.color[labels]          # (n, K, C)
        amp = self.amplitude[labels]        # (n, K)
        phase = rng.uniform(0, 2 * np.pi, size=(n, self.components))
        jitter = 1.0 + self.amplitude_jitter * rng.normal(
            size=(n, self.components)
        )
        # (n, K, H, W) sinusoid per component with random phase.
        arg = (
            2 * np.pi * (
                freq[:, :, 0, None, None] * xx[None, None]
                + freq[:, :, 1, None, None] * yy[None, None]
            )
            + phase[:, :, None, None]
        )
        waves = np.sin(arg) * (amp * jitter)[:, :, None, None]
        # Mix components into channels: (n, C, H, W).
        images = np.einsum("nkhw,nkc->nchw", waves, color, optimize=True)
        images += rng.normal(0.0, self.noise, size=images.shape)
        images /= max(1.0, np.sqrt(self.components))
        return images.astype(np.float32)

    def build(self, train_size: int = 1024, test_size: int = 512,
              valid_size: int = 0) -> dict[str, ArrayDataset]:
        """Materialize train/test (and optional valid) splits."""
        out: dict[str, ArrayDataset] = {}
        sizes = {"train": train_size, "test": test_size}
        if valid_size:
            sizes["valid"] = valid_size
        for i, (name, count) in enumerate(sizes.items()):
            if count <= 0:
                raise DataError(f"{name}_size must be positive")
            rng = np.random.default_rng(self.seed + 1000 + i)
            labels = rng.integers(0, self.num_classes, size=count)
            out[name] = ArrayDataset(self.sample(labels, rng), labels)
        return out
