"""Synthetic language-modeling corpus (Penn Tree Bank stand-in).

A hidden-Markov word source: a seeded Markov chain over ``num_states``
latent topics, each emitting from its own Zipf-weighted slice of the
vocabulary (plus a band of shared function words).  An LSTM that infers
the latent state predicts the next word much better than any unigram or
bigram table, so perplexity responds to model capacity — which is the
axis the NNLM experiments (Table 2, Figure 4) measure.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError


class SyntheticTextCorpus:
    """Seeded hidden-Markov word corpus with train/valid/test streams.

    Parameters
    ----------
    vocab_size:
        Total vocabulary size.
    num_states:
        Latent Markov states ("topics").
    shared_words:
        Vocabulary prefix emitted by every state (function words).
    stickiness:
        Self-transition probability of the latent chain; higher values
        give longer topical runs and more learnable structure.
    zipf:
        Zipf exponent of each state's emission distribution.
    """

    def __init__(self, vocab_size: int = 200, num_states: int = 8,
                 shared_words: int = 20, stickiness: float = 0.9,
                 zipf: float = 1.2, seed: int = 0):
        if vocab_size <= shared_words + num_states:
            raise DataError("vocab_size too small for the state structure")
        if not 0.0 < stickiness < 1.0:
            raise DataError("stickiness must be in (0, 1)")
        self.vocab_size = vocab_size
        self.num_states = num_states
        self.seed = seed
        rng = np.random.default_rng(seed)

        # Latent transitions: sticky diagonal plus random off-diagonal mass.
        trans = rng.uniform(0.1, 1.0, size=(num_states, num_states))
        np.fill_diagonal(trans, 0.0)
        trans /= trans.sum(axis=1, keepdims=True)
        self.transition = stickiness * np.eye(num_states) \
            + (1.0 - stickiness) * trans

        # Emissions: each state owns an equal slice of the non-shared vocab,
        # weighted by a Zipf law, plus the shared function-word band.
        content = vocab_size - shared_words
        per_state = content // num_states
        self.emission = np.zeros((num_states, vocab_size))
        for s in range(num_states):
            start = shared_words + s * per_state
            stop = shared_words + (s + 1) * per_state if s < num_states - 1 \
                else vocab_size
            ranks = np.arange(1, stop - start + 1, dtype=np.float64)
            weights = ranks ** (-zipf)
            rng.shuffle(weights)
            self.emission[s, start:stop] = weights
            shared_ranks = np.arange(1, shared_words + 1, dtype=np.float64)
            self.emission[s, :shared_words] = 0.6 * shared_ranks ** (-zipf)
        self.emission /= self.emission.sum(axis=1, keepdims=True)

    def generate(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """Sample a token stream of ``length`` words."""
        if length <= 0:
            raise DataError("length must be positive")
        states = np.empty(length, dtype=np.int64)
        state = rng.integers(0, self.num_states)
        tokens = np.empty(length, dtype=np.int64)
        for t in range(length):
            states[t] = state
            tokens[t] = rng.choice(self.vocab_size, p=self.emission[state])
            state = rng.choice(self.num_states, p=self.transition[state])
        return tokens

    def build(self, train_tokens: int = 20000, valid_tokens: int = 4000,
              test_tokens: int = 4000) -> dict[str, np.ndarray]:
        """Materialize the three standard streams with derived seeds."""
        sizes = {"train": train_tokens, "valid": valid_tokens,
                 "test": test_tokens}
        return {
            name: self.generate(size, np.random.default_rng(self.seed + i + 1))
            for i, (name, size) in enumerate(sizes.items())
        }


def batchify(stream: np.ndarray, batch_size: int) -> np.ndarray:
    """Fold a token stream into ``(steps, batch_size)`` columns.

    Standard LM batching: the stream is cut into ``batch_size`` contiguous
    chunks that advance in parallel.
    """
    usable = (len(stream) // batch_size) * batch_size
    if usable == 0:
        raise DataError("stream shorter than batch_size")
    return stream[:usable].reshape(batch_size, -1).T.copy()


def bptt_windows(batched: np.ndarray, window: int):
    """Yield ``(inputs, targets)`` windows for truncated BPTT.

    ``inputs`` and ``targets`` are ``(window, batch)`` with targets
    shifted one step ahead.
    """
    steps = batched.shape[0]
    for start in range(0, steps - 1, window):
        stop = min(start + window, steps - 1)
        yield batched[start:stop], batched[start + 1:stop + 1]
