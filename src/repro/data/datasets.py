"""Dataset and loader abstractions."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..errors import DataError


class ArrayDataset:
    """An in-memory supervised dataset of ``(inputs, targets)`` arrays."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        if len(inputs) != len(targets):
            raise DataError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) differ"
            )
        if len(inputs) == 0:
            raise DataError("dataset must not be empty")
        self.inputs = inputs
        self.targets = targets

    def __len__(self) -> int:
        return len(self.inputs)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """A new dataset restricted to ``indices``."""
        return ArrayDataset(self.inputs[indices], self.targets[indices])

    def split(self, fraction: float, rng: np.random.Generator
              ) -> tuple["ArrayDataset", "ArrayDataset"]:
        """Random split into ``(fraction, 1 - fraction)`` parts."""
        if not 0 < fraction < 1:
            raise DataError(f"split fraction must be in (0, 1), got {fraction}")
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        if cut == 0 or cut == len(self):
            raise DataError("split produced an empty part")
        return self.subset(order[:cut]), self.subset(order[cut:])


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Samples per batch (the final partial batch is kept).
    shuffle:
        Whether to reshuffle on every iteration.
    transform:
        Optional ``transform(inputs, rng) -> inputs`` applied per batch
        (data augmentation).
    rng:
        Generator used for shuffling and the transform.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int,
                 shuffle: bool = False,
                 transform: Callable | None = None,
                 rng: np.random.Generator | None = None):
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            inputs = self.dataset.inputs[idx]
            if self.transform is not None:
                inputs = self.transform(inputs, self.rng)
            yield inputs, self.dataset.targets[idx]
