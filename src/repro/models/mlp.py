"""Sliceable multi-layer perceptron.

The smallest useful sliced model: used by the quickstart example, by unit
tests, and as the dense-layer testbed for the group-residual analysis of
Sec. 3.5.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module
from ..slicing.layers import DEFAULT_GROUPS, SlicedLinear
from ..slicing.profile import assign_slice_points
from ..tensor import Tensor


class MLP(Module):
    """Fully-connected classifier with sliced hidden layers.

    Parameters
    ----------
    in_features:
        Input dimensionality (not sliced).
    hidden:
        Widths of the hidden layers (each sliced on both sides except the
        first layer's input and the head's output).
    num_classes:
        Output dimensionality (not sliced).
    rescale:
        Whether hidden layers rescale outputs by ``full_in / active_in``.
    """

    def __init__(self, in_features: int, hidden: Sequence[int],
                 num_classes: int, num_groups: int = DEFAULT_GROUPS,
                 rescale: bool = True, seed: int = 0):
        super().__init__()
        if not hidden:
            raise ConfigError("MLP needs at least one hidden layer")
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.num_classes = num_classes
        self.hidden_widths = list(hidden)
        self.layers: list[SlicedLinear] = []
        previous = in_features
        for i, width in enumerate(hidden):
            layer = SlicedLinear(
                previous, width,
                slice_input=i > 0,
                slice_output=True,
                rescale=rescale and i > 0,
                num_groups=num_groups,
                rng=rng,
            )
            self.register_module(f"fc{i}", layer)
            self.layers.append(layer)
            previous = width
        self.head = SlicedLinear(
            previous, num_classes,
            slice_input=True, slice_output=False,
            rescale=rescale, num_groups=num_groups, rng=rng,
        )
        assign_slice_points(self)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x).relu()
        return self.head(x)

    def features(self, x: Tensor) -> Tensor:
        """The last hidden representation (used by analysis tools)."""
        for layer in self.layers:
            x = layer(x).relu()
        return x
