"""Sliceable reference models: MLP, VGG, ResNet and the NNLM."""

from .mlp import MLP
from .vgg import SlicedVGG, VGG13_PLAN, VGG16_PLAN
from .resnet import BottleneckBlock, SlicedResNet
from .nnlm import NNLM

__all__ = [
    "MLP",
    "SlicedVGG",
    "VGG13_PLAN",
    "VGG16_PLAN",
    "BottleneckBlock",
    "SlicedResNet",
    "NNLM",
]
