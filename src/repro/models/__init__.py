"""Sliceable reference models: MLP, VGG, ResNet, NNLM and Transformers."""

from .mlp import MLP
from .vgg import SlicedVGG, VGG13_PLAN, VGG16_PLAN
from .resnet import BottleneckBlock, SlicedResNet
from .nnlm import NNLM
from .transformer import (DecoderSession, TransformerBlock,
                          TransformerEncoder, TransformerLM,
                          head_ffn_profile, transformer_search_points)

__all__ = [
    "MLP",
    "SlicedVGG",
    "VGG13_PLAN",
    "VGG16_PLAN",
    "BottleneckBlock",
    "SlicedResNet",
    "NNLM",
    "TransformerBlock",
    "TransformerEncoder",
    "TransformerLM",
    "DecoderSession",
    "head_ffn_profile",
    "transformer_search_points",
]
