"""Sliceable neural-network language model (Sec. 5.2 of the paper).

Architecture follows the paper's NNLM: input embedding, two LSTM layers,
an output dense layer, and a softmax, with dropout after the embedding and
each LSTM layer.  Model slicing applies to the recurrent layers and the
output dense layer (with output rescaling); the embedding and the softmax
output dimensionality are left unsliced.
"""

from __future__ import annotations

import numpy as np

from ..nn.dropout import Dropout
from ..nn.embedding import Embedding
from ..nn.module import Module
from ..slicing.layers import DEFAULT_GROUPS, SlicedLinear
from ..slicing.profile import assign_slice_points
from ..slicing.recurrent import SlicedLSTM
from ..tensor import Tensor, log_softmax


class NNLM(Module):
    """LSTM language model with model slicing.

    Parameters
    ----------
    vocab_size:
        Vocabulary size (output layer width, unsliced).
    embed_dim:
        Embedding width (input layer, unsliced); paper uses 650.
    hidden_size:
        LSTM width (sliced); paper uses 640.
    num_layers:
        LSTM depth; paper uses 2.
    dropout:
        Dropout rate after the embedding and after each LSTM layer.
    """

    def __init__(self, vocab_size: int, embed_dim: int = 64,
                 hidden_size: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, num_groups: int = DEFAULT_GROUPS,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.hidden_size = hidden_size
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)
        self.drop_in = Dropout(dropout, rng=np.random.default_rng(seed + 1))
        self.lstm = SlicedLSTM(embed_dim, hidden_size, num_layers=num_layers,
                               rescale=True, num_groups=num_groups, rng=rng)
        self.drop_out = Dropout(dropout, rng=np.random.default_rng(seed + 2))
        self.decoder = SlicedLinear(
            hidden_size, vocab_size, slice_input=True, slice_output=False,
            rescale=True, num_groups=num_groups, rng=rng,
        )
        assign_slice_points(self)

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Log-probabilities over the next token.

        Parameters
        ----------
        tokens:
            ``(T, B)`` integer token ids.

        Returns
        -------
        ``(T, B, vocab)`` log-probabilities.
        """
        embedded = self.drop_in(self.embedding(tokens))
        hidden, _ = self.lstm(embedded)
        hidden = self.drop_out(hidden)
        steps, batch = tokens.shape
        flat = hidden.reshape(steps * batch, hidden.shape[-1])
        logits = self.decoder(flat)
        return log_softmax(logits, axis=-1).reshape(
            steps, batch, self.vocab_size
        )

    def sequence_nll(self, tokens: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean per-token negative log-likelihood of ``targets``.

        ``tokens`` and ``targets`` are both ``(T, B)``; ``targets`` is
        typically ``tokens`` shifted by one step.
        """
        log_probs = self.forward(tokens)
        steps, batch = targets.shape
        flat = log_probs.reshape(steps * batch, self.vocab_size)
        picked = flat[np.arange(steps * batch), targets.reshape(-1)]
        return -(picked.sum() * (1.0 / (steps * batch)))
