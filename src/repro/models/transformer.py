"""Sliced Transformer models: a patch encoder and a causal decoder LM.

Both models slice along two independent axes per block:

* **head count** — each :class:`~repro.nn.attention.MultiHeadSelfAttention`
  drops whole trailing heads (one slice group per head, Eq. 2 nesting per
  head group);
* **FFN hidden width** — ``fc1`` slices its output columns exactly like
  every other :class:`~repro.slicing.layers.SlicedLinear`.

The *residual width* is controlled by a single width controller at the
bottom of the stack (the patch embedding for the encoder, the token
embedding for the LM) and everything downstream — LayerNorms, attention
QKV columns / output rows, ``fc2`` — follows the arriving width.  ``fc2``
keeps a sliced output at the profile's default rate so its width agrees
with the controller; profiles that assign ``fc2`` a different rate fail
loudly at the residual add.

``rescale=False`` throughout: pre-norm blocks re-normalize after every
residual join, so the paper's output rescaling is unnecessary — and
leaving it off keeps live forward, compiled plans and
``materialize_subnet`` bitwise-identical (deployment bakes any rescale
into the weights, which would otherwise perturb the last bits).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, ShapeError
from ..nn.attention import MultiHeadSelfAttention, softmax_eval
from ..nn.embedding import Embedding, LearnedPositional
from ..nn.module import Module, ModuleList
from ..nn.norm import LayerNorm, layer_norm_eval
from ..slicing.layers import SlicedLinear
from ..slicing.profile import (LayerProfile, as_profile,
                               assign_slice_points, named_slice_points)
from ..tensor import Tensor, log_softmax


class TransformerBlock(Module):
    """Pre-norm block: ``x + attn(ln1(x))`` then ``x + ffn(ln2(x))``."""

    def __init__(self, embed_dim: int, num_heads: int, ffn_dim: int,
                 causal: bool, batch_first: bool, num_groups: int,
                 rng: np.random.Generator):
        super().__init__()
        self.ln1 = LayerNorm(embed_dim, num_groups=num_groups)
        self.attn = MultiHeadSelfAttention(
            embed_dim, num_heads, causal=causal, batch_first=batch_first,
            num_groups=num_groups, rng=rng,
        )
        self.ln2 = LayerNorm(embed_dim, num_groups=num_groups)
        self.fc1 = SlicedLinear(
            embed_dim, ffn_dim, slice_input=True, slice_output=True,
            rescale=False, num_groups=num_groups, rng=rng,
        )
        self.fc2 = SlicedLinear(
            ffn_dim, embed_dim, slice_input=True, slice_output=True,
            rescale=False, num_groups=num_groups, rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        shape = x.shape
        # Dense layers see 2-d inputs so the GEMM shapes (and therefore
        # the exact floating-point results) match the compiled plan's.
        flat = self.ln2(x).reshape(-1, shape[-1])
        hidden = self.fc1(flat).relu()
        out = self.fc2(hidden)
        if out.shape[-1] != shape[-1]:
            raise ShapeError(
                f"fc2 produced width {out.shape[-1]} but the residual "
                f"stream is {shape[-1]} wide; profiles must leave fc2 at "
                f"the default (residual) rate"
            )
        return x + out.reshape(shape)


class TransformerEncoder(Module):
    """Small ViT-style encoder over synthetic-image patches.

    Images are cut into non-overlapping ``patch_size``² patches, linearly
    embedded (the width controller), tagged with learned positions, run
    through pre-norm blocks, mean-pooled and classified.  The classifier
    head keeps its output unsliced, as the paper prescribes for output
    layers.
    """

    def __init__(self, image_size: int = 16, patch_size: int = 4,
                 channels: int = 3, num_classes: int = 8,
                 embed_dim: int = 32, num_heads: int = 4, ffn_dim: int = 64,
                 depth: int = 2, num_groups: int = 8, seed: int = 0):
        super().__init__()
        if image_size % patch_size != 0:
            raise ConfigError(
                f"image_size={image_size} not divisible by "
                f"patch_size={patch_size}"
            )
        rng = np.random.default_rng(seed)
        self.image_size = image_size
        self.patch_size = patch_size
        self.channels = channels
        self.num_classes = num_classes
        self.embed_dim = embed_dim
        grid = image_size // patch_size
        self.num_patches = grid * grid
        self.patch_dim = channels * patch_size * patch_size
        self.patch_embed = SlicedLinear(
            self.patch_dim, embed_dim, slice_input=False, slice_output=True,
            rescale=False, num_groups=num_groups, rng=rng,
        )
        self.pos = LearnedPositional(
            self.num_patches, embed_dim, batch_first=True, rng=rng,
        )
        self.blocks = ModuleList([
            TransformerBlock(embed_dim, num_heads, ffn_dim, causal=False,
                             batch_first=True, num_groups=num_groups, rng=rng)
            for _ in range(depth)
        ])
        self.ln_f = LayerNorm(embed_dim, num_groups=num_groups)
        self.head = SlicedLinear(
            embed_dim, num_classes, slice_input=True, slice_output=False,
            rescale=False, num_groups=num_groups, rng=rng,
        )
        assign_slice_points(self)

    def patchify(self, images: np.ndarray) -> np.ndarray:
        """``(B, C, H, W)`` images to ``(B, T, patch_dim)`` patch rows."""
        images = np.asarray(images)
        if images.ndim != 4 or images.shape[1] != self.channels:
            raise ShapeError(
                f"expected NCHW images with {self.channels} channels, "
                f"got shape {images.shape}"
            )
        b, c, h, w = images.shape
        p = self.patch_size
        if h % p or w % p:
            raise ShapeError(f"image {h}x{w} not divisible by patch {p}")
        gh, gw = h // p, w // p
        x = images.reshape(b, c, gh, p, gw, p)
        x = x.transpose(0, 2, 4, 1, 3, 5).reshape(b, gh * gw, c * p * p)
        return np.ascontiguousarray(x)

    def forward(self, images) -> Tensor:
        data = images.data if isinstance(images, Tensor) else images
        patches = self.patchify(data)
        x = self.patch_embed(Tensor(patches))
        x = self.pos(x)
        for block in self.blocks:
            x = block(x)
        x = self.ln_f(x)
        pooled = x.mean(axis=1)
        logits = self.head(pooled)
        return log_softmax(logits, axis=-1)


class TransformerLM(Module):
    """Causal decoder LM over synthetic text, sliced from the first layer.

    The token embedding opts into output slicing (the :class:`Embedding`
    width-controller path), so the whole residual stream narrows with the
    profile's default rate.  Inference sessions carry a per-session KV
    cache (:class:`DecoderSession`) whose memory the serving cost model
    budgets per resident session.
    """

    def __init__(self, vocab_size: int, embed_dim: int = 32,
                 num_heads: int = 4, ffn_dim: int = 64, depth: int = 2,
                 max_seq: int = 32, num_groups: int = 8, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.max_seq = max_seq
        self.embedding = Embedding(
            vocab_size, embed_dim, rng=rng, slice_output=True,
            num_groups=num_groups,
        )
        self.pos = LearnedPositional(
            max_seq, embed_dim, batch_first=False, rng=rng,
        )
        self.blocks = ModuleList([
            TransformerBlock(embed_dim, num_heads, ffn_dim, causal=True,
                             batch_first=False, num_groups=num_groups,
                             rng=rng)
            for _ in range(depth)
        ])
        self.ln_f = LayerNorm(embed_dim, num_groups=num_groups)
        self.decoder = SlicedLinear(
            embed_dim, vocab_size, slice_input=True, slice_output=False,
            rescale=False, num_groups=num_groups, rng=rng,
        )
        assign_slice_points(self)

    def forward(self, tokens: np.ndarray) -> Tensor:
        """``(T, B)`` token ids to ``(T, B, vocab)`` log-probabilities."""
        steps, batch = tokens.shape
        if steps > self.max_seq:
            raise ShapeError(
                f"sequence length {steps} exceeds max_seq {self.max_seq}"
            )
        x = self.embedding(tokens)
        x = self.pos(x)
        for block in self.blocks:
            x = block(x)
        x = self.ln_f(x)
        flat = x.reshape(steps * batch, x.shape[-1])
        logits = self.decoder(flat)
        return log_softmax(logits, axis=-1).reshape(
            steps, batch, self.vocab_size
        )

    def sequence_nll(self, tokens: np.ndarray, targets: np.ndarray) -> Tensor:
        """Mean per-token negative log-likelihood of ``targets``."""
        log_probs = self.forward(tokens)
        steps, batch = targets.shape
        flat = log_probs.reshape(steps * batch, self.vocab_size)
        picked = flat[np.arange(steps * batch), targets.reshape(-1)]
        return -(picked.sum() * (1.0 / (steps * batch)))

    def kv_cache_bytes(self, profile=1.0, max_seq: int | None = None,
                       dtype_bytes: int = 4) -> int:
        """Per-session KV-cache footprint at ``profile``.

        ``layers x heads(profile) x d_k x max_seq x 2`` float32 entries:
        only the *active* heads of each block are cached, so narrower
        profiles admit more resident sessions per node.
        """
        profile = as_profile(profile)
        seq = self.max_seq if max_seq is None else int(max_seq)
        total = 0
        for block in self.blocks:
            attn = block.attn
            heads = attn.active_heads(profile.rate_for(attn.slice_point))
            total += heads * attn.head_dim * seq * 2 * dtype_bytes
        return total

    def new_session(self, profile=1.0,
                    max_seq: int | None = None) -> "DecoderSession":
        """An incremental decoding session with its own KV cache."""
        return DecoderSession(self, profile, max_seq)


class DecoderSession:
    """Per-session incremental decoding state for :class:`TransformerLM`.

    Snapshots the profile's prefix weights once, then decodes one token
    at a time against a preallocated per-layer key/value cache — each
    step costs O(T) attention instead of the O(T²) full re-forward.  The
    cache holds only the active heads, so :attr:`kv_bytes` matches
    ``TransformerLM.kv_cache_bytes`` for the same profile.
    """

    def __init__(self, model: TransformerLM, profile=1.0,
                 max_seq: int | None = None):
        profile = as_profile(profile)
        self.profile = profile
        self.max_seq = model.max_seq if max_seq is None else int(max_seq)
        self.vocab_size = model.vocab_size
        width = model.embedding.active_width(
            profile.rate_for(model.embedding.slice_point))
        self.width = width
        self.embed = model.embedding.weight.data[:, :width].copy()
        self.pos = model.pos.weight.data[:self.max_seq, :width].copy()
        self.layers: list[dict] = []
        for block in model.blocks:
            attn = block.attn
            heads = attn.active_heads(profile.rate_for(attn.slice_point))
            head_dim = attn.head_dim
            rows = 3 * heads * head_dim
            ffn = block.fc1.out_partition.width_for(
                profile.rate_for(block.fc1.slice_point))
            fc2_out = block.fc2.out_partition.width_for(
                profile.rate_for(block.fc2.slice_point))
            if fc2_out != width:
                raise ShapeError(
                    f"profile gives fc2 width {fc2_out} but the residual "
                    f"stream is {width} wide"
                )
            self.layers.append({
                "eps": block.ln1.eps,
                "ln1_g": block.ln1.weight.data[:width].copy(),
                "ln1_b": block.ln1.bias.data[:width].copy(),
                "qkv_w": attn.qkv_weight.data[:rows, :width].copy(),
                "qkv_b": attn.qkv_bias.data[:rows].copy(),
                "proj_w": attn.proj_weight.data[:width,
                                                :heads * head_dim].copy(),
                "proj_b": attn.proj_bias.data[:width].copy(),
                "ln2_g": block.ln2.weight.data[:width].copy(),
                "ln2_b": block.ln2.bias.data[:width].copy(),
                "fc1_w": block.fc1.weight.data[:ffn, :width].copy(),
                "fc1_b": block.fc1.bias.data[:ffn].copy(),
                "fc2_w": block.fc2.weight.data[:width, :ffn].copy(),
                "fc2_b": block.fc2.bias.data[:width].copy(),
                "heads": heads,
                "head_dim": head_dim,
                "k": np.zeros((heads, self.max_seq, head_dim),
                              dtype=np.float32),
                "v": np.zeros((heads, self.max_seq, head_dim),
                              dtype=np.float32),
            })
        self.ln_f_g = model.ln_f.weight.data[:width].copy()
        self.ln_f_b = model.ln_f.bias.data[:width].copy()
        self.ln_f_eps = model.ln_f.eps
        self.dec_w = model.decoder.weight.data[:, :width].copy()
        self.dec_b = model.decoder.bias.data.copy()
        self.length = 0

    @property
    def kv_bytes(self) -> int:
        """Bytes held by this session's key/value cache."""
        return sum(layer["k"].nbytes + layer["v"].nbytes
                   for layer in self.layers)

    def append(self, token: int) -> np.ndarray:
        """Feed one token; returns ``(vocab,)`` next-token log-probs."""
        t = self.length
        if t >= self.max_seq:
            raise ShapeError(
                f"session is full ({self.max_seq} tokens); start a new one"
            )
        x = self.embed[int(token)] + self.pos[t]
        for layer in self.layers:
            heads, head_dim = layer["heads"], layer["head_dim"]
            hx = layer_norm_eval(x, layer["ln1_g"], layer["ln1_b"],
                                 layer["eps"])
            qkv = (layer["qkv_w"] @ hx + layer["qkv_b"]).reshape(
                heads, 3, head_dim)
            layer["k"][:, t] = qkv[:, 1]
            layer["v"][:, t] = qkv[:, 2]
            scale = 1.0 / np.sqrt(head_dim)
            keys = layer["k"][:, :t + 1]
            values = layer["v"][:, :t + 1]
            scores = np.einsum("hd,htd->ht", qkv[:, 0], keys) * scale
            attn = softmax_eval(scores)
            ctx = np.einsum("ht,htd->hd", attn, values)
            x = x + (layer["proj_w"] @ ctx.reshape(-1) + layer["proj_b"])
            hx2 = layer_norm_eval(x, layer["ln2_g"], layer["ln2_b"],
                                  layer["eps"])
            hidden = np.maximum(layer["fc1_w"] @ hx2 + layer["fc1_b"], 0.0)
            x = x + (layer["fc2_w"] @ hidden + layer["fc2_b"])
        self.length = t + 1
        final = layer_norm_eval(x, self.ln_f_g, self.ln_f_b, self.ln_f_eps)
        logits = self.dec_w @ final + self.dec_b
        shifted = logits - logits.max()
        return shifted - np.log(np.exp(shifted).sum())


def transformer_search_points(model) -> list[str]:
    """The slice points budget search may vary on a transformer.

    Attention head counts and ``fc1`` hidden widths are free axes; the
    width controller and ``fc2`` must stay at the profile default so the
    residual stream keeps one consistent width.
    """
    names = []
    for name, module in named_slice_points(model):
        if isinstance(module, MultiHeadSelfAttention):
            names.append(name)
        elif isinstance(module, SlicedLinear) and name.endswith("fc1"):
            names.append(name)
    return names


def head_ffn_profile(model, head_rate: float, ffn_rate: float,
                     default: float = 1.0) -> LayerProfile:
    """Algorithm 1 profile over the head-count x FFN-width grid.

    Assigns ``head_rate`` to every attention slice point and ``ffn_rate``
    to every ``fc1``, leaving the residual width at ``default`` — the
    2-axis family the multi-rate trainer samples from.
    """
    rates: dict[str, float] = {}
    for name, module in named_slice_points(model):
        if isinstance(module, MultiHeadSelfAttention):
            rates[name] = head_rate
        elif isinstance(module, SlicedLinear) and name.endswith("fc1"):
            rates[name] = ffn_rate
    return LayerProfile(rates, default=default)
