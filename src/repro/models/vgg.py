"""Sliceable VGG-family convolutional networks.

The paper's VGG-13/VGG-16 configurations (Table 3) are plain 3x3 conv
stacks with max pooling between stages.  Every conv is followed by a
:class:`~repro.slicing.layers.SlicedGroupNorm` and ReLU; the stem conv
keeps ``slice_input=False`` and the classifier head keeps
``slice_output=False``.

Besides the paper-size configurations (used for the Table 3 config dump),
CPU-scale factories (``cifar_mini``) produce the same topology at widths
that train in seconds, which is what the experiment benches use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module
from ..nn.pooling import GlobalAvgPool2d, MaxPool2d
from ..slicing.layers import (
    DEFAULT_GROUPS,
    MultiBatchNorm2d,
    SlicedBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
)
from ..slicing.profile import assign_slice_points
from ..tensor import Tensor

#: (channels, conv count) per stage, paper Table 3 (CIFAR variant).
VGG13_PLAN = [(64, 2), (128, 2), (256, 2), (512, 4)]
#: ImageNet variant of Table 3.
VGG16_PLAN = [(64, 3), (128, 3), (256, 3), (512, 3), (512, 3)]


class SlicedVGG(Module):
    """VGG-style plain conv network with model slicing.

    Parameters
    ----------
    plan:
        Sequence of ``(channels, num_convs)`` stage descriptions.  A max
        pool (2x2) separates consecutive stages.
    in_channels, num_classes:
        Input image channels and output classes.
    num_groups:
        Slice-group count ``G`` shared by every sliced layer.
    norm:
        ``"group"`` (the paper's choice), ``"batch"`` (naive single-stats
        BN, the ablation baseline) or ``"multi_bn"`` (SlimmableNet-style;
        requires ``rates``).
    rates:
        Candidate slice rates, needed only for ``norm="multi_bn"``.
    """

    def __init__(self, plan: Sequence[tuple[int, int]], in_channels: int = 3,
                 num_classes: int = 10, num_groups: int = DEFAULT_GROUPS,
                 norm: str = "group", rates: Sequence[float] | None = None,
                 seed: int = 0):
        super().__init__()
        if not plan:
            raise ConfigError("SlicedVGG plan must not be empty")
        if norm not in ("group", "batch", "multi_bn"):
            raise ConfigError(f"unknown norm {norm!r}")
        if norm == "multi_bn" and not rates:
            raise ConfigError("multi_bn requires candidate rates")
        rng = np.random.default_rng(seed)
        self.plan = [(int(c), int(n)) for c, n in plan]
        self.num_classes = num_classes
        self.norm_kind = norm
        self._ops: list[tuple[str, Module]] = []

        def make_norm(channels: int) -> Module:
            if norm == "group":
                return SlicedGroupNorm(channels, num_groups=num_groups)
            if norm == "batch":
                return SlicedBatchNorm2d(channels)
            return MultiBatchNorm2d(channels, list(rates),
                                    num_groups=num_groups)

        index = 0
        previous = in_channels
        first = True
        for stage, (channels, convs) in enumerate(self.plan):
            for _ in range(convs):
                conv = SlicedConv2d(
                    previous, channels, 3, stride=1, padding=1,
                    slice_input=not first, num_groups=num_groups, rng=rng,
                )
                first = False
                self.register_module(f"conv{index}", conv)
                self._ops.append(("conv", conv))
                norm_layer = make_norm(channels)
                self.register_module(f"norm{index}", norm_layer)
                self._ops.append(("norm", norm_layer))
                previous = channels
                index += 1
            if stage != len(self.plan) - 1:
                pool = MaxPool2d(2)
                self.register_module(f"pool{stage}", pool)
                self._ops.append(("pool", pool))
        self.global_pool = GlobalAvgPool2d()
        self.head = SlicedLinear(
            previous, num_classes, slice_input=True, slice_output=False,
            rescale=True, num_groups=num_groups, rng=rng,
        )
        assign_slice_points(self)

    def forward(self, x: Tensor) -> Tensor:
        for kind, op in self._ops:
            x = op(x)
            if kind == "norm":
                x = x.relu()
        x = self.global_pool(x)
        return self.head(x)

    def group_norm_layers(self) -> list[SlicedGroupNorm]:
        """All GN layers in network order (Figure 6 telemetry)."""
        return [op for kind, op in self._ops
                if kind == "norm" and isinstance(op, SlicedGroupNorm)]

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def vgg13(cls, num_classes: int = 10, **kwargs) -> "SlicedVGG":
        """Paper-size VGG-13 (Table 3, CIFAR column)."""
        return cls(VGG13_PLAN, num_classes=num_classes, **kwargs)

    @classmethod
    def vgg16(cls, num_classes: int = 1000, **kwargs) -> "SlicedVGG":
        """Paper-size VGG-16 (Table 3, ImageNet column)."""
        return cls(VGG16_PLAN, num_classes=num_classes, **kwargs)

    @classmethod
    def cifar_mini(cls, num_classes: int = 8, width: int = 16,
                   convs_per_stage: int = 2, stages: int = 3,
                   **kwargs) -> "SlicedVGG":
        """CPU-scale VGG: same topology family, trains in seconds.

        ``width`` is the first stage's channel count; each later stage
        doubles it, mirroring the paper's progression.
        """
        plan = [(width * (2 ** s), convs_per_stage) for s in range(stages)]
        return cls(plan, num_classes=num_classes, **kwargs)
