"""Sliceable pre-activation ResNet with bottleneck blocks.

Follows the paper's Table 3 configurations: ResNet-164 / ResNet-56-2 on
CIFAR and ResNet-50 on ImageNet, all built from the pre-activation
bottleneck ``conv1x1 - conv3x3 - conv1x1`` (He et al., identity mappings).
Slicing applies to every conv's channel groups; identity shortcuts stay
width-consistent because all layers share one slice rate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module, ModuleList
from ..nn.pooling import GlobalAvgPool2d
from ..slicing.layers import (
    DEFAULT_GROUPS,
    MultiBatchNorm2d,
    SlicedBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
)
from ..tensor import Tensor


def _make_norm(channels: int, norm: str, num_groups: int,
               rates: Sequence[float] | None) -> Module:
    if norm == "group":
        return SlicedGroupNorm(channels, num_groups=num_groups)
    if norm == "batch":
        return SlicedBatchNorm2d(channels)
    return MultiBatchNorm2d(channels, list(rates), num_groups=num_groups)


class BottleneckBlock(Module):
    """Pre-activation bottleneck: GN-ReLU-1x1, GN-ReLU-3x3, GN-ReLU-1x1.

    ``expansion = 4``: the block maps ``in_channels`` to
    ``4 * bottleneck_channels``, downsampling in the 3x3 conv when
    ``stride > 1``.  A sliced 1x1 projection handles shape-changing
    shortcuts.
    """

    expansion = 4

    def __init__(self, in_channels: int, bottleneck_channels: int,
                 stride: int = 1, num_groups: int = DEFAULT_GROUPS,
                 norm: str = "group", rates: Sequence[float] | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        out_channels = bottleneck_channels * self.expansion
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.norm1 = _make_norm(in_channels, norm, num_groups, rates)
        self.conv1 = SlicedConv2d(in_channels, bottleneck_channels, 1,
                                  num_groups=num_groups, rng=rng)
        self.norm2 = _make_norm(bottleneck_channels, norm, num_groups, rates)
        self.conv2 = SlicedConv2d(bottleneck_channels, bottleneck_channels, 3,
                                  stride=stride, padding=1,
                                  num_groups=num_groups, rng=rng)
        self.norm3 = _make_norm(bottleneck_channels, norm, num_groups, rates)
        self.conv3 = SlicedConv2d(bottleneck_channels, out_channels, 1,
                                  num_groups=num_groups, rng=rng)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = SlicedConv2d(in_channels, out_channels, 1,
                                         stride=stride,
                                         num_groups=num_groups, rng=rng)
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        pre = self.norm1(x).relu()
        out = self.conv1(pre)
        out = self.conv2(self.norm2(out).relu())
        out = self.conv3(self.norm3(out).relu())
        identity = self.shortcut(pre) if self.shortcut is not None else x
        return out + identity


class SlicedResNet(Module):
    """Pre-activation bottleneck ResNet with model slicing.

    Parameters
    ----------
    blocks_per_stage:
        Number of bottleneck blocks in each of the (typically three)
        stages.  Stage ``i > 0`` starts with a stride-2 block.
    base_channels:
        Bottleneck width of the first stage; later stages double it.
    widen:
        Width multiplier ``k`` (ResNet-L-k of the paper, e.g. ResNet-56-2).
    """

    def __init__(self, blocks_per_stage: Sequence[int],
                 base_channels: int = 16, widen: int = 1,
                 in_channels: int = 3, num_classes: int = 10,
                 num_groups: int = DEFAULT_GROUPS, norm: str = "group",
                 rates: Sequence[float] | None = None, seed: int = 0):
        super().__init__()
        if not blocks_per_stage:
            raise ConfigError("blocks_per_stage must not be empty")
        if norm not in ("group", "batch", "multi_bn"):
            raise ConfigError(f"unknown norm {norm!r}")
        if norm == "multi_bn" and not rates:
            raise ConfigError("multi_bn requires candidate rates")
        rng = np.random.default_rng(seed)
        self.blocks_per_stage = list(blocks_per_stage)
        self.base_channels = base_channels
        self.widen = widen
        self.num_classes = num_classes

        width = base_channels * widen
        self.stem = SlicedConv2d(in_channels, width, 3, padding=1,
                                 slice_input=False, num_groups=num_groups,
                                 rng=rng)
        self.blocks = ModuleList()
        current = width
        for stage, count in enumerate(self.blocks_per_stage):
            channels = base_channels * widen * (2 ** stage)
            for block_idx in range(count):
                stride = 2 if stage > 0 and block_idx == 0 else 1
                block = BottleneckBlock(
                    current, channels, stride=stride, num_groups=num_groups,
                    norm=norm, rates=rates, rng=rng,
                )
                self.blocks.append(block)
                current = block.out_channels
        self.final_norm = _make_norm(current, norm, num_groups, rates)
        self.global_pool = GlobalAvgPool2d()
        self.head = SlicedLinear(current, num_classes, slice_input=True,
                                 slice_output=False, rescale=True,
                                 num_groups=num_groups, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        for block in self.blocks:
            x = block(x)
        x = self.final_norm(x).relu()
        x = self.global_pool(x)
        return self.head(x)

    def stage_outputs(self, x: Tensor) -> list[Tensor]:
        """Features at each stage boundary (used by early-exit baselines)."""
        outputs = []
        x = self.stem(x)
        boundaries = set(np.cumsum(self.blocks_per_stage) - 1)
        for i, block in enumerate(self.blocks):
            x = block(x)
            if i in boundaries:
                outputs.append(x)
        return outputs

    @property
    def depth(self) -> int:
        """Layer count in the paper's ``ResNet-L`` naming (3 convs per block)."""
        return 3 * sum(self.blocks_per_stage) + 2

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def resnet164(cls, num_classes: int = 10, **kwargs) -> "SlicedResNet":
        """Paper-size ResNet-164: 18 bottleneck blocks per stage."""
        return cls([18, 18, 18], base_channels=16, num_classes=num_classes,
                   **kwargs)

    @classmethod
    def resnet56_2(cls, num_classes: int = 10, **kwargs) -> "SlicedResNet":
        """Paper-size ResNet-56-2: 6 blocks per stage, doubled width."""
        return cls([6, 6, 6], base_channels=16, widen=2,
                   num_classes=num_classes, **kwargs)

    @classmethod
    def cifar_mini(cls, num_classes: int = 8, blocks: int = 2,
                   base_channels: int = 8, widen: int = 1,
                   **kwargs) -> "SlicedResNet":
        """CPU-scale ResNet: same block structure at training-in-seconds size."""
        return cls([blocks, blocks], base_channels=base_channels,
                   widen=widen, num_classes=num_classes, **kwargs)
