"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class GradError(ReproError):
    """Autograd misuse, e.g. backward on a tensor that has no graph."""


class SliceRateError(ReproError):
    """An invalid slice rate or slice-rate list was supplied."""


class SchedulingError(ReproError):
    """A slice-rate scheduling scheme was misconfigured."""


class BudgetError(ReproError):
    """A resource budget cannot be satisfied by any valid slice rate."""


class ConfigError(ReproError):
    """A model or component was constructed with invalid configuration."""


class DataError(ReproError):
    """A dataset or loader was asked for something it cannot provide."""


class ServingError(ReproError):
    """The serving simulator or controller hit an invalid state."""


class PlanError(ReproError):
    """An inference plan could not be compiled or was misused."""
