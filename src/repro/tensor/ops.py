"""Structured differentiable operations: convolution, pooling, embedding.

The convolution is implemented with im2col + matmul, which is the right
trade-off for a single-core numpy substrate: one BLAS call per layer does
the heavy lifting, and the backward pass reuses the same column buffer.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .profile import profiling_active, record_flops
from .tensor import Tensor


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ShapeError(f"expected an int or a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: tuple[int, int], padding: tuple[int, int]
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``x`` (B, C, H, W) into columns (B, C*kh*kw, Hout*Wout)."""
    batch, channels, height, width = x.shape
    ph, pw = padding
    sh, sw = stride
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    h_out = (x.shape[2] - kh) // sh + 1
    w_out = (x.shape[3] - kw) // sw + 1
    if h_out <= 0 or w_out <= 0:
        raise ShapeError(
            f"conv output would be empty for input {x.shape}, kernel ({kh},{kw})"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]
    # (B, C, Hout, Wout, kh, kw) -> (B, C, kh, kw, Hout, Wout)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels * kh * kw, h_out * w_out
    )
    return np.ascontiguousarray(cols), (h_out, w_out)


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: tuple[int, int],
    padding: tuple[int, int],
    out_hw: tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add columns back into an image."""
    batch, channels, height, width = x_shape
    ph, pw = padding
    sh, sw = stride
    h_out, w_out = out_hw
    padded = np.zeros(
        (batch, channels, height + 2 * ph, width + 2 * pw), dtype=cols.dtype
    )
    cols = cols.reshape(batch, channels, kh, kw, h_out, w_out)
    for i in range(kh):
        i_end = i + sh * h_out
        for j in range(kw):
            j_end = j + sw * w_out
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph : ph + height, pw : pw + width]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0) -> Tensor:
    """2D convolution over an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError("conv2d expects 4D input and 4D weight")
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ShapeError(
            f"conv2d input has {x.shape[1]} channels but weight expects {c_in}"
        )
    cols, (h_out, w_out) = _im2col(x.data, kh, kw, stride, padding)
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    out = w_mat @ cols  # (B, C_out, Hout*Wout) via broadcasting over batch
    out = out.reshape(x.shape[0], c_out, h_out, w_out)
    if profiling_active():
        record_flops(
            "conv2d", x.shape[0] * c_out * c_in * kh * kw * h_out * w_out
        )
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = [x, weight] if bias is None else [x, weight, bias]
    x_shape = x.shape

    def backward(grad):
        grad_mat = grad.reshape(grad.shape[0], c_out, h_out * w_out)
        grad_w = np.einsum("boL,bkL->ok", grad_mat, cols, optimize=True)
        grad_w = grad_w.reshape(weight.shape)
        grad_cols = w_mat.T @ grad_mat  # (B, C_in*kh*kw, L)
        grad_x = _col2im(grad_cols, x_shape, kh, kw, stride, padding, (h_out, w_out))
        if bias is None:
            return (grad_x, grad_w)
        grad_b = grad.sum(axis=(0, 2, 3))
        return (grad_x, grad_w, grad_b)

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping max pooling with square kernel ``kernel_size``."""
    k = int(kernel_size)
    batch, channels, height, width = x.shape
    if height % k or width % k:
        raise ShapeError(f"max_pool2d: spatial dims {height}x{width} not divisible by {k}")
    h_out, w_out = height // k, width // k
    view = x.data.reshape(batch, channels, h_out, k, w_out, k)
    out = view.max(axis=(3, 5))
    mask = view == out[:, :, :, None, :, None]
    counts = mask.sum(axis=(3, 5), keepdims=True)

    def backward(grad):
        g = grad[:, :, :, None, :, None] / counts
        return ((mask * g).reshape(batch, channels, height, width),)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping average pooling with square kernel ``kernel_size``."""
    k = int(kernel_size)
    batch, channels, height, width = x.shape
    if height % k or width % k:
        raise ShapeError(f"avg_pool2d: spatial dims {height}x{width} not divisible by {k}")
    h_out, w_out = height // k, width // k
    view = x.data.reshape(batch, channels, h_out, k, w_out, k)
    out = view.mean(axis=(3, 5))
    scale = 1.0 / (k * k)

    def backward(grad):
        g = np.broadcast_to(
            grad[:, :, :, None, :, None] * scale,
            (batch, channels, h_out, k, w_out, k),
        )
        return (g.reshape(batch, channels, height, width).astype(x.dtype, copy=False),)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions, returning ``(B, C)``."""
    return x.mean(axis=(2, 3))


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` at ``indices`` (any integer-array shape).

    Returns a tensor of shape ``indices.shape + (embed_dim,)``.
    """
    idx = np.asarray(indices)
    if idx.dtype.kind not in "iu":
        raise ShapeError("embedding indices must be integers")
    vocab = weight.shape[0]
    if idx.size and (idx.min() < 0 or idx.max() >= vocab):
        raise ShapeError("embedding index out of range")
    out = weight.data[idx]

    def backward(grad):
        grad_w = np.zeros_like(weight.data)
        np.add.at(grad_w, idx.reshape(-1), grad.reshape(-1, grad.shape[-1]))
        return (grad_w,)

    return Tensor._make(out, (weight,), backward)


def pad2d(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the two trailing spatial dimensions by ``pad`` on each side."""
    p = int(pad)
    if p == 0:
        return x
    out = np.pad(x.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad):
        return (grad[:, :, p:-p, p:-p],)

    return Tensor._make(out, (x,), backward)


def pad_channels(x: Tensor, total_channels: int) -> Tensor:
    """Zero-pad the channel dimension of an NCHW tensor up to ``total_channels``.

    Used by residual shortcuts when a sliced block emits fewer channels
    than its identity path expects.
    """
    current = x.shape[1]
    if current == total_channels:
        return x
    if current > total_channels:
        raise ShapeError(
            f"cannot pad {current} channels down to {total_channels}"
        )
    width = total_channels - current
    pads = [(0, 0)] * x.ndim
    pads[1] = (0, width)
    out = np.pad(x.data, pads)

    def backward(grad):
        return (grad[:, :current],)

    return Tensor._make(out, (x,), backward)
