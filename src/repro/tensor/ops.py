"""Structured differentiable operations: convolution, pooling, embedding.

The convolution is implemented with im2col + matmul, which is the right
trade-off for a single-core numpy substrate: one BLAS call per layer does
the heavy lifting, and the backward pass reuses the same column buffer.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..errors import ShapeError
from .profile import profiling_active, record_flops
from .tensor import Tensor
from .workspace import active_workspace


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ShapeError(f"expected an int or a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: tuple[int, int], padding: tuple[int, int]
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``x`` (B, C, H, W) into columns (B, C*kh*kw, Hout*Wout)."""
    batch, channels, height, width = x.shape
    ph, pw = padding
    sh, sw = stride
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    h_out = (x.shape[2] - kh) // sh + 1
    w_out = (x.shape[3] - kw) // sw + 1
    if h_out <= 0 or w_out <= 0:
        raise ShapeError(
            f"conv output would be empty for input {x.shape}, kernel ({kh},{kw})"
        )
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]
    # (B, C, Hout, Wout, kh, kw) -> (B, C, kh, kw, Hout, Wout)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels * kh * kw, h_out * w_out
    )
    return np.ascontiguousarray(cols), (h_out, w_out)


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: tuple[int, int],
    padding: tuple[int, int],
    out_hw: tuple[int, int],
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add columns back into an image."""
    batch, channels, height, width = x_shape
    ph, pw = padding
    sh, sw = stride
    h_out, w_out = out_hw
    padded = np.zeros(
        (batch, channels, height + 2 * ph, width + 2 * pw), dtype=cols.dtype
    )
    cols = cols.reshape(batch, channels, kh, kw, h_out, w_out)
    for i in range(kh):
        i_end = i + sh * h_out
        for j in range(kw):
            j_end = j + sw * w_out
            padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph : ph + height, pw : pw + width]
    return padded


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0) -> Tensor:
    """2D convolution over an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(B, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, kh, kw)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError("conv2d expects 4D input and 4D weight")
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ShapeError(
            f"conv2d input has {x.shape[1]} channels but weight expects {c_in}"
        )
    ws = active_workspace()
    timed = ws is not None and obs.enabled()
    started = obs.clock_now() if timed else None
    w_mat = weight.data.reshape(c_out, c_in * kh * kw)
    if ws is not None:
        # Training fast path: im2col / GEMM output / col2im all come from
        # the pooled arena; values are bitwise identical to the branch
        # below.  The arena object is captured by the backward closure so
        # the buffers stay paired even if backward runs after the
        # use_workspace context exited.
        cols, (h_out, w_out) = ws.im2col(x.data, kh, kw, stride, padding)
        # The pinned-input column cache must never be written to; any
        # other cols buffer can be recycled as the grad_cols scratch in
        # backward (grad_w reads it first).
        cols_writable = x.data is not ws.pinned
        out3 = ws.acquire(
            (x.shape[0], c_out, h_out * w_out),
            np.result_type(w_mat.dtype, cols.dtype),
        )
        np.matmul(w_mat, cols, out=out3)
        out = out3.reshape(x.shape[0], c_out, h_out, w_out)
        if bias is not None:
            out += bias.data.reshape(1, c_out, 1, 1)
    else:
        cols, (h_out, w_out) = _im2col(x.data, kh, kw, stride, padding)
        out = w_mat @ cols  # (B, C_out, Hout*Wout) via broadcasting over batch
        out = out.reshape(x.shape[0], c_out, h_out, w_out)
        if bias is not None:
            out = out + bias.data.reshape(1, c_out, 1, 1)
    if profiling_active():
        record_flops(
            "conv2d", x.shape[0] * c_out * c_in * kh * kw * h_out * w_out
        )
    if timed:
        obs.observe("train_layer_seconds", obs.clock_now() - started,
                    layer="conv2d", phase="forward")

    parents = [x, weight] if bias is None else [x, weight, bias]
    x_shape = x.shape
    needs_grad_x = x.requires_grad

    def backward(grad):
        t0 = obs.clock_now() if ws is not None and obs.enabled() else None
        grad_mat = grad.reshape(grad.shape[0], c_out, h_out * w_out)
        if ws is not None:
            # Batched GEMM into a pooled buffer then reduce over the batch
            # beats the einsum contraction at the large-L early layers.
            bmm = ws.acquire(
                (grad.shape[0], c_out, c_in * kh * kw),
                np.result_type(grad_mat.dtype, cols.dtype),
            )
            np.matmul(grad_mat, cols.transpose(0, 2, 1), out=bmm)
            grad_w = bmm.sum(axis=0).reshape(weight.shape)
        else:
            grad_w = np.einsum("boL,bkL->ok", grad_mat, cols, optimize=True)
            grad_w = grad_w.reshape(weight.shape)
        if ws is not None:
            if needs_grad_x:
                sh, sw = stride
                ph, pw = padding
                if (sh == 1 and sw == 1 and ph < kh and pw < kw
                        and c_in > c_out // 2):
                    # Transposed convolution as a correlation with the
                    # flipped kernel: im2col of the output gradient plus
                    # one GEMM replaces the GEMM + col2im scatter-add.
                    # Wins when the input has enough channels that the
                    # scatter traffic exceeds the grad-unfold copy.
                    gcols, _ = ws.im2col(
                        np.ascontiguousarray(grad), kh, kw, (1, 1),
                        (kh - 1 - ph, kw - 1 - pw))
                    w_flip = weight.data[:, :, ::-1, ::-1].transpose(
                        1, 0, 2, 3).reshape(c_in, c_out * kh * kw)
                    gx3 = ws.acquire(
                        (grad.shape[0], c_in, x_shape[2] * x_shape[3]),
                        np.result_type(w_flip.dtype, gcols.dtype),
                    )
                    np.matmul(w_flip, gcols, out=gx3)
                    grad_x = gx3.reshape(x_shape)
                else:
                    if cols_writable and cols.dtype == np.result_type(
                            w_mat.dtype, grad_mat.dtype):
                        grad_cols = cols  # grad_w above was the last reader
                    else:
                        grad_cols = ws.acquire(
                            (grad.shape[0], c_in * kh * kw, h_out * w_out),
                            np.result_type(w_mat.dtype, grad_mat.dtype),
                        )
                    np.matmul(w_mat.T, grad_mat, out=grad_cols)
                    grad_x = ws.col2im(grad_cols, x_shape, kh, kw, stride,
                                       padding, (h_out, w_out))
            else:
                # The input never receives a gradient (e.g. the stem conv
                # fed by raw images) — skip the GEMM and the scatter.
                grad_x = None
        else:
            grad_cols = w_mat.T @ grad_mat  # (B, C_in*kh*kw, L)
            grad_x = _col2im(grad_cols, x_shape, kh, kw, stride, padding,
                             (h_out, w_out))
        if t0 is not None:
            obs.observe("train_layer_seconds", obs.clock_now() - t0,
                        layer="conv2d", phase="backward")
        if bias is None:
            return (grad_x, grad_w)
        grad_b = grad.sum(axis=(0, 2, 3))
        return (grad_x, grad_w, grad_b)

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping max pooling with square kernel ``kernel_size``."""
    k = int(kernel_size)
    batch, channels, height, width = x.shape
    if height % k or width % k:
        raise ShapeError(f"max_pool2d: spatial dims {height}x{width} not divisible by {k}")
    h_out, w_out = height // k, width // k
    view = x.data.reshape(batch, channels, h_out, k, w_out, k)
    ws = active_workspace()
    if ws is not None:
        # Pairwise maxima/sums over the tap slices produce the same max
        # values and tie counts as the multi-axis reductions (max and
        # integer sums are exact) but avoid numpy's slow tiny-inner-axis
        # reduce loop.  The tie-splitting divisor is kept in the input
        # dtype: the reference divides by integer counts, which NEP-50
        # promotes to float64 and drags every downstream gradient to
        # doubled memory traffic.
        dt = x.data.dtype
        m5 = ws.acquire((batch, channels, h_out, k, w_out), dt)
        np.copyto(m5, view[..., 0])
        for j in range(1, k):
            np.maximum(m5, view[..., j], out=m5)
        out = ws.acquire((batch, channels, h_out, w_out), dt)
        np.copyto(out, m5[:, :, :, 0])
        for i in range(1, k):
            np.maximum(out, m5[:, :, :, i], out=out)
        mask = ws.acquire((batch, channels, h_out, k, w_out, k), np.bool_)
        np.equal(view, out[:, :, :, None, :, None], out=mask)
        c5 = ws.acquire((batch, channels, h_out, k, w_out), np.intp)
        np.copyto(c5, mask[..., 0])
        for j in range(1, k):
            c5 += mask[..., j]
        csmall = c5[:, :, :, 0].astype(np.intp)
        for i in range(1, k):
            csmall += c5[:, :, :, i]
        counts = csmall[:, :, :, None, :, None].astype(dt)
    else:
        out = view.max(axis=(3, 5))
        mask = view == out[:, :, :, None, :, None]
        counts = mask.sum(axis=(3, 5), keepdims=True)

    def backward(grad):
        g = grad[:, :, :, None, :, None] / counts
        if ws is not None:
            buf = ws.acquire(
                (batch, channels, h_out, k, w_out, k), g.dtype)
            np.multiply(mask, g, out=buf)
            return (buf.reshape(batch, channels, height, width),)
        return ((mask * g).reshape(batch, channels, height, width),)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: int) -> Tensor:
    """Non-overlapping average pooling with square kernel ``kernel_size``."""
    k = int(kernel_size)
    batch, channels, height, width = x.shape
    if height % k or width % k:
        raise ShapeError(f"avg_pool2d: spatial dims {height}x{width} not divisible by {k}")
    h_out, w_out = height // k, width // k
    view = x.data.reshape(batch, channels, h_out, k, w_out, k)
    out = view.mean(axis=(3, 5))
    scale = 1.0 / (k * k)

    def backward(grad):
        g = np.broadcast_to(
            grad[:, :, :, None, :, None] * scale,
            (batch, channels, h_out, k, w_out, k),
        )
        return (g.reshape(batch, channels, height, width).astype(x.dtype, copy=False),)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the spatial dimensions, returning ``(B, C)``."""
    return x.mean(axis=(2, 3))


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` at ``indices`` (any integer-array shape).

    Returns a tensor of shape ``indices.shape + (embed_dim,)``.
    """
    idx = np.asarray(indices)
    if idx.dtype.kind not in "iu":
        raise ShapeError("embedding indices must be integers")
    vocab = weight.shape[0]
    if idx.size and (idx.min() < 0 or idx.max() >= vocab):
        raise ShapeError("embedding index out of range")
    out = weight.data[idx]

    def backward(grad):
        grad_w = np.zeros_like(weight.data)
        np.add.at(grad_w, idx.reshape(-1), grad.reshape(-1, grad.shape[-1]))
        return (grad_w,)

    return Tensor._make(out, (weight,), backward)


def pad2d(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the two trailing spatial dimensions by ``pad`` on each side."""
    p = int(pad)
    if p == 0:
        return x
    out = np.pad(x.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad):
        return (grad[:, :, p:-p, p:-p],)

    return Tensor._make(out, (x,), backward)


def pad_channels(x: Tensor, total_channels: int) -> Tensor:
    """Zero-pad the channel dimension of an NCHW tensor up to ``total_channels``.

    Used by residual shortcuts when a sliced block emits fewer channels
    than its identity path expects.
    """
    current = x.shape[1]
    if current == total_channels:
        return x
    if current > total_channels:
        raise ShapeError(
            f"cannot pad {current} channels down to {total_channels}"
        )
    width = total_channels - current
    pads = [(0, 0)] * x.ndim
    pads[1] = (0, width)
    out = np.pad(x.data, pads)

    def backward(grad):
        return (grad[:, :current],)

    return Tensor._make(out, (x,), backward)
