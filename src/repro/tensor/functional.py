"""Composite differentiable functions built on the Tensor primitives."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .fused import fused_cross_entropy
from .tensor import Tensor
from .workspace import active_workspace


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    a = x
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    logsum = np.log(exp.sum(axis=axis, keepdims=True))
    out = shifted - logsum
    softmax_vals = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        return (grad - softmax_vals * grad.sum(axis=axis, keepdims=True),)

    return Tensor._make(out, (a,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets``.

    Parameters
    ----------
    log_probs:
        ``(N, C)`` log-probabilities, e.g. from :func:`log_softmax`.
    targets:
        ``(N,)`` integer class indices.
    """
    targets = np.asarray(targets)
    if log_probs.ndim != 2:
        raise ShapeError("nll_loss expects (N, C) log-probabilities")
    if targets.shape != (log_probs.shape[0],):
        raise ShapeError(
            f"targets shape {targets.shape} does not match batch {log_probs.shape[0]}"
        )
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -(picked.sum() * (1.0 / n))


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``targets``.

    Under an active training workspace (:func:`~repro.tensor.workspace.
    use_workspace`) this dispatches to the single-node fused kernel; the
    forward value is bitwise identical either way.
    """
    if active_workspace() is not None:
        return fused_cross_entropy(logits, targets)
    return nll_loss(log_softmax(logits, axis=-1), targets)


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``rate``, rescale survivors."""
    if not 0.0 <= rate < 1.0:
        raise ShapeError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(x.data * mask, (x,), backward)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``indices`` as a one-hot float array."""
    idx = np.asarray(indices)
    out = np.zeros(idx.shape + (num_classes,), dtype=np.float32)
    np.put_along_axis(out, idx[..., None], 1.0, axis=-1)
    return out


def mse_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return (diff * diff).mean()
