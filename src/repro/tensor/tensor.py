"""Core reverse-mode autograd tensor.

This module implements the minimal-but-complete differentiable tensor the
rest of the library is built on.  A :class:`Tensor` wraps a numpy array and
records, for every produced value, the parent tensors and a closure that
propagates the output gradient to them.  Calling :meth:`Tensor.backward`
runs the closures in reverse topological order.

The design favours explicitness over magic: every differentiable operation
is a plain function or method that builds exactly one graph node.  There is
no tape object and no global state other than the no-grad flag.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from ..errors import GradError, ShapeError
from . import profile as _profile

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used during evaluation to avoid retaining activations.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Summation over the broadcast axes is the adjoint of broadcasting.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(key) -> bool:
    """Whether ``key`` is pure basic indexing (no integer/boolean arrays).

    Basic indexing never selects the same element twice, so the adjoint of
    ``x[key]`` can write with plain assignment instead of ``np.add.at``.
    """
    parts = key if isinstance(key, tuple) else (key,)
    for part in parts:
        if isinstance(part, (int, np.integer, slice)) or part is None \
                or part is Ellipsis:
            continue
        return False
    return True


def _as_array(value, dtype=None) -> np.ndarray:
    arr = np.asarray(value, dtype=dtype if dtype is not None else None)
    if arr.dtype.kind not in "fiu":
        raise ShapeError(f"cannot build a tensor from dtype {arr.dtype}")
    if arr.dtype.kind in "iu" and dtype is None:
        # Integer payloads (labels, indices) are kept as-is; float payloads
        # default to the library dtype.
        return arr
    if dtype is None and arr.dtype != DEFAULT_DTYPE and arr.dtype.kind == "f":
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


class Tensor:
    """A numpy-backed array that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Float payloads are stored with the
        library default dtype (float32) unless ``dtype`` says otherwise.
    requires_grad:
        Whether gradients should flow into this tensor.  Gradients are
        accumulated into :attr:`grad` by :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        self.data = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a graph node from ``parents`` with gradient rule ``backward``."""
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        needs = is_grad_enabled() and any(p.requires_grad for p in parents)
        out.requires_grad = needs
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the objective with respect to this tensor.  May be
            omitted only for scalar tensors, in which case it defaults to 1.
        """
        if not self.requires_grad:
            raise GradError("backward() called on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise GradError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"grad shape {grad.shape} does not match tensor {self.data.shape}"
            )

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        # Keys whose stored gradient is an array we allocated ourselves and
        # may therefore mutate in place.  A first contribution is stored
        # as-is without copying — backward closures routinely hand back
        # views (reshape, split, a no-op unbroadcast) or even the same
        # array for several parents (``x + x``), so it is only after the
        # second contribution forces a fresh out-of-place sum that further
        # contributions can accumulate with ``+=``.
        owned: set[int] = set()
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf tensor: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad += node_grad
                continue
            node._propagate(node_grad, grads, owned)

    def _propagate(
        self,
        node_grad: np.ndarray,
        grads: dict[int, np.ndarray],
        owned: set[int],
    ) -> None:
        """Run the backward closure, routing parent grads into ``grads``."""
        parent_grads = self._backward(node_grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        if len(parent_grads) != len(self._parents):
            raise GradError(
                f"backward produced {len(parent_grads)} grads for "
                f"{len(self._parents)} parents"
            )
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if parent._backward is None:
                # Leaf: accumulate immediately so repeated use sums up.
                # The first copy() makes .grad privately owned, so later
                # contributions may add in place.
                if parent.grad is None:
                    parent.grad = pgrad.copy()
                else:
                    parent.grad += pgrad
            elif key not in grads:
                grads[key] = pgrad
            elif key in owned:
                grads[key] += pgrad
            else:
                grads[key] = grads[key] + pgrad
                owned.add(key)

    def _is_leaf_like(self) -> bool:
        return self._backward is None

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{grad_flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other
        data = a.data + b.data

        def backward(grad):
            return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

        return Tensor._make(data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self):
        a = self
        return Tensor._make(-a.data, (a,), lambda grad: (-grad,))

    def __sub__(self, other):
        return self + (-Tensor._coerce(other))

    def __rsub__(self, other):
        return Tensor._coerce(other) + (-self)

    def __mul__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other
        data = a.data * b.data

        def backward(grad):
            return (
                _unbroadcast(grad * b.data, a.shape),
                _unbroadcast(grad * a.data, b.shape),
            )

        return Tensor._make(data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other
        data = a.data / b.data

        def backward(grad):
            return (
                _unbroadcast(grad / b.data, a.shape),
                _unbroadcast(-grad * a.data / (b.data * b.data), b.shape),
            )

        return Tensor._make(data, (a, b), backward)

    def __rtruediv__(self, other):
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise ShapeError("tensor ** exponent requires a python scalar")
        a = self
        data = a.data ** exponent

        def backward(grad):
            return (grad * exponent * a.data ** (exponent - 1),)

        return Tensor._make(data, (a,), backward)

    def __matmul__(self, other):
        other = Tensor._coerce(other)
        a, b = self, other
        if a.ndim < 2 or b.ndim < 2:
            raise ShapeError("matmul requires tensors with ndim >= 2")
        data = a.data @ b.data
        if _profile.profiling_active():
            _profile.record_flops("matmul", int(data.size) * a.shape[-1])

        def backward(grad):
            grad_a = grad @ np.swapaxes(b.data, -1, -2)
            grad_b = np.swapaxes(a.data, -1, -2) @ grad
            return (_unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape))

        return Tensor._make(data, (a, b), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        old_shape = a.shape
        data = a.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(old_shape),)

        return Tensor._make(data, (a,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        a = self
        inverse = np.argsort(axes)
        data = a.data.transpose(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (a,), backward)

    def __getitem__(self, key) -> "Tensor":
        a = self
        data = a.data[key]
        full_shape = a.shape
        dtype = a.data.dtype
        basic = _is_basic_index(key)

        def backward(grad):
            out = np.zeros(full_shape, dtype=dtype)
            if basic:
                # Basic indexing selects each element at most once, so a
                # plain assignment replaces the much slower buffered
                # np.add.at scatter.
                out[key] = grad
            else:
                np.add.at(out, key, grad)
            return (out,)

        return Tensor._make(data, (a,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.sum(axis=axis, keepdims=keepdims)
        shape = a.shape

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, shape).astype(a.data.dtype, copy=False),)

        return Tensor._make(np.asarray(data), (a,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for ax in axes:
                count *= self.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims).scale(1.0 / count)

    def scale(self, factor: float) -> "Tensor":
        """Multiply by a python scalar without dtype coercion."""
        a = self
        data = a.data * factor

        def backward(grad):
            return (grad * factor,)

        return Tensor._make(data, (a,), backward)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.max(axis=axis, keepdims=True)
        mask = (a.data == data)
        counts = mask.sum(axis=axis, keepdims=True)
        out = data if keepdims else np.squeeze(data, axis=axis)

        def backward(grad):
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            return ((mask * (g / counts)).astype(a.data.dtype, copy=False),)

        return Tensor._make(out, (a,), backward)

    # ------------------------------------------------------------------
    # Elementwise transcendental
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        a = self
        data = np.exp(a.data)

        def backward(grad):
            return (grad * data,)

        return Tensor._make(data, (a,), backward)

    def log(self) -> "Tensor":
        a = self
        data = np.log(a.data)

        def backward(grad):
            return (grad / a.data,)

        return Tensor._make(data, (a,), backward)

    def sqrt(self) -> "Tensor":
        a = self
        data = np.sqrt(a.data)

        def backward(grad):
            return (grad * (0.5 / data),)

        return Tensor._make(data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        data = np.tanh(a.data)

        def backward(grad):
            return (grad * (1.0 - data * data),)

        return Tensor._make(data, (a,), backward)

    def sigmoid(self) -> "Tensor":
        a = self
        data = 1.0 / (1.0 + np.exp(-a.data))

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (a,), backward)

    def abs(self) -> "Tensor":
        a = self
        sign = np.sign(a.data)
        data = a.data * sign

        def backward(grad):
            return (grad * sign,)

        return Tensor._make(data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0
        data = a.data * mask

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (a,), backward)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    parts = [Tensor._coerce(t) for t in tensors]
    if not parts:
        raise ShapeError("concat() of an empty sequence")
    data = np.concatenate([p.data for p in parts], axis=axis)
    sizes = [p.shape[axis] for p in parts]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, splits, axis=axis))

    return Tensor._make(data, parts, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    parts = [Tensor._coerce(t) for t in tensors]
    if not parts:
        raise ShapeError("stack() of an empty sequence")
    data = np.stack([p.data for p in parts], axis=axis)

    def backward(grad):
        slabs = np.split(grad, len(parts), axis=axis)
        return tuple(np.squeeze(s, axis=axis) for s in slabs)

    return Tensor._make(data, parts, backward)
