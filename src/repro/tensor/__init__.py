"""Reverse-mode autograd tensor engine over numpy.

This subpackage is the computational substrate for the whole library: a
:class:`~repro.tensor.tensor.Tensor` type with broadcasting arithmetic,
matmul, im2col convolution, pooling, embedding lookup, and the composite
functions (softmax, losses, dropout) the models are built from.
"""

from .tensor import Tensor, concat, is_grad_enabled, no_grad, stack
from .ops import (
    avg_pool2d,
    conv2d,
    embedding,
    global_avg_pool2d,
    max_pool2d,
    pad2d,
    pad_channels,
)
from .functional import (
    cross_entropy,
    dropout,
    log_softmax,
    mse_loss,
    nll_loss,
    one_hot,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from .fused import fused_cross_entropy, fused_group_norm
from .gradcheck import check_gradients, numeric_gradient
from .profile import FlopCounter, count_flops, profiling_active, record_flops
from .shared import ArenaManifest, SharedArena, shm_segments
from .workspace import WorkspaceArena, active_workspace, use_workspace

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "no_grad",
    "is_grad_enabled",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "embedding",
    "pad2d",
    "pad_channels",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "dropout",
    "one_hot",
    "mse_loss",
    "fused_cross_entropy",
    "fused_group_norm",
    "WorkspaceArena",
    "active_workspace",
    "use_workspace",
    "SharedArena",
    "ArenaManifest",
    "shm_segments",
    "check_gradients",
    "numeric_gradient",
    "FlopCounter",
    "count_flops",
    "profiling_active",
    "record_flops",
]
