"""Numeric gradient checking for tests.

Central differences in float64 against the analytic gradients produced by
:meth:`Tensor.backward`.  Used heavily in the test suite and exposed
publicly because downstream users extending the op set need it too.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(func(inputs).data.sum())
        flat[i] = original - eps
        lower = float(func(inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-5,
) -> None:
    """Assert analytic gradients of ``func`` match numeric ones.

    ``inputs`` should be float64 tensors with ``requires_grad=True`` for
    every argument whose gradient is being checked.

    Raises
    ------
    AssertionError
        If any analytic gradient deviates from the numeric estimate.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = func(inputs)
    out.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad
        assert analytic is not None, f"input {i} received no gradient"
        numeric = numeric_gradient(func, inputs, i, eps=eps)
        np.testing.assert_allclose(
            analytic, numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
