"""Fused forward/backward kernels for the training fast path.

The reference layers compose a dozen elementwise autograd nodes for group
normalization and softmax cross-entropy; every node allocates its output
and its gradient.  These kernels compute the same functions as a *single*
graph node each, with analytically derived gradients.

Numerical contract
------------------
Forward values are **bitwise identical** to the composed reference: each
kernel replays the reference's numpy operations in the same order with
the same scalar types (python-float scale factors, ``np.float32`` eps —
matching ``Tensor._coerce``).  Backward values are the analytic gradients
of the same function; they agree with the composed autograd to float32
rounding (and with finite differences via the gradcheck sweep), but are
not bit-for-bit the same chain of roundings.

GroupNorm input gradient (per group of ``K`` elements, ``s =
(var+eps)^{-1/2}``, ``yhat = centered * s``)::

    dx = s * (g - mean(g) - yhat * mean(g * yhat))

which is exact including the eps term, since ``d var/dx_j = 2 c_j / K``.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..errors import ShapeError
from .tensor import Tensor
from .workspace import active_workspace

__all__ = ["fused_cross_entropy", "fused_group_norm"]


def fused_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax + mean cross-entropy as one node with analytic gradient.

    Bitwise-matches ``nll_loss(log_softmax(logits), targets)`` in the
    forward; the backward is the closed form ``(softmax - onehot) *
    (g / n)`` instead of the three-node composed chain.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ShapeError("nll_loss expects (N, C) log-probabilities")
    if targets.shape != (logits.shape[0],):
        raise ShapeError(
            f"targets shape {targets.shape} does not match batch "
            f"{logits.shape[0]}"
        )
    n = logits.shape[0]
    timed = obs.enabled()
    started = obs.clock_now() if timed else None
    x = logits.data
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    sums = exp.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(sums)
    picked = log_probs[np.arange(n), targets]
    loss = np.asarray(-(picked.sum() * (1.0 / n)))
    softmax = exp / sums
    if timed:
        obs.observe("train_layer_seconds", obs.clock_now() - started,
                    layer="cross_entropy", phase="forward")

    def backward(grad):
        t0 = obs.clock_now() if obs.enabled() else None
        coef = grad * (1.0 / n)
        out = softmax * coef
        out[np.arange(n), targets] -= coef
        if t0 is not None:
            obs.observe("train_layer_seconds", obs.clock_now() - t0,
                        layer="cross_entropy", phase="backward")
        return (out,)

    return Tensor._make(loss, (logits,), backward)


def fused_group_norm(x: Tensor, weight: Tensor | None, bias: Tensor | None,
                     groups: int, eps: float) -> Tensor:
    """Group normalization as one node with analytic gradients.

    ``weight``/``bias`` are the per-channel affine tensors matching
    ``x.shape[1]`` — for sliced layers, pass the prefix views so their
    ``__getitem__`` backward routes the gradient into the full parameter.
    """
    batch = x.shape[0]
    channels = x.shape[1]
    spatial = x.shape[2:]
    flat = int(np.prod(spatial, dtype=int)) if spatial else 1
    group_size = channels // groups
    k = group_size * flat
    timed = obs.enabled()
    started = obs.clock_now() if timed else None
    ws = active_workspace()
    grouped = x.data.reshape(batch, groups, k)
    mean = grouped.sum(axis=2, keepdims=True)
    mean *= 1.0 / k
    dt = mean.dtype
    if ws is not None:
        # Pooled buffers, same operations in the same order: the forward
        # stays bitwise identical to the composed reference while the
        # full-size temporaries come from the arena.
        centered = ws.acquire((batch, groups, k), dt)
        np.subtract(grouped, mean, out=centered)
        sq = ws.acquire((batch, groups, k), dt)
        np.multiply(centered, centered, out=sq)
        var = sq.sum(axis=2, keepdims=True)
        var *= 1.0 / k
        inv_std = (var + np.float32(eps)) ** -0.5
        yhat = centered  # centered is not needed once yhat exists
        np.multiply(centered, inv_std, out=yhat)
    else:
        centered = grouped - mean
        var = (centered * centered).sum(axis=2, keepdims=True) * (1.0 / k)
        inv_std = (var + np.float32(eps)) ** -0.5
        yhat = centered * inv_std
    normed = yhat.reshape((batch, channels) + spatial)
    affine_shape = (1, channels) + (1,) * len(spatial)
    if weight is not None:
        gamma = weight.data.reshape(affine_shape)
        if ws is not None:
            out = ws.acquire(x.shape, np.result_type(dt, gamma.dtype))
            np.multiply(normed, gamma, out=out)
            out += bias.data.reshape(affine_shape)
        else:
            out = normed * gamma + bias.data.reshape(affine_shape)
        parents = (x, weight, bias)
    else:
        gamma = None
        out = normed
        parents = (x,)
    reduce_axes = (0,) + tuple(range(2, 2 + len(spatial)))
    if timed:
        obs.observe("train_layer_seconds", obs.clock_now() - started,
                    layer="group_norm", phase="forward")

    def backward(grad):
        t0 = obs.clock_now() if obs.enabled() else None
        if ws is not None:
            # Two-stage reductions (contiguous inner axis first, then the
            # small outer one) replace the strided multi-axis sums, and
            # every full-size temporary is pooled.
            bdt = np.result_type(grad.dtype, dt)
            g3 = grad.reshape(batch, channels, flat)
            tmp = ws.acquire((batch, channels, flat), bdt)
            tmpg = tmp.reshape(batch, groups, k)
            if gamma is None:
                grad_w = grad_b = None
                gg = grad.reshape(batch, groups, k)
                dxb = ws.acquire((batch, groups, k), bdt)
            else:
                grad_b = g3.sum(axis=2).sum(axis=0)
                np.multiply(g3, normed.reshape(batch, channels, flat),
                            out=tmp)
                grad_w = tmp.sum(axis=2).sum(axis=0)
                ggb = ws.acquire((batch, channels, flat), bdt)
                np.multiply(g3, gamma.reshape(1, channels, 1), out=ggb)
                gg = ggb.reshape(batch, groups, k)
                dxb = gg  # elementwise chain below may overwrite gg
            m1 = gg.sum(axis=2, keepdims=True)
            m1 *= 1.0 / k
            np.multiply(gg, yhat, out=tmpg)
            m2 = tmpg.sum(axis=2, keepdims=True)
            m2 *= 1.0 / k
            np.multiply(yhat, m2, out=tmpg)
            np.subtract(gg, m1, out=dxb)
            dxb -= tmpg
            dxb *= inv_std
            dx = dxb.reshape(x.shape)
        else:
            if gamma is None:
                grad_w = grad_b = None
                gg = grad.reshape(batch, groups, k)
            else:
                grad_b = grad.sum(axis=reduce_axes)
                grad_w = (grad * normed).sum(axis=reduce_axes)
                gg = (grad * gamma).reshape(batch, groups, k)
            m1 = gg.sum(axis=2, keepdims=True) * (1.0 / k)
            m2 = (gg * yhat).sum(axis=2, keepdims=True) * (1.0 / k)
            dx = (inv_std * (gg - m1 - yhat * m2)).reshape(x.shape)
        if t0 is not None:
            obs.observe("train_layer_seconds", obs.clock_now() - t0,
                        layer="group_norm", phase="backward")
        if gamma is None:
            return (dx,)
        return (dx, grad_w, grad_b)

    return Tensor._make(out, parents, backward)
