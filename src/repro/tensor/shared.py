"""Shared-memory weight arenas for multi-process serving.

The prefix-nesting property (Eq. 2 of the paper) means the widest-rate
weights are the *only* weights: every slice profile reads a leading
block of the same arrays.  A :class:`SharedArena` therefore packs a
model's full-rate parameters (and batch-norm running stats) into one
``multiprocessing.shared_memory`` segment, and every worker process
maps that segment zero-copy — no per-worker weight copies, no pickling
of arrays on the request path.

Layout of the segment::

    [ versions : int64[slots] ][ pad to 64 ][ array 0 ][ pad ][ array 1 ] ...

The *versions block* carries the per-:class:`~repro.nn.module.Parameter`
monotone version counters across the process boundary: the parent
:meth:`~SharedArena.publish`-es its counters after mutating weights, and
workers :meth:`~SharedArena.refresh` before serving, adopting any new
counter via :meth:`Parameter.sync_version`.  The existing
:class:`~repro.slicing.plans.PlanCache` staleness check then fires in
the worker exactly as it would in-process, recompiling stale plans
before the next reply.

Lifecycle safety: segments the current process created are tracked in a
registry and unlinked at interpreter exit (guarded by owner pid, so a
forked child never unlinks its parent's arena).  Attaching processes
deregister from the stdlib ``resource_tracker`` so a worker's exit
cannot reap a segment it does not own.  :func:`shm_segments` lists
live arena segments for leak checks.
"""

from __future__ import annotations

import atexit
import os
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from ..errors import ConfigError

__all__ = ["ArenaEntry", "ArenaManifest", "SharedArena",
           "ARENA_PREFIX", "shm_segments", "owned_segments"]

#: Prefix of every arena segment name under ``/dev/shm``.
ARENA_PREFIX = "repro_arena_"

#: Byte alignment of each packed array (cache-line friendly).
_ALIGN = 64

#: Width of one version-counter slot in bytes (int64).
_SLOT = 8

# Arenas created (not attached) by this process, keyed by segment name.
# The atexit hook unlinks whatever is still here — guarded by owner pid
# so a forked worker that inherits the registry leaves it alone.
_OWNED: dict[str, "SharedArena"] = {}

_KIND_PARAM = "param"
_KIND_EXTRA = "extra"


@dataclass(frozen=True)
class ArenaEntry:
    """Manifest row: where one named array lives inside the segment."""

    name: str            # dotted state_dict name
    kind: str            # "param" | "extra" (running stats)
    offset: int          # byte offset of the array data
    shape: tuple         # array shape
    dtype: str           # numpy dtype string
    slot: int            # index into the versions block


@dataclass(frozen=True)
class ArenaManifest:
    """Everything a worker needs to map the segment: pickle-light."""

    segment: str                 # shared-memory segment name
    nbytes: int                  # total segment size
    slots: int                   # number of version counters
    entries: tuple               # tuple[ArenaEntry, ...]

    def entry(self, name: str) -> ArenaEntry:
        for item in self.entries:
            if item.name == name:
                return item
        raise ConfigError(f"arena has no entry named {name!r}")

    def names(self) -> list[str]:
        return [item.name for item in self.entries]


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _plan_layout(arrays: Iterable[tuple[str, str, np.ndarray]]):
    """Assign offsets/slots; returns (entries, total_bytes)."""
    entries = []
    offset = 0
    slot = 0
    arrays = list(arrays)
    if not arrays:
        raise ConfigError("cannot build an arena for a model with no "
                          "parameters or running stats")
    offset = _aligned(len(arrays) * _SLOT)   # versions block first
    for name, kind, array in arrays:
        entries.append(ArenaEntry(
            name=name, kind=kind, offset=offset,
            shape=tuple(array.shape), dtype=str(array.dtype), slot=slot))
        offset += _aligned(max(array.nbytes, 1))
        slot += 1
    return tuple(entries), offset


def _model_arrays(model):
    """Yield ``(name, kind, array)`` in deterministic traversal order."""
    for name, param in model.named_parameters():
        yield name, _KIND_PARAM, param.data
    for prefix, module in model._named_stateful():
        for key, value in module.extra_state().items():
            yield prefix + key, _KIND_EXTRA, np.asarray(value)


def _untrack(shm) -> None:
    """Stop the resource tracker from reaping a segment we only attached.

    Python registers every ``SharedMemory`` with the tracker — plain
    attaches included — so an *unrelated* attaching process exiting
    would unlink the owner's live arena.  Processes spawned by the
    owner via ``multiprocessing`` share the owner's tracker (the
    duplicate registration is a set-add no-op there), so they must NOT
    unregister — that would strip the owner's own crash-safety entry.
    Hence ``SharedArena.attach(untrack=True)`` is opt-in.
    """
    try:  # pragma: no cover - platform dependent
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _defuse(shm) -> None:
    """Silence ``SharedMemory.__del__`` when live views pin the mapping.

    Parameters stay bound to arena views after a close (by design — the
    memory lives until the views die), which makes the stdlib's
    ``close`` raise ``BufferError`` forever after.  Shadow it with an
    instance-level no-op so garbage collection stays quiet.
    """
    try:
        shm.close = lambda: None
    except AttributeError:  # pragma: no cover - slotted in odd builds
        pass


class SharedArena:
    """One shared-memory segment holding a model's widest-rate weights.

    Create in the serving parent with :meth:`create` (then :meth:`bind`
    to move the model's parameters into the segment), and map in a
    worker with :meth:`attach` + :meth:`adopt`.  The arena is a context
    manager: ``with SharedArena.create(model) as arena: ...`` closes
    (and, for the owner, unlinks) the segment on exit.
    """

    def __init__(self, shm, manifest: ArenaManifest, owner: bool):
        self._shm = shm
        self.manifest = manifest
        self._owner = owner
        self._owner_pid = os.getpid() if owner else None
        self._closed = False
        self._unlinked = False
        self._versions = np.frombuffer(
            shm.buf, dtype=np.int64, count=manifest.slots, offset=0)
        self._views: dict[str, np.ndarray] = {}
        # Parent-side bindings (filled by bind/adopt).
        self._bound_params: list = []          # (entry, Parameter)
        self._bound_extra: list = []           # (entry, module, key)
        self._extra_snapshots: dict[int, np.ndarray] = {}
        self._extra_seen: dict[int, int] = {}
        if owner:
            _OWNED[manifest.segment] = self

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, model, name: str | None = None) -> "SharedArena":
        """Pack ``model``'s parameters and running stats into a new segment."""
        arrays = list(_model_arrays(model))
        entries, nbytes = _plan_layout(arrays)
        if name is None:
            name = f"{ARENA_PREFIX}{os.getpid()}_{uuid.uuid4().hex[:8]}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        manifest = ArenaManifest(segment=shm.name, nbytes=nbytes,
                                 slots=len(entries), entries=entries)
        arena = cls(shm, manifest, owner=True)
        for (entry, (_, _, array)) in zip(entries, arrays):
            arena._view(entry)[...] = array
        return arena

    @classmethod
    def attach(cls, manifest: ArenaManifest,
               untrack: bool = False) -> "SharedArena":
        """Map an existing segment zero-copy (worker side).

        Pass ``untrack=True`` only from a process *unrelated* to the
        arena's owner (a separately launched CLI, say) so that its
        resource tracker does not unlink the segment at exit; processes
        the owner spawned via ``multiprocessing`` share the owner's
        tracker and must leave the registration alone.
        """
        shm = shared_memory.SharedMemory(name=manifest.segment, create=False)
        if untrack:
            _untrack(shm)
        return cls(shm, manifest, owner=False)

    # -- views ----------------------------------------------------------
    def _view(self, entry: ArenaEntry, fresh: bool = False) -> np.ndarray:
        """Array view into the segment; cached unless ``fresh``."""
        if not fresh and entry.name in self._views:
            return self._views[entry.name]
        dtype = np.dtype(entry.dtype)
        count = int(np.prod(entry.shape, dtype=np.int64)) if entry.shape else 1
        view = np.frombuffer(self._shm.buf, dtype=dtype, count=count,
                             offset=entry.offset).reshape(entry.shape)
        if not self._owner:
            view.flags.writeable = False
        if not fresh:
            self._views[entry.name] = view
        return view

    def view(self, name: str) -> np.ndarray:
        """The live array view for a manifest entry, by dotted name."""
        return self._view(self.manifest.entry(name))

    # -- parent side ----------------------------------------------------
    def bind(self, model) -> "SharedArena":
        """Rebind ``model``'s parameters/stats to live inside the segment.

        Parent views stay writable so training, ``load_state_dict`` and
        ``Parameter.mutate()`` keep working in place; :meth:`publish`
        ships the resulting version bumps to workers.
        """
        self._check_open()
        self._bound_params = []
        self._bound_extra = []
        params = dict(model.named_parameters())
        stateful = list(model._named_stateful())
        for entry in self.manifest.entries:
            view = self._view(entry)
            if entry.kind == _KIND_PARAM:
                param = params.get(entry.name)
                if param is None:
                    raise ConfigError(
                        f"model has no parameter {entry.name!r}; was the "
                        f"arena built from a different architecture?")
                if param.data.shape != view.shape:
                    raise ConfigError(
                        f"shape mismatch for {entry.name!r}: model has "
                        f"{param.data.shape}, arena has {view.shape}")
                if param.data is not view:
                    view[...] = param.data
                    param.data = view
                self._bound_params.append((entry, param))
            else:
                module, key = self._extra_owner(stateful, entry.name)
                current = np.asarray(getattr(module, key))
                if current is not view:
                    view[...] = current
                    setattr(module, key, view)
                self._bound_extra.append((entry, module, key))
                self._extra_snapshots[entry.slot] = view.copy()
        self.publish(model)
        return self

    def publish(self, model=None) -> int:
        """Push current parameter versions (and drifted arrays) to workers.

        Any parameter whose array was rebound away from its arena view
        (optimizer steps that allocate, ``upgrade_model``) is copied
        back in; batch-norm running stats are content-compared against
        the last published snapshot and get their slot bumped on drift.
        Returns the number of slots whose counter changed.
        """
        self._check_open()
        changed = 0
        for entry, param in self._bound_params:
            view = self._view(entry)
            if param.data is not view:
                view[...] = param.data
                param.data = view       # setter bumps the version
            if int(self._versions[entry.slot]) != param.version:
                self._versions[entry.slot] = param.version
                changed += 1
        for entry, module, key in self._bound_extra:
            view = self._view(entry)
            current = np.asarray(getattr(module, key))
            if current is not view:
                view[...] = current
                setattr(module, key, view)
                drifted = True
            else:
                drifted = not np.array_equal(
                    view, self._extra_snapshots[entry.slot])
            if drifted:
                self._versions[entry.slot] += 1
                self._extra_snapshots[entry.slot] = view.copy()
                changed += 1
        return changed

    # -- worker side ----------------------------------------------------
    def adopt(self, model) -> "SharedArena":
        """Point a worker's model at the shared weights, read-only.

        Parameters are rebound to read-only views and adopt the
        published version counters, so locally compiled plans carry the
        parent's version numbers from the start.
        """
        self._check_open()
        self._bound_params = []
        self._bound_extra = []
        params = dict(model.named_parameters())
        stateful = list(model._named_stateful())
        for entry in self.manifest.entries:
            view = self._view(entry)
            if entry.kind == _KIND_PARAM:
                param = params.get(entry.name)
                if param is None:
                    raise ConfigError(
                        f"worker model has no parameter {entry.name!r}; "
                        f"model_factory must rebuild the served "
                        f"architecture")
                if param.data.shape != view.shape:
                    raise ConfigError(
                        f"shape mismatch for {entry.name!r}: worker model "
                        f"has {param.data.shape}, arena has {view.shape}")
                param.data = view
                param.sync_version(int(self._versions[entry.slot]))
                self._bound_params.append((entry, param))
            else:
                module, key = self._extra_owner(stateful, entry.name)
                setattr(module, key, view)
                self._bound_extra.append((entry, module, key))
                self._extra_seen[entry.slot] = int(self._versions[entry.slot])
        return self

    def refresh(self, model=None) -> int:
        """Adopt any version counters the parent published since last call.

        Cheap (one int64 compare per slot) — called before every worker
        request.  Parameters whose counter moved get
        :meth:`Parameter.sync_version`-ed, which is exactly what makes
        ``InferencePlan.is_valid()`` fail and the worker's ``PlanCache``
        recompile.  Running-stat slots rebind the module attribute to a
        *fresh* view object so the plan's identity check fails too.
        Returns the number of adopted slots.
        """
        self._check_open()
        adopted = 0
        for entry, param in self._bound_params:
            published = int(self._versions[entry.slot])
            if published != param.version:
                param.sync_version(published)
                adopted += 1
        for entry, module, key in self._bound_extra:
            published = int(self._versions[entry.slot])
            if published != self._extra_seen.get(entry.slot):
                setattr(module, key, self._view(entry, fresh=True))
                self._extra_seen[entry.slot] = published
                adopted += 1
        return adopted

    # -- lifecycle ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError(
                f"arena {self.manifest.segment} is closed")

    def close(self) -> None:
        """Drop this process's mapping.  Idempotent.

        Numpy views handed out earlier (including parameters still
        bound to the segment) keep the underlying mmap alive until they
        are garbage collected; ``close`` is best-effort by design.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        self._versions = None
        self._bound_params = []
        self._bound_extra = []
        try:
            self._shm.close()
        except BufferError:  # live views still exported — harmless
            _defuse(self._shm)

    def unlink(self) -> None:
        """Remove the segment from the system (owner only).  Idempotent."""
        if self._unlinked:
            return
        if not self._owner or os.getpid() != self._owner_pid:
            return
        self._unlinked = True
        _OWNED.pop(self.manifest.segment, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def release(self) -> None:
        """Close the mapping and, if owner, unlink the segment."""
        self.close()
        self.unlink()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def _extra_owner(self, stateful, name: str):
        for prefix, module in stateful:
            if name.startswith(prefix):
                key = name[len(prefix):]
                if key in module.extra_state():
                    return module, key
        raise ConfigError(
            f"model has no running-stat buffer {name!r}; was the arena "
            f"built from a different architecture?")


def _disinherit() -> None:
    """Forget arenas a forked child inherited from its parent.

    Called at worker boot: the inherited registry entries belong to the
    parent (their owner pid says so), and the child must neither unlink
    them at exit nor complain when their pinned mappings are collected.
    """
    pid = os.getpid()
    for name, arena in list(_OWNED.items()):
        if arena._owner_pid != pid:
            _defuse(arena._shm)
            _OWNED.pop(name, None)


def owned_segments() -> list[str]:
    """Arena segments created (and not yet unlinked) by this process."""
    pid = os.getpid()
    return sorted(name for name, arena in _OWNED.items()
                  if arena._owner_pid == pid and not arena._unlinked)


def shm_segments() -> list[str]:
    """Live arena segments visible on this machine.

    Scans ``/dev/shm`` where available (Linux); falls back to this
    process's owned registry elsewhere.  Used by the test-suite leak
    fixture to fail any test that leaves a segment behind.
    """
    root = "/dev/shm"
    if os.path.isdir(root):
        try:
            return sorted(name for name in os.listdir(root)
                          if name.startswith(ARENA_PREFIX))
        except OSError:
            pass
    return owned_segments()


@atexit.register
def _cleanup_owned() -> None:  # pragma: no cover - interpreter teardown
    pid = os.getpid()
    for arena in list(_OWNED.values()):
        if arena._owner_pid == pid:
            try:
                arena.release()
            except Exception:
                pass
