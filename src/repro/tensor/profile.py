"""Operation-level FLOPs accounting.

A :class:`FlopCounter` registered via :func:`count_flops` receives the
multiply-add count of every matmul and convolution executed inside the
``with`` block.  This measures the *actual* cost of a forward pass — so a
model sliced to rate ``r`` reports the genuinely reduced cost, which is how
the ``Ct`` columns of the paper's Tables 2 and 4 are produced.
"""

from __future__ import annotations

import contextlib

_ACTIVE: list["FlopCounter"] = []


class FlopCounter:
    """Accumulates multiply-add counts reported by tensor operations."""

    def __init__(self) -> None:
        self.total = 0
        self.by_kind: dict[str, int] = {}

    def add(self, kind: str, flops: int) -> None:
        self.total += flops
        self.by_kind[kind] = self.by_kind.get(kind, 0) + flops


@contextlib.contextmanager
def count_flops():
    """Context manager yielding a :class:`FlopCounter` for the block."""
    counter = FlopCounter()
    _ACTIVE.append(counter)
    try:
        yield counter
    finally:
        _ACTIVE.pop()


def record_flops(kind: str, flops: int) -> None:
    """Report ``flops`` multiply-adds to every active counter (if any)."""
    if not _ACTIVE:
        return
    for counter in _ACTIVE:
        counter.add(kind, flops)


def profiling_active() -> bool:
    """Whether any FLOPs counter is currently registered."""
    return bool(_ACTIVE)
