"""Pooled autograd workspaces for the training fast path.

Training spends most of its time in the conv im2col/col2im pair and, on a
numpy substrate, most of *that* time re-allocating the same buffers batch
after batch: the padded input, the column matrix, the GEMM output and the
gradient temporaries all have shapes that repeat for every step of a run.
A :class:`WorkspaceArena` keeps those buffers in a shape-keyed pool — the
same trick the compiled inference plans use for serving
(:mod:`repro.slicing.plans`) — so steady-state training allocates nothing
on the conv hot path.

Lifecycle
---------
The arena distinguishes two scopes:

``pass``
    Buffers that live for one forward/backward pass of one slice rate.
    :meth:`WorkspaceArena.end_pass` (called by the trainer after each
    ``loss.backward()``) recycles them; until then every ``acquire``
    hands out a distinct buffer, which is what makes it safe for the
    autograd closures created during the forward to keep using their
    buffers during the backward.

``step``
    Buffers that live for one full Algorithm-1 step (all scheduled
    rates of one batch).  The only current tenant is the *pinned-input
    column cache*: the network input is never sliced, so the first conv
    layer's im2col columns are identical for every scheduled rate and
    are computed once per batch (`train_ws_col_reuses_total` counts the
    passes that skipped the recompute).  :meth:`WorkspaceArena.end_step`
    recycles them and clears the cache.

An arena is activated with :func:`use_workspace`; :func:`conv2d
<repro.tensor.ops.conv2d>` and the fused kernels consult
:func:`active_workspace` at *forward* time and capture the arena in
their backward closures, so a backward pass that runs after the context
exited (e.g. under gradcheck) still works.

Like the inference plans' scratch buffers, an arena is single-threaded
by design: one arena must not serve two concurrent training loops, and
tensors produced under an arena must not be kept alive across
``end_pass``/``end_step`` boundaries (their data may be recycled).
"""

from __future__ import annotations

import contextlib

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..errors import ShapeError
from .. import obs

__all__ = [
    "WorkspaceArena",
    "use_workspace",
    "active_workspace",
]

_ACTIVE: "WorkspaceArena | None" = None


def active_workspace() -> "WorkspaceArena | None":
    """The arena installed by :func:`use_workspace`, if any."""
    return _ACTIVE


@contextlib.contextmanager
def use_workspace(arena: "WorkspaceArena"):
    """Run the enclosed block with ``arena`` as the active workspace.

    While active, :func:`~repro.tensor.ops.conv2d` draws its im2col /
    col2im / GEMM buffers from the arena and the normalization and loss
    layers switch to their fused forward/backward kernels.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = arena
    try:
        yield arena
    finally:
        _ACTIVE = previous


class WorkspaceArena:
    """Shape-keyed pool of numpy scratch buffers with pass/step scopes."""

    def __init__(self):
        # (scope, shape, dtype str) -> every buffer ever allocated for it.
        self._pools: dict[tuple, list[np.ndarray]] = {}
        # Same key -> how many of those buffers are handed out right now.
        self._cursor: dict[tuple, int] = {}
        self._pinned: np.ndarray | None = None
        # (shape, kh, kw, stride, padding) -> (cols, (h_out, w_out)).
        self._col_cache: dict[tuple, tuple[np.ndarray, tuple[int, int]]] = {}
        self.pool_hits = 0
        self.pool_misses = 0
        self.col_reuses = 0

    @property
    def pinned(self) -> np.ndarray | None:
        """The step's pinned input array, if any (see :meth:`begin_step`)."""
        return self._pinned

    # -- pooling ---------------------------------------------------------
    def acquire(self, shape: tuple[int, ...], dtype,
                scope: str = "pass") -> np.ndarray:
        """A pooled buffer of ``shape``/``dtype``, unique until its scope
        is reset.  Contents are uninitialized."""
        key = (scope, tuple(shape), np.dtype(dtype).str)
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = []
        cursor = self._cursor.get(key, 0)
        self._cursor[key] = cursor + 1
        if cursor < len(pool):
            self.pool_hits += 1
            if obs.enabled():
                obs.count("train_ws_pool_hits_total", scope=scope)
            return pool[cursor]
        buf = np.empty(shape, dtype=dtype)
        pool.append(buf)
        self.pool_misses += 1
        if obs.enabled():
            obs.count("train_ws_pool_misses_total", scope=scope)
        return buf

    def end_pass(self) -> None:
        """Recycle all pass-scoped buffers (after one rate's backward)."""
        for key in self._cursor:
            if key[0] == "pass":
                self._cursor[key] = 0

    def begin_step(self, pinned_input: np.ndarray | None = None) -> None:
        """Start an Algorithm-1 step; ``pinned_input`` is the (unsliced)
        batch input whose im2col columns may be shared across rates."""
        self._pinned = pinned_input
        self._col_cache.clear()

    def end_step(self) -> None:
        """Recycle everything: pass and step buffers, plus the col cache."""
        for key in self._cursor:
            self._cursor[key] = 0
        self._pinned = None
        self._col_cache.clear()
        if obs.enabled():
            obs.gauge("train_ws_bytes", float(self.nbytes()))

    def nbytes(self) -> int:
        """Total bytes resident across all pools."""
        return sum(buf.nbytes for pool in self._pools.values()
                   for buf in pool)

    def stats(self) -> dict[str, int]:
        return {
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "col_reuses": self.col_reuses,
            "bytes": self.nbytes(),
        }

    def __repr__(self) -> str:
        return (f"WorkspaceArena(bytes={self.nbytes()}, "
                f"hits={self.pool_hits}, misses={self.pool_misses}, "
                f"col_reuses={self.col_reuses})")

    # -- conv kernels ----------------------------------------------------
    def im2col(self, x: np.ndarray, kh: int, kw: int,
               stride: tuple[int, int], padding: tuple[int, int]
               ) -> tuple[np.ndarray, tuple[int, int]]:
        """Pooled mirror of :func:`repro.tensor.ops._im2col`.

        Produces bitwise-identical columns ``(B, C*kh*kw, Hout*Wout)``;
        when ``x`` is the pinned step input, the columns are computed
        once per step and shared across slice rates.
        """
        pinned = x is self._pinned
        key = (x.shape, kh, kw, stride, padding)
        if pinned:
            cached = self._col_cache.get(key)
            if cached is not None:
                self.col_reuses += 1
                if obs.enabled():
                    obs.count("train_ws_col_reuses_total")
                return cached
        batch, channels, height, width = x.shape
        ph, pw = padding
        sh, sw = stride
        if ph or pw:
            padded = self.acquire(
                (batch, channels, height + 2 * ph, width + 2 * pw), x.dtype)
            # Zero only the border strips; the interior is overwritten by
            # the copy, so a full fill(0) would be a wasted memory pass.
            if ph:
                padded[:, :, :ph, :] = 0
                padded[:, :, ph + height:, :] = 0
            if pw:
                padded[:, :, ph:ph + height, :pw] = 0
                padded[:, :, ph:ph + height, pw + width:] = 0
            padded[:, :, ph:ph + height, pw:pw + width] = x
        else:
            padded = x
        h_out = (padded.shape[2] - kh) // sh + 1
        w_out = (padded.shape[3] - kw) // sw + 1
        if h_out <= 0 or w_out <= 0:
            raise ShapeError(
                f"conv output would be empty for input {x.shape}, "
                f"kernel ({kh},{kw})")
        scope = "step" if pinned else "pass"
        cols = self.acquire(
            (batch, channels * kh * kw, h_out * w_out), x.dtype, scope)
        s0, s1, s2, s3 = padded.strides
        view = as_strided(
            padded,
            (batch, channels, kh, kw, h_out, w_out),
            (s0, s1, s2, s3, s2 * sh, s3 * sw),
        )
        cols.reshape(batch, channels, kh, kw, h_out, w_out)[...] = view
        result = (cols, (h_out, w_out))
        if pinned:
            self._col_cache[key] = result
        return result

    def col2im(self, cols: np.ndarray,
               x_shape: tuple[int, int, int, int], kh: int, kw: int,
               stride: tuple[int, int], padding: tuple[int, int],
               out_hw: tuple[int, int]) -> np.ndarray:
        """Pooled mirror of :func:`repro.tensor.ops._col2im`.

        The returned gradient image may be a view of a pass-scoped
        buffer; it is only valid until the next :meth:`end_pass`.
        """
        batch, channels, height, width = x_shape
        ph, pw = padding
        sh, sw = stride
        h_out, w_out = out_hw
        padded = self.acquire(
            (batch, channels, height + 2 * ph, width + 2 * pw), cols.dtype)
        cols = cols.reshape(batch, channels, kh, kw, h_out, w_out)
        if sh == 1 and sw == 1:
            # Stride 1: the first tap's slab covers the whole top-left
            # region, so it can *assign* instead of accumulate, and only
            # the right/bottom margins it misses need explicit zeros —
            # two cheap border writes instead of a full zeroing pass.
            np.copyto(padded[:, :, :h_out, :w_out], cols[:, :, 0, 0])
            if kh > 1:
                padded[:, :, h_out:, :] = 0
            if kw > 1:
                padded[:, :, :h_out, w_out:] = 0
            for i in range(kh):
                for j in range(kw):
                    if i == 0 and j == 0:
                        continue
                    padded[:, :, i:i + h_out, j:j + w_out] += cols[:, :, i, j]
        else:
            padded.fill(0)
            for i in range(kh):
                i_end = i + sh * h_out
                for j in range(kw):
                    j_end = j + sw * w_out
                    padded[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j]
        if ph or pw:
            return padded[:, :, ph:ph + height, pw:pw + width]
        return padded
