"""True-parallel serving: a replica pool backed by worker processes.

:class:`ProcessReplicaPool` has the same interface as
:class:`~repro.runtime.pool.ReplicaPool`, but every replica is a
*process*: workers attach the parent's
:class:`~repro.tensor.shared.SharedArena` at boot (zero-copy — the
prefix-nesting property means one widest-rate arena serves every slice
profile read-only), compile inference plans locally from the shared
prefix weights, and answer batches over a pickle-light
request/response pipe.  The GIL stops mattering: aggregate
requests/sec scales with cores, which is what
``benchmarks/test_serving_throughput.py`` measures.

Staleness rides the arena's version block.  After the parent mutates
weights (``load_state_dict``, ``Parameter.mutate()``, an optimizer
step), the next dispatch :meth:`~ProcessReplicaPool.sync`-s: the arena
publishes the new per-parameter version counters, every worker adopts
them on its next request via :meth:`~repro.tensor.shared.SharedArena.refresh`,
and the worker's local :class:`~repro.slicing.plans.PlanCache` staleness
check fires exactly as it would in-process — stale plans recompile
before the next reply and ``plan_cache_invalidations_total`` accounts
for it per worker.

Determinism: each worker boots with the parent's seed (offset by its
index), the ``REPRO_*`` environment knobs, and the parent's obs
enable/disable state; when the parent traces to ``run.jsonl``, worker
``i`` traces to ``run.jsonl.wi.jsonl`` and ``repro obs summarize``
merges them.  A 1-worker pool is prediction-bitwise-identical to the
in-process pool.

Cascades stay within one worker: :meth:`ProcessReplicaPool.warm_cascade`
ships the stage list to every worker, which builds a local
:class:`~repro.runtime.cascade.CascadeExecutor` so escalation reuses
resumable intermediates without crossing the process boundary.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import obs
from ..errors import ServingError
from ..slicing.plans import PlanCache
from ..slicing.profile import as_profile
from ..tensor.shared import SharedArena, _disinherit
from .pool import ReplicaPool
from .replica import STATE_CRASHED, LatencyProfile, Replica

__all__ = ["WorkerBoot", "WorkerReplica", "ProcessReplicaPool",
           "build_pool", "POOL_BACKENDS"]

POOL_BACKENDS = ("thread", "process")

#: Environment variable overriding the multiprocessing start method
#: ("fork" where available, else "spawn").
START_METHOD_ENV = "REPRO_WORKER_START"


@dataclass
class WorkerBoot:
    """Everything a worker process needs to come up deterministic."""

    index: int
    manifest: object                  # SharedArena manifest
    seed: int
    env: dict = field(default_factory=dict)       # REPRO_* knobs
    obs_enabled: bool = False
    trace_path: str | None = None
    tick_clock: bool = False
    plan_capacity: int = 32
    model: object | None = None       # fork: inherited by reference
    model_factory: Callable | None = None         # spawn: rebuilt locally


def _worker_main(boot: WorkerBoot, conn) -> None:
    """Request loop of one worker process.

    Ops (all ``(op, payload)`` tuples, replies ``("ok", value)`` or
    ``("err", message)``): ``predict``, ``warm``, ``cascade``,
    ``set_cascade``, ``stats``, ``ping``, ``shutdown``.  Errors answer
    the request instead of killing the worker.
    """
    _disinherit()   # a forked child must not touch the parent's arenas
    os.environ.update(boot.env)
    np.random.seed((boot.seed + boot.index) % (2 ** 32))
    # Replace any fork-inherited obs state with this worker's own sink
    # before anything can record; the parent flushed its trace pre-fork.
    if boot.obs_enabled:
        clock = obs.TickClock() if boot.tick_clock else None
        obs.configure(trace_path=boot.trace_path, clock=clock)
    else:
        obs.disable()
    model = boot.model if boot.model is not None else boot.model_factory()
    model.eval()
    arena = SharedArena.attach(boot.manifest)
    arena.adopt(model)
    label = f"w{boot.index}"
    replica = Replica(label, LatencyProfile(1.0), model=model,
                      plan_cache=PlanCache(boot.plan_capacity))
    executor = None
    served = 0
    running = True
    while running:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "predict":
                inputs, rate = payload
                refreshed = arena.refresh(model)
                if refreshed and obs.enabled():
                    obs.count("worker_refreshes_total", amount=refreshed,
                              worker=label)
                reply = ("ok", replica.predict(inputs, rate))
                served += 1
                if obs.enabled():
                    obs.count("worker_requests_total", worker=label,
                              op="predict")
            elif op == "cascade":
                if executor is None:
                    raise ServingError(
                        "worker has no cascade; call warm_cascade first")
                refreshed = arena.refresh(model)
                if refreshed and obs.enabled():
                    obs.count("worker_refreshes_total", amount=refreshed,
                              worker=label)
                reply = ("ok", executor.run_batch(payload))
                served += 1
                if obs.enabled():
                    obs.count("worker_requests_total", worker=label,
                              op="cascade")
            elif op == "warm":
                rates, fold = payload
                arena.refresh(model)
                reply = ("ok", replica.warm_plans(rates, fold_rescale=fold))
            elif op == "set_cascade":
                from .cascade import CascadeExecutor
                stages, exact, incremental = payload
                arena.refresh(model)
                executor = CascadeExecutor(model, stages, exact=exact,
                                           incremental=incremental)
                reply = ("ok", replica.warm_plans(executor.stage_rates()))
            elif op == "stats":
                reply = ("ok", {
                    "worker": label,
                    "pid": os.getpid(),
                    "seed": boot.seed + boot.index,
                    "requests": served,
                    "env": {key: value for key, value in os.environ.items()
                            if key.startswith("REPRO_")},
                    "obs_enabled": obs.enabled(),
                    "trace_path": boot.trace_path,
                    "plan_cache": replica.plan_cache.stats(),
                })
            elif op == "ping":
                reply = ("ok", label)
            elif op == "shutdown":
                reply = ("ok", served)
                running = False
            else:
                raise ServingError(f"unknown worker op {op!r}")
        except Exception as exc:  # answer the request, don't die
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    if boot.obs_enabled:
        obs.shutdown()
    arena.close()
    conn.close()


class _WorkerHandle:
    """Parent-side endpoint of one worker: process + pipe + bookkeeping."""

    def __init__(self, index: int, process, conn, trace_path: str | None):
        self.index = index
        self.process = process
        self.conn = conn
        self.trace_path = trace_path
        self.pending = 0              # requests sent, replies not yet read

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, op: str, payload=None) -> None:
        try:
            self.conn.send((op, payload))
        except (BrokenPipeError, OSError) as exc:
            raise ServingError(
                f"worker w{self.index} pipe is closed: {exc}") from exc
        self.pending += 1

    def recv(self):
        try:
            status, value = self.conn.recv()
        except (EOFError, OSError) as exc:
            self.pending = 0
            raise ServingError(
                f"worker w{self.index} died mid-request") from exc
        self.pending -= 1
        if status == "err":
            raise ServingError(f"worker w{self.index}: {value}")
        return value

    def request(self, op: str, payload=None):
        self.send(op, payload)
        return self.recv()


class WorkerReplica(Replica):
    """A pool replica whose model lives in a worker process.

    Keeps the full :class:`~repro.runtime.replica.Replica` surface —
    calibrated service times, fault state, dispatch tokens — but routes
    real execution (:meth:`predict`, :meth:`warm_plans`,
    :meth:`run_cascade`) over the worker pipe.
    """

    def __init__(self, handle: _WorkerHandle, profile: LatencyProfile,
                 pool: "ProcessReplicaPool", replica_id: str | None = None):
        super().__init__(replica_id or f"w{handle.index}", profile,
                         model=None)
        self._handle = handle
        self._pool = pool

    @property
    def crashed(self) -> bool:
        return self.state == STATE_CRASHED or not self._handle.alive

    @property
    def pid(self) -> int:
        return self._handle.process.pid

    def _timed(self, op: str, payload):
        start = time.perf_counter()
        value = self._handle.request(op, payload)
        if obs.enabled():
            obs.observe("worker_ipc_seconds",
                        time.perf_counter() - start, op=op)
        return value

    def warm_plans(self, rates, fold_rescale: bool = True) -> int:
        self._pool.sync()
        profiles = [as_profile(rate) for rate in rates]
        return int(self._timed("warm", (profiles, bool(fold_rescale))))

    def predict(self, inputs: np.ndarray, rate) -> np.ndarray:
        self._pool.sync()
        return self._timed("predict", (np.asarray(inputs), as_profile(rate)))

    def run_cascade(self, inputs: np.ndarray):
        """Cascade a batch inside the worker (escalations stay local)."""
        self._pool.sync()
        rows = np.ascontiguousarray(inputs, dtype=np.float32)
        return self._timed("cascade", rows)

    def stats(self) -> dict:
        return self._handle.request("stats")


class ProcessReplicaPool(ReplicaPool):
    """A :class:`ReplicaPool` whose replicas are worker processes.

    Parameters
    ----------
    model:
        The served model.  Its parameters are moved into a
        :class:`~repro.tensor.shared.SharedArena` (``model.share_memory()``)
        that every worker maps zero-copy; the parent keeps writable
        views so training/``load_state_dict`` continue to work.
    workers:
        Number of worker processes.
    latency_profile:
        Calibration for the simulated-time engine (defaults to 1 ms
        per full-width sample, like the CLI demo).
    model_factory:
        Zero-argument callable rebuilding the architecture; required
        under the ``spawn`` start method, where workers cannot inherit
        the parent's model object.  Weights need not match — workers
        adopt the arena's.
    start_method:
        ``"fork"`` (default where available) or ``"spawn"``; the
        ``REPRO_WORKER_START`` environment variable overrides.
    arena:
        Pass a pre-built arena to share one segment between pools; the
        caller then owns its lifecycle (:meth:`shutdown` only releases
        arenas the pool created).
    """

    backend = "process"

    def __init__(self, model, workers: int,
                 latency_profile: LatencyProfile | None = None,
                 dispatch: str = "least-loaded", seed: int = 0,
                 arena: SharedArena | None = None,
                 model_factory: Callable | None = None,
                 start_method: str | None = None,
                 plan_cache_capacity: int = 32,
                 name_prefix: str = "",
                 trace_paths: Sequence[str] | None = None):
        if workers < 1:
            raise ServingError("pool needs at least one worker")
        if trace_paths is not None and len(trace_paths) != workers:
            raise ServingError(
                f"{len(trace_paths)} trace paths for {workers} workers")
        method = (start_method or os.environ.get(START_METHOD_ENV)
                  or ("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn"))
        if method != "fork" and model_factory is None:
            raise ServingError(
                f"start method {method!r} cannot inherit the model; "
                f"pass model_factory to rebuild it in the workers")
        ctx = mp.get_context(method)

        self.model = model
        self._owns_arena = arena is None
        self.arena = SharedArena.create(model) if arena is None else arena
        self.arena.bind(model)
        self._published = model.parameter_version()
        self._closed = False
        self._handles: list[_WorkerHandle] = []

        profile = latency_profile or LatencyProfile(1e-3)

        env = {key: value for key, value in os.environ.items()
               if key.startswith("REPRO_")}
        obs_on = obs.enabled()
        tick = obs_on and isinstance(obs.tracer().clock, obs.TickClock)
        base_trace = obs.tracer().path if obs_on else None
        if obs_on:
            # Children must not inherit buffered, unwritten trace bytes.
            obs.tracer().flush()

        replicas = []
        try:
            for index in range(workers):
                if trace_paths is not None:
                    wpath = trace_paths[index]
                elif base_trace:
                    wpath = f"{base_trace}.w{index}.jsonl"
                else:
                    wpath = None
                boot = WorkerBoot(
                    index=index, manifest=self.arena.manifest,
                    seed=seed, env=env, obs_enabled=obs_on,
                    trace_path=wpath, tick_clock=tick,
                    plan_capacity=plan_cache_capacity,
                    model=model if method == "fork" else None,
                    model_factory=None if method == "fork" else model_factory)
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(target=_worker_main,
                                      args=(boot, child_conn),
                                      name=f"repro-worker-{index}",
                                      daemon=True)
                process.start()
                child_conn.close()
                handle = _WorkerHandle(index, process, parent_conn, wpath)
                self._handles.append(handle)
                replicas.append(WorkerReplica(
                    handle, profile, self,
                    replica_id=f"{name_prefix}w{index}"))
            super().__init__(replicas, dispatch=dispatch, seed=seed)
        except Exception:
            self.shutdown()
            raise

    # -- weight publication ---------------------------------------------
    def sync(self) -> bool:
        """Publish parent weight mutations to the arena, if any.

        Cheap no-op (one int compare) when nothing changed; called
        automatically before every proxied request.  Returns whether a
        publication happened.
        """
        version = self.model.parameter_version()
        if version == self._published:
            return False
        self.arena.publish(self.model)
        self._published = self.model.parameter_version()
        return True

    # -- pool interface --------------------------------------------------
    def warm_plans(self, rates) -> int:
        self.sync()
        return super().warm_plans(rates)

    def warm_cascade(self, executor) -> int:
        """Ship the cascade to every worker and warm its stage plans.

        Each worker builds a local
        :class:`~repro.runtime.cascade.CascadeExecutor` over its
        arena-backed model, so stage escalation (and its resumable
        intermediates) never crosses the process boundary.
        """
        self.sync()
        payload = (list(executor.stages), executor.exact,
                   executor.incremental)
        return sum(int(handle.request("set_cascade", payload))
                   for handle in self._live())

    def worker_stats(self) -> list[dict]:
        """Boot/served/plan-cache report from every live worker."""
        return [handle.request("stats") for handle in self._live()]

    def trace_paths(self) -> list[str]:
        """Per-worker JSONL trace files (for ``repro obs summarize``)."""
        return [h.trace_path for h in self._handles if h.trace_path]

    def _live(self) -> list[_WorkerHandle]:
        handles = [h for h in self._handles if h.alive]
        if not handles:
            raise ServingError("no live workers in the pool")
        return handles

    # -- throughput path -------------------------------------------------
    def predict_many(self, batches: Sequence[np.ndarray], rate,
                     window: int = 4) -> list[np.ndarray]:
        """Pipeline many batches across the workers; ordered results.

        Round-robins batches over live workers, keeping up to
        ``window`` requests in flight per worker so every process stays
        busy — the wall-clock throughput path the serving benchmark
        measures.
        """
        self.sync()
        profile = as_profile(rate)
        live = self._live()
        results: list = [None] * len(batches)
        queued: dict[int, list[int]] = {h.index: [] for h in live}
        for position, batch in enumerate(batches):
            handle = live[position % len(live)]
            if handle.pending >= window:
                results[queued[handle.index].pop(0)] = handle.recv()
            handle.send("predict", (np.asarray(batch), profile))
            queued[handle.index].append(position)
        for handle in live:
            while queued[handle.index]:
                results[queued[handle.index].pop(0)] = handle.recv()
        return results

    # -- lifecycle --------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers and release the arena.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            if handle.alive:
                try:
                    while handle.pending:
                        handle.recv()
                    handle.request("shutdown")
                except ServingError:
                    pass
            try:
                handle.conn.close()
            except OSError:
                pass
        for handle in self._handles:
            handle.process.join(timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout)
        if self._owns_arena:
            self.arena.release()

    def __enter__(self) -> "ProcessReplicaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def build_pool(model, replicas: int, latency_profile: LatencyProfile,
               backend: str = "thread", dispatch: str = "least-loaded",
               seed: int = 0, name_prefix: str = "",
               **process_kwargs) -> ReplicaPool:
    """Build a serving pool over ``model``: in-process or multi-process.

    ``backend="thread"`` returns the classic in-process
    :class:`ReplicaPool` (every replica shares the model object;
    simulated-time only, GIL-bound).  ``backend="process"`` returns a
    :class:`ProcessReplicaPool` (shared-memory arena + worker
    processes; true parallelism).  Replica ids are ``w0..wN-1`` either
    way, so telemetry is backend-comparable.
    """
    if backend not in POOL_BACKENDS:
        raise ServingError(
            f"unknown pool backend {backend!r}; choose from {POOL_BACKENDS}")
    if backend == "process":
        return ProcessReplicaPool(model, replicas, latency_profile,
                                  dispatch=dispatch, seed=seed,
                                  name_prefix=name_prefix, **process_kwargs)
    if process_kwargs:
        raise ServingError(
            f"{sorted(process_kwargs)} only apply to the process backend")
    return ReplicaPool(
        [Replica(f"{name_prefix}w{index}", latency_profile, model=model)
         for index in range(replicas)],
        dispatch=dispatch, seed=seed)
