"""Bounded admission queue with deadlines and backpressure.

Requests wait here between arrival and batching, ordered by arrival time
(retried requests re-enter with their original arrival timestamp, so
they move to the front rather than the back).  The queue is bounded;
when full it applies one of two backpressure policies:

* ``"reject"`` — bounce the new arrival (classic admission control);
* ``"shed-oldest"`` — evict the longest-waiting request to make room,
  on the theory that the oldest request is the closest to missing its
  deadline anyway.

The queue never decides outcomes itself — it *returns* rejected / shed /
expired traces and the engine stamps them — so all accounting lives in
one place.
"""

from __future__ import annotations

import bisect

from .. import obs
from ..errors import ServingError
from .telemetry import RequestTrace

POLICIES = ("reject", "shed-oldest")

_EPS = 1e-9


class AdmissionQueue:
    """FIFO-by-arrival bounded queue of :class:`RequestTrace` objects."""

    def __init__(self, capacity: int, policy: str = "reject"):
        if capacity < 1:
            raise ServingError(f"queue capacity must be >= 1, got {capacity}")
        if policy not in POLICIES:
            raise ServingError(
                f"unknown queue policy {policy!r}; choose from {POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._items: list[RequestTrace] = []
        self._keys: list[tuple[float, int]] = []   # (arrival, request_id)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, request: RequestTrace) -> bool:
        return request in self._items

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def backpressure(self) -> float:
        """Queue fullness in [0, 1]; 1.0 means the next offer sheds/rejects."""
        return len(self._items) / self.capacity

    def oldest_wait(self, now: float) -> float:
        """Seconds the head request has been waiting (0.0 if empty)."""
        if not self._items:
            return 0.0
        head = self._items[0]
        reference = head.enqueued if head.enqueued is not None else head.arrival
        return max(now - reference, 0.0)

    # -- mutation -------------------------------------------------------
    def offer(self, request: RequestTrace, now: float
              ) -> tuple[bool, list[RequestTrace]]:
        """Try to admit ``request`` at time ``now``.

        Returns ``(admitted, shed)`` where ``shed`` lists requests the
        shed-oldest policy evicted to make room.  A request offered past
        its deadline is refused (``admitted`` False, nothing shed); the
        engine records it as expired.
        """
        if request.deadline <= now + _EPS:
            return False, []
        shed: list[RequestTrace] = []
        if len(self._items) >= self.capacity:
            if self.policy == "reject":
                return False, []
            shed.append(self._pop_index(0))
        request.enqueued = now
        self._insert(request)
        self._observe_depth()
        return True, shed

    def push_back(self, requests: list[RequestTrace]) -> None:
        """Re-insert already-admitted requests (batch leftovers).

        Bypasses capacity checks: these requests were admitted and merely
        borrowed by a batching attempt that could not serve all of them.
        """
        for request in requests:
            self._insert(request)
        if requests:
            self._observe_depth()

    def pop(self, count: int, now: float
            ) -> tuple[list[RequestTrace], list[RequestTrace]]:
        """Take up to ``count`` live requests from the front.

        Returns ``(taken, expired)``: requests whose deadline has already
        passed are skimmed off and returned separately instead of being
        handed to a batch they can no longer meet.
        """
        expired = self.expire(now)
        taken = [self._pop_index(0) for _ in range(min(count, len(self._items)))]
        if taken:
            self._observe_depth()
        return taken, expired

    def expire(self, now: float) -> list[RequestTrace]:
        """Remove and return every queued request whose deadline passed."""
        expired = [r for r in self._items if r.deadline <= now + _EPS]
        if expired:
            dead = set(id(r) for r in expired)
            kept = [(k, r) for k, r in zip(self._keys, self._items)
                    if id(r) not in dead]
            self._keys = [k for k, _ in kept]
            self._items = [r for _, r in kept]
            self._observe_depth()
        return expired

    # -- internals ------------------------------------------------------
    def _observe_depth(self) -> None:
        if obs.enabled():
            obs.gauge("runtime_queue_depth", len(self._items))
            obs.gauge("runtime_queue_backpressure", self.backpressure)
    def _insert(self, request: RequestTrace) -> None:
        key = (request.arrival, request.request_id)
        index = bisect.bisect(self._keys, key)
        self._keys.insert(index, key)
        self._items.insert(index, request)

    def _pop_index(self, index: int) -> RequestTrace:
        self._keys.pop(index)
        return self._items.pop(index)
