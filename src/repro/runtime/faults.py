"""Deterministic fault injection for the runtime.

A :class:`FaultPlan` is an explicit, time-ordered list of events — the
engine replays it against the replica pool, so a plan plus a seed fully
determines every run's telemetry (the acceptance criterion: two runs
with the same seed are byte-identical).

Fault kinds
-----------
``crash``
    The replica dies permanently.  An in-flight batch fails at the crash
    instant (observed failure → immediate quarantine); an idle crashed
    replica keeps receiving dispatches, each wasting a detection timeout,
    until a health check quarantines it.
``slowdown``
    Service times multiply by ``factor`` for ``duration`` seconds
    (thermal throttling, noisy neighbour).  Dispatch scores see the
    slowdown, so load shifts away from the degraded replica.
``timeout``
    Transient stall: every execution started inside the window fails
    after the detection timeout, but the replica stays in rotation and
    recovers when the window closes.

:meth:`FaultPlan.random` draws a plan from a seeded generator for
randomized-but-reproducible chaos testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import ServingError

KINDS = ("crash", "slowdown", "timeout")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float
    kind: str
    replica_id: str
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ServingError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.time < 0:
            raise ServingError("fault time must be >= 0")
        if self.kind in ("slowdown", "timeout") and self.duration <= 0:
            raise ServingError(f"{self.kind} fault needs a positive duration")
        if self.kind == "slowdown" and self.factor < 1.0:
            raise ServingError("slowdown factor must be >= 1")


class FaultPlan:
    """A deterministic, time-ordered fault schedule."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events = sorted(events,
                             key=lambda e: (e.time, e.replica_id, e.kind))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def for_replica(self, replica_id: str) -> list[FaultEvent]:
        return [e for e in self.events if e.replica_id == replica_id]

    @classmethod
    def single_crash(cls, replica_id: str, time: float) -> "FaultPlan":
        """The benchmark scenario: one replica dies at ``time``."""
        return cls([FaultEvent(time=time, kind="crash",
                               replica_id=replica_id)])

    @classmethod
    def random(cls, seed: int, duration: float,
               replica_ids: Sequence[str], crashes: int = 1,
               slowdowns: int = 1, timeouts: int = 1,
               slowdown_factor: float = 3.0,
               window: float | None = None) -> "FaultPlan":
        """Draw a reproducible plan from a seeded generator.

        At most one crash per replica (and never every replica, so the
        service can always limp along); slowdown/timeout windows default
        to 10% of the run each.
        """
        if duration <= 0:
            raise ServingError("duration must be positive")
        rng = np.random.default_rng(seed)
        ids = list(replica_ids)
        window = duration / 10.0 if window is None else window
        events: list[FaultEvent] = []
        crashes = min(crashes, max(len(ids) - 1, 0))
        crash_ids = rng.choice(len(ids), size=crashes, replace=False) \
            if crashes else []
        for index in crash_ids:
            events.append(FaultEvent(
                time=float(rng.uniform(0.2, 0.8) * duration),
                kind="crash", replica_id=ids[int(index)]))
        for _ in range(slowdowns):
            events.append(FaultEvent(
                time=float(rng.uniform(0.0, duration - window)),
                kind="slowdown", replica_id=ids[int(rng.integers(len(ids)))],
                duration=window, factor=slowdown_factor))
        for _ in range(timeouts):
            events.append(FaultEvent(
                time=float(rng.uniform(0.0, duration - window)),
                kind="timeout", replica_id=ids[int(rng.integers(len(ids)))],
                duration=window))
        return cls(events)
