"""Structured per-request telemetry for the inference runtime.

Every request that enters the runtime carries one :class:`RequestTrace`
from admission to final outcome: enqueue / batch / execute / complete
timestamps, the slice rate it was served at, the replica that served it,
and how it ended.  A :class:`RuntimeReport` aggregates the traces into
the operational quantities the Sec. 4.1 application cares about —
latency percentiles, goodput, drop fraction, and delivered (expected)
accuracy — and exports everything as JSON for benchmarks.

The record types here are shared: :mod:`repro.serving.simulator` reuses
:func:`percentiles` for its own report export, and the runtime engine
reuses the simulator's nearest-rate accuracy lookup, so both pipelines
account accuracy and latency the same way.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

# Terminal outcomes of a request.  ``pending`` is the transient state a
# trace holds between admission and its final event.
OUTCOME_COMPLETED = "completed"   # executed; may still have missed its deadline
OUTCOME_REJECTED = "rejected"     # bounced at admission (queue full, reject policy)
OUTCOME_SHED = "shed"             # evicted by a newer arrival (shed-oldest policy)
OUTCOME_EXPIRED = "expired"       # deadline passed while waiting in the queue
OUTCOME_FAILED = "failed"         # retries exhausted after replica failures
OUTCOMES = (OUTCOME_COMPLETED, OUTCOME_REJECTED, OUTCOME_SHED,
            OUTCOME_EXPIRED, OUTCOME_FAILED)

_EPS = 1e-9


def rate_value(rate):
    """JSON-safe view of a slice rate or profile (None passes through).

    Scalars stay numeric; profile objects become their short label
    (``prof:<digest>``) via :meth:`~repro.slicing.profile.SliceProfile.label`.
    """
    if rate is None or isinstance(rate, (int, float)):
        return rate
    return format(rate)


def percentiles(values: Iterable[float],
                ps: Sequence[int] = (50, 95, 99)) -> dict[str, float | None]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of ``values``.

    An empty series yields ``None`` for every percentile (a zero-traffic
    window has *no* latency, which is not the same as a zero-second
    latency); table renderers print ``None`` as ``-`` and JSON carries
    ``null``.  Use :func:`format_seconds` to render a single value.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return {f"p{p}": None for p in ps}
    return {f"p{p}": float(np.percentile(data, p)) for p in ps}


def format_seconds(value: float | None, scale: float = 1e3,
                   unit: str = "ms", digits: int = 1) -> str:
    """Render a latency statistic, or ``-`` when the series was empty."""
    if value is None:
        return "-"
    return f"{value * scale:.{digits}f}{unit}"


@dataclass
class RequestTrace:
    """Lifecycle record of one request (also the runtime's request object).

    ``payload`` and ``rate_cap`` are operational fields, not telemetry:
    ``payload`` indexes the request's input row when the runtime executes
    a real model, and ``rate_cap`` bounds the slice rate of a retried
    request (retry-with-downgrade) — a retried request is never re-run
    wider than its failed attempt.
    """

    request_id: int
    arrival: float
    deadline: float
    enqueued: float | None = None
    batched: float | None = None
    started: float | None = None
    completed: float | None = None
    rate: float | None = None
    replica: str | None = None
    outcome: str = "pending"
    attempts: int = 0
    expected_accuracy: float = 0.0
    correct: bool | None = None
    payload: int | None = None
    rate_cap: float | None = field(default=None, repr=False)
    # Final cascade stage index (cascade mode only; None otherwise).
    stage: int | None = None

    @property
    def latency(self) -> float | None:
        """End-to-end latency (arrival to completion), if completed."""
        if self.completed is None:
            return None
        return self.completed - self.arrival

    @property
    def deadline_met(self) -> bool:
        return (self.completed is not None
                and self.completed <= self.deadline + _EPS)

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "arrival": self.arrival,
            "deadline": self.deadline,
            "enqueued": self.enqueued,
            "batched": self.batched,
            "started": self.started,
            "completed": self.completed,
            "latency": self.latency,
            "rate": rate_value(self.rate),
            "replica": self.replica,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "deadline_met": self.deadline_met,
            "expected_accuracy": self.expected_accuracy,
            "correct": self.correct,
            **({} if self.stage is None else {"stage": self.stage}),
        }


@dataclass
class RuntimeReport:
    """Aggregate view over a run's request traces."""

    traces: list[RequestTrace] = field(default_factory=list)
    duration: float = 0.0

    # -- counts ---------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return len(self.traces)

    @property
    def completed(self) -> list[RequestTrace]:
        return [t for t in self.traces if t.outcome == OUTCOME_COMPLETED]

    @property
    def on_time(self) -> list[RequestTrace]:
        return [t for t in self.completed if t.deadline_met]

    def outcome_counts(self) -> dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for trace in self.traces:
            counts[trace.outcome] = counts.get(trace.outcome, 0) + 1
        return counts

    @property
    def total_dropped(self) -> int:
        """Requests that never produced an answer."""
        return sum(1 for t in self.traces
                   if t.outcome != OUTCOME_COMPLETED)

    @property
    def drop_fraction(self) -> float:
        total = self.total_requests
        return self.total_dropped / total if total else 0.0

    @property
    def retries(self) -> int:
        """Total extra attempts beyond each request's first."""
        return sum(max(t.attempts - 1, 0) for t in self.traces)

    # -- latency --------------------------------------------------------
    def latency_percentiles(self,
                            ps: Sequence[int] = (50, 95, 99)
                            ) -> dict[str, float]:
        return percentiles((t.latency for t in self.completed), ps)

    @property
    def mean_latency(self) -> float:
        latencies = [t.latency for t in self.completed]
        return float(np.mean(latencies)) if latencies else 0.0

    # -- goodput and accuracy -------------------------------------------
    @property
    def goodput(self) -> float:
        """On-time completions per second of simulated time."""
        if self.duration <= 0:
            return 0.0
        return len(self.on_time) / self.duration

    @property
    def mean_rate(self) -> float:
        rates = [float(t.rate) for t in self.completed
                 if t.rate is not None]
        return float(np.mean(rates)) if rates else 0.0

    @property
    def mean_expected_accuracy(self) -> float:
        """On-time-completion accuracy averaged over *all* arrivals.

        Dropped and late requests contribute 0, mirroring
        :attr:`repro.serving.ServingReport.mean_accuracy`.
        """
        total = self.total_requests
        if not total:
            return 0.0
        gained = sum(t.expected_accuracy for t in self.on_time)
        return gained / total

    # The benchmark's headline number: fraction of arrivals answered on
    # time, weighted by the accuracy each answer carries.
    goodput_weighted_accuracy = mean_expected_accuracy

    @property
    def escalation_fraction(self) -> float | None:
        """Completed requests that escalated past the cascade floor.

        ``None`` unless the run served in cascade mode (no trace carries
        a stage otherwise).
        """
        staged = [t for t in self.completed if t.stage is not None]
        if not staged:
            return None
        return sum(1 for t in staged if t.stage > 0) / len(staged)

    def stage_histogram(self) -> dict[int, int] | None:
        """Completed requests per final cascade stage (None off-cascade)."""
        staged = [t.stage for t in self.completed if t.stage is not None]
        if not staged:
            return None
        histogram: dict[int, int] = {}
        for stage in staged:
            histogram[stage] = histogram.get(stage, 0) + 1
        return dict(sorted(histogram.items()))

    @property
    def measured_accuracy(self) -> float | None:
        """Realized accuracy over completions, when labels were supplied."""
        judged = [t.correct for t in self.completed if t.correct is not None]
        if not judged:
            return None
        return sum(judged) / len(judged)

    # -- export ---------------------------------------------------------
    def to_dict(self, include_traces: bool = True) -> dict:
        summary = {
            "duration": self.duration,
            "total_requests": self.total_requests,
            "outcomes": self.outcome_counts(),
            "drop_fraction": self.drop_fraction,
            "retries": self.retries,
            "goodput": self.goodput,
            "mean_rate": self.mean_rate,
            "mean_latency": self.mean_latency,
            "latency": self.latency_percentiles(),
            "mean_expected_accuracy": self.mean_expected_accuracy,
            "goodput_weighted_accuracy": self.goodput_weighted_accuracy,
            "measured_accuracy": self.measured_accuracy,
        }
        if self.escalation_fraction is not None:
            summary["escalation_fraction"] = self.escalation_fraction
            summary["stage_histogram"] = {
                str(k): v for k, v in self.stage_histogram().items()}
        if include_traces:
            summary["traces"] = [t.to_dict() for t in self.traces]
        return summary

    def to_json(self, include_traces: bool = True, indent: int = 1) -> str:
        return json.dumps(self.to_dict(include_traces=include_traces),
                          indent=indent)
