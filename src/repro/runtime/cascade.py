"""Confidence cascades: run cheap, escalate the unsure, resume the work.

Every batch first executes at the cascade's cheapest slice profile.
Rows whose prediction *margin* (top-1 minus top-2 logit) clears the
stage's confidence threshold are answered immediately; the rest
escalate to the next wider stage.  Escalation is **incremental**: the
narrow pass ran through a :class:`~repro.slicing.resume.ResumablePlan`,
so the escalated rows :meth:`~repro.slicing.resume.ResumablePlan.subset`
out their retained intermediates and
:meth:`~repro.slicing.resume.ResumablePlan.widen` to the next profile,
paying only the widening cross-terms instead of a from-scratch pass.
In exact mode the widened logits are bitwise what a from-scratch pass
at the wider profile would produce, so incremental and
recompute-from-scratch escalation are *prediction-identical* and differ
only in cost — which is what the differential harness pins.

:class:`CascadeExecutor` is the deterministic, clock-free core the
runtime engine calls at dispatch time; :class:`CascadeResult` carries
per-row final stages, escalation counts and the multiply-add accounting
the engine turns into service time and the
``cascade_escalations_total`` / ``cascade_flops_saved_total`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ServingError
from ..slicing.profile import as_profile
from ..slicing.resume import ResumablePlan, pointwise_nested

__all__ = ["CascadeStage", "CascadeResult", "CascadeExecutor",
           "margins_of"]


def margins_of(logits: np.ndarray) -> np.ndarray:
    """Per-row confidence margin: top-1 minus top-2 logit.

    The standard cascade confidence signal — cheap, monotone in the
    softmax margin, and deterministic (no sampling).
    """
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[1] < 2:
        raise ServingError(
            f"margins need (batch, classes>=2) logits, got {logits.shape}")
    top2 = np.partition(logits, -2, axis=-1)[:, -2:]
    return top2[:, 1] - top2[:, 0]


@dataclass(frozen=True)
class CascadeStage:
    """One rung of the cascade: a slice profile and an exit threshold.

    Rows whose margin is **at least** ``threshold`` exit at this stage;
    the rest escalate.  The terminal stage has ``threshold=None`` —
    everything that reaches it exits there.
    """

    rate: object               # uniform rate or SliceProfile
    threshold: float | None = None

    def label(self) -> str:
        profile = as_profile(self.rate)
        return f"{float(profile):g}" if profile.uniform \
            else profile.fingerprint()


@dataclass
class CascadeResult:
    """What one cascaded batch produced, and what it cost."""

    predictions: np.ndarray          # (n,) final class per row
    stages: np.ndarray               # (n,) final stage index per row
    stage_rows: list[int]            # rows processed at each stage
    stage_spent: list[int]           # multiply-adds actually executed
    stage_full: list[int]            # from-scratch multiply-adds
    escalations: list[tuple[int, int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.predictions)

    @property
    def spent_madds(self) -> int:
        return sum(self.stage_spent)

    @property
    def recompute_madds(self) -> int:
        """What the same escalations would cost recomputed from scratch."""
        return sum(self.stage_full)

    @property
    def flops_saved(self) -> int:
        return self.recompute_madds - self.spent_madds

    @property
    def escalated_rows(self) -> int:
        return int(np.count_nonzero(self.stages > 0))

    def stage_counts(self) -> list[int]:
        """Rows that *exited* at each stage."""
        return [int(np.count_nonzero(self.stages == k))
                for k in range(len(self.stage_rows))]

    def to_dict(self) -> dict:
        return {
            "rows": len(self),
            "exits_per_stage": self.stage_counts(),
            "rows_per_stage": list(self.stage_rows),
            "spent_madds": self.spent_madds,
            "recompute_madds": self.recompute_madds,
            "flops_saved": self.flops_saved,
            "escalations": [
                {"from": frm, "to": to, "rows": count}
                for frm, to, count in self.escalations],
        }


class CascadeExecutor:
    """Runs batches through a confidence cascade over one model.

    Parameters
    ----------
    model:
        A model :class:`~repro.slicing.resume.ResumablePlan` supports
        with ``(batch, features)`` inputs (row subsetting rules out
        sequence models).
    stages:
        Cheapest-first :class:`CascadeStage` rungs; each stage's profile
        must be pointwise-nested inside the next (Eq. 2), and only the
        terminal stage may omit its threshold.
    exact:
        Widening mode for escalations.  ``True`` (default) keeps
        escalated predictions bitwise equal to a from-scratch pass at
        the reached profile; ``False`` uses the paper's approximate
        cross-term reuse.
    incremental:
        ``False`` switches escalation to the recompute-from-scratch
        baseline (same thresholds, same predictions in exact mode,
        no reuse) — the cost comparator the benchmark reports.
    """

    def __init__(self, model, stages: Sequence[CascadeStage],
                 exact: bool = True, incremental: bool = True):
        stages = [s if isinstance(s, CascadeStage) else CascadeStage(*s)
                  for s in stages]
        if len(stages) < 2:
            raise ServingError("a cascade needs at least two stages")
        for k, stage in enumerate(stages[:-1]):
            if stage.threshold is None:
                raise ServingError(
                    f"stage {k} ({stage.label()}) needs a threshold; only "
                    f"the terminal stage may omit it")
            if stage.threshold < 0:
                raise ServingError("thresholds must be >= 0")
            if not pointwise_nested(model, stage.rate, stages[k + 1].rate):
                raise ServingError(
                    f"stage {k + 1} ({stages[k + 1].label()}) is not "
                    f"pointwise wider than stage {k} ({stage.label()})")
        self.model = model
        self.stages = stages
        self.exact = bool(exact)
        self.incremental = bool(incremental)

    def stage_rates(self) -> list:
        return [stage.rate for stage in self.stages]

    def run_batch(self, inputs: np.ndarray) -> CascadeResult:
        """Cascade one batch; returns predictions plus cost accounting."""
        x = np.ascontiguousarray(inputs, dtype=np.float32)
        n = x.shape[0]
        plan = ResumablePlan(self.model, self.stages[0].rate,
                             exact=self.exact)
        logits = plan.run(x)
        predictions = np.argmax(logits, axis=-1)
        final_stage = np.zeros(n, dtype=np.int64)
        stage_rows = [n]
        stage_spent = [plan.spent_madds]
        stage_full = [plan.scratch_madds]
        escalations: list[tuple[int, int, int]] = []

        rows_global = np.arange(n)
        margins = margins_of(logits)
        for k, stage in enumerate(self.stages[:-1]):
            unsure = margins < stage.threshold
            count = int(np.count_nonzero(unsure))
            if count == 0:
                break
            local = np.nonzero(unsure)[0]
            rows_global = rows_global[local]
            escalations.append((k, k + 1, count))
            target = self.stages[k + 1].rate
            if self.incremental:
                plan = plan.subset(local)
                logits = plan.widen(target)
            else:
                plan = ResumablePlan(self.model, target, exact=self.exact)
                logits = plan.run(x[rows_global])
            stage_rows.append(count)
            stage_spent.append(plan.spent_madds)
            # ``scratch_madds`` is what a from-scratch pass at the
            # reached profile costs on these rows — the recompute
            # baseline for this escalation.
            stage_full.append(plan.scratch_madds)
            predictions[rows_global] = np.argmax(logits, axis=-1)
            final_stage[rows_global] = k + 1
            margins = margins_of(logits)
        return CascadeResult(predictions=predictions, stages=final_stage,
                             stage_rows=stage_rows, stage_spent=stage_spent,
                             stage_full=stage_full, escalations=escalations)

    def calibrate(self, inputs: np.ndarray, labels: np.ndarray) -> dict:
        """Per-stage *conditional* exit accuracy on a labeled holdout.

        A row exiting at a cheap stage did so because its margin was
        high, so its expected accuracy is far above the stage profile's
        marginal accuracy — this is the expected-accuracy table cascade
        serving should hand the runtime (keyed by stage rate).  Stages
        with no exits during calibration inherit the overall cascade
        accuracy.
        """
        result = self.run_batch(inputs)
        labels = np.asarray(labels)
        if labels.shape[0] != len(result):
            raise ServingError(
                f"{labels.shape[0]} labels for {len(result)} inputs")
        overall = float(np.mean(result.predictions == labels))
        accuracy = {}
        for k, stage in enumerate(self.stages):
            mask = result.stages == k
            accuracy[stage.rate] = (
                float(np.mean(result.predictions[mask] == labels[mask]))
                if mask.any() else overall)
        return accuracy

    def service_seconds(self, result: CascadeResult,
                        latency_profile) -> float:
        """Calibrated wall time of a cascaded batch.

        Each stage contributes its processed rows at the stage profile's
        calibrated per-sample time, scaled by the fraction of
        from-scratch multiply-adds actually executed — incremental
        escalation is proportionally cheaper than its recompute
        baseline, in the same units the rest of the runtime uses.
        """
        total = 0.0
        for stage, rows, spent, full in zip(self.stages, result.stage_rows,
                                            result.stage_spent,
                                            result.stage_full):
            if rows == 0:
                continue
            fraction = 1.0 if full == 0 else spent / full
            total += rows * latency_profile.per_sample(stage.rate) * fraction
        return total
