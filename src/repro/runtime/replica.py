"""A serving replica: calibrated latency plus (optionally) a real model.

Each replica advances the simulated clock with a *calibrated* latency
model — per-sample service time per slice rate, ideally the measured
p95 from :func:`repro.metrics.latency_table` — while optionally
executing a *real* sliced model (or per-rate
:func:`~repro.slicing.deploy.materialize_subnet` artifacts) on the
request payloads, so the runtime produces genuine predictions without
wall-clock noise leaking into the (deterministic) telemetry.

Fault state lives on the replica: crashes, slowdown windows, and
transient-timeout windows set by :mod:`repro.runtime.faults` change how
dispatches resolve, and the token counter invalidates in-flight work
when a crash lands mid-batch.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ServingError
from ..slicing.context import slice_profile, validate_rate
from ..slicing.plans import PlanCache, shared_cache
from ..slicing.profile import SliceProfile, as_profile
from ..tensor import Tensor, no_grad

STATE_HEALTHY = "healthy"
STATE_CRASHED = "crashed"


class LatencyProfile:
    """Per-sample service time as a function of the slice rate.

    Built either from a single full-width per-sample latency ``t`` (the
    paper's quadratic model ``t * r**2``) or from measured per-rate
    values — e.g. the p95 column of :func:`repro.metrics.latency_table`.
    """

    def __init__(self, full_per_sample: float | None = None,
                 per_rate: Mapping | None = None):
        if full_per_sample is None and not per_rate:
            raise ServingError(
                "LatencyProfile needs full_per_sample and/or per_rate")
        if full_per_sample is not None and full_per_sample <= 0:
            raise ServingError("full_per_sample must be positive")
        self.full_per_sample = full_per_sample
        # Uniform rates (floats or uniform profiles) calibrate the
        # scalar curve; non-uniform profiles get exact-match entries
        # keyed by fingerprint.
        self.per_rate: dict[float, float] = {}
        self.per_profile: dict[str, float] = {}
        for key, value in (per_rate or {}).items():
            value = float(value)
            if value <= 0:
                raise ServingError(
                    f"per-sample latency at rate {key} must be positive")
            if isinstance(key, SliceProfile) and not key.uniform:
                self.per_profile[key.fingerprint()] = value
            else:
                self.per_rate[validate_rate(float(key))] = value

    def per_sample(self, rate) -> float:
        """Calibrated per-sample seconds at ``rate`` (rate or profile).

        Exact per-rate measurements win; otherwise the nearest measured
        rate is scaled quadratically; with no measurements at all the
        analytic ``t * r**2`` model applies.  Non-uniform profiles match
        their own calibration entry exactly, falling back to the scalar
        curve at their mean rate.
        """
        if isinstance(rate, SliceProfile) and not rate.uniform:
            exact = self.per_profile.get(rate.fingerprint())
            if exact is not None:
                return exact
            rate = float(rate)
        rate = validate_rate(float(rate))
        if rate in self.per_rate:
            return self.per_rate[rate]
        if self.per_rate:
            nearest = min(self.per_rate, key=lambda r: abs(r - rate))
            return self.per_rate[nearest] * (rate / nearest) ** 2
        return self.full_per_sample * rate * rate

    @classmethod
    def from_latency_table(cls, table: Mapping[float, Mapping[str, float]],
                           percentile: str = "p95") -> "LatencyProfile":
        """Calibrate from :func:`repro.metrics.latency_table` output.

        Uses the requested percentile column (p50/p95/p99) divided by the
        measured batch size; falls back to the median ``latency`` column
        for tables produced before percentiles existed.
        """
        per_rate = {}
        for rate, entry in table.items():
            total = entry.get(percentile, entry["latency"])
            samples = entry.get("samples", 1.0)
            per_rate[rate] = total / samples
        return cls(per_rate=per_rate)


class Replica:
    """One server in the pool, with its own calibration and fault state."""

    def __init__(self, replica_id: str, profile: LatencyProfile,
                 model=None, artifacts: Mapping[float, object] | None = None,
                 use_plans: bool = True, plan_cache: PlanCache | None = None):
        self.replica_id = str(replica_id)
        self.profile = profile
        self.model = model
        self.artifacts = dict(artifacts or {})
        self.use_plans = bool(use_plans)
        self.plan_cache = plan_cache
        self.state = STATE_HEALTHY
        self.busy_until = 0.0
        self.slowdown_factor = 1.0
        self.slowdown_until = 0.0
        self.timeout_until = 0.0
        # Monotone token identifying the current dispatch; a completion
        # event whose token no longer matches is stale (crash landed
        # in-flight) and must be ignored.
        self.token = 0

    # -- fault state ----------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self.state == STATE_CRASHED

    def crash(self) -> None:
        self.state = STATE_CRASHED

    def slow_down(self, factor: float, until: float) -> None:
        if factor < 1.0:
            raise ServingError(f"slowdown factor must be >= 1, got {factor}")
        self.slowdown_factor = factor
        self.slowdown_until = until

    def timeout_window(self, until: float) -> None:
        self.timeout_until = until

    def timing_out(self, now: float) -> bool:
        return now < self.timeout_until - 1e-12

    # -- timing ---------------------------------------------------------
    def service_time(self, batch_size: int, rate: float, now: float) -> float:
        """Calibrated wall time to execute ``batch_size`` samples at ``rate``."""
        if batch_size < 1:
            raise ServingError("batch_size must be >= 1")
        base = batch_size * self.profile.per_sample(rate)
        return self.scaled_time(base, now)

    def scaled_time(self, seconds: float, now: float) -> float:
        """Apply any active slowdown window to a pre-computed duration.

        Cascade dispatches compute their own base time (per-stage rows
        times per-stage calibrated cost) but still slow down with the
        replica they run on.
        """
        if now < self.slowdown_until - 1e-12:
            return seconds * self.slowdown_factor
        return seconds

    def begin(self, until: float) -> int:
        """Mark the replica busy until ``until``; returns the dispatch token."""
        self.token += 1
        self.busy_until = until
        return self.token

    def invalidate(self, now: float) -> None:
        """Abort in-flight work (crash landed mid-batch)."""
        self.token += 1
        self.busy_until = now

    # -- real execution -------------------------------------------------
    def _cache(self) -> PlanCache:
        return self.plan_cache if self.plan_cache is not None \
            else shared_cache()

    def warm_plans(self, rates, fold_rescale: bool = True) -> int:
        """Pre-compile inference plans for ``rates``; returns plans ensured.

        Rates already covered by a materialized artifact are skipped —
        artifacts win over plans in :meth:`predict`.
        """
        if self.model is None:
            return 0
        warmed = 0
        for rate in rates:
            profile = as_profile(rate)
            if profile in self.artifacts:
                continue
            self._cache().get(self.model, profile, fold_rescale=fold_rescale)
            warmed += 1
        return warmed

    def predict(self, inputs: np.ndarray, rate) -> np.ndarray | None:
        """Class predictions for ``inputs`` at ``rate`` (None if no model).

        ``rate`` may be a scalar or a slice profile.  Prefers a
        materialized per-rate artifact (a deployed standalone subnet);
        otherwise serves through the compiled inference plan for
        ``(model, rate)`` (see :mod:`repro.slicing.plans`), falling back
        to the uncompiled sliced forward when ``use_plans=False``.
        """
        profile = as_profile(rate)
        if profile in self.artifacts:
            batch = Tensor(np.asarray(inputs, dtype=np.float32))
            with no_grad():
                logits = self.artifacts[profile](batch).data
        elif self.model is None:
            return None
        elif self.use_plans:
            plan = self._cache().get(self.model, profile)
            logits = plan.run(np.asarray(inputs))
        else:
            batch = Tensor(np.asarray(inputs, dtype=np.float32))
            with no_grad(), slice_profile(profile):
                logits = self.model(batch).data
        return np.argmax(logits, axis=-1)
