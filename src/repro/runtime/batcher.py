"""Dynamic batching: close a batch on size or timeout, pick its rate.

A batch closes as soon as either ``max_batch_size`` requests are waiting
or the head of the queue has waited ``timeout`` seconds (``timeout=0``
batches whatever is queued the moment a replica frees up).  The slice
rate is chosen *per batch* by a controller from :mod:`repro.serving` —
the paper's elastic rule ``n * r**2 * t <= T/2`` via
:func:`repro.slicing.budget.rate_for_latency`, or a fixed-rate baseline.

Retry-with-downgrade hooks in here: any request carrying a ``rate_cap``
(set after a failed attempt) caps the whole batch's rate, so a retried
request is never re-executed wider than its original attempt.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..errors import ServingError
from .queue import AdmissionQueue
from .telemetry import RequestTrace

_EPS = 1e-9


def _leq(a, b) -> bool:
    """``a <= b`` for rates or profiles, with the float tolerance.

    Profiles coerce to their mean rate, so a cap set by a non-uniform
    profile bounds later batches by overall width.
    """
    return float(a) <= float(b) + _EPS


@dataclass
class Batch:
    """A closed batch: the requests, the chosen slice rate, and when."""

    requests: list[RequestTrace]
    rate: float
    formed_at: float

    def __len__(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Size-or-timeout batch former around a slice-rate controller."""

    def __init__(self, controller, max_batch_size: int,
                 timeout: float = 0.0):
        if max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if timeout < 0:
            raise ServingError(f"timeout must be >= 0, got {timeout}")
        if controller.choose(1) is None:
            raise ServingError(
                "controller cannot serve even a single request within "
                "the SLO; no batch is ever feasible")
        self.controller = controller
        self.max_batch_size = max_batch_size
        self.timeout = timeout

    def ready(self, queue: AdmissionQueue, now: float) -> bool:
        """Whether a batch should close right now."""
        if not len(queue):
            return False
        if len(queue) >= self.max_batch_size:
            return True
        return queue.oldest_wait(now) >= self.timeout - _EPS

    def close_time(self, queue: AdmissionQueue, now: float) -> float | None:
        """When the current head will force a batch (None if queue empty)."""
        if not len(queue):
            return None
        return now - queue.oldest_wait(now) + self.timeout

    def form(self, queue: AdmissionQueue, now: float
             ) -> tuple[Batch | None, list[RequestTrace]]:
        """Close a batch from the queue front.

        Returns ``(batch, expired)``.  If the controller cannot serve the
        full candidate batch within the SLO (``choose`` returns None),
        the batch shrinks to the controller's capacity at its most
        degraded rate and the leftovers return to the queue — continuous
        time turns overload into queueing delay, and the per-request
        deadlines turn sustained overload into expirations.
        """
        taken, expired = queue.pop(self.max_batch_size, now)
        if not taken:
            return None, expired
        rate = self.controller.choose(len(taken))
        if rate is None:
            capacity = self._floor_capacity()
            keep, leftover = taken[:capacity], taken[capacity:]
            queue.push_back(leftover)
            taken = keep
            rate = self.controller.choose(len(taken))
            if rate is None:  # pragma: no cover - guarded by __init__
                queue.push_back(taken)
                return None, expired
        rate = self._apply_caps(taken, rate)
        for request in taken:
            request.batched = now
        if obs.enabled():
            obs.observe("runtime_batch_size", float(len(taken)))
            obs.gauge("runtime_batch_occupancy",
                      len(taken) / self.max_batch_size)
            obs.count("runtime_batches_total", rate=f"{rate:g}")
        return Batch(requests=taken, rate=rate, formed_at=now), expired

    # -- internals ------------------------------------------------------
    def _floor_capacity(self) -> int:
        """Largest batch the controller can serve at its narrowest rate."""
        rates = getattr(self.controller, "rates", None)
        floor = min(rates) if rates else getattr(self.controller, "rate")
        return max(int(self.controller.max_batch(floor)), 1)

    def _apply_caps(self, requests: list[RequestTrace], rate: float) -> float:
        """Clamp the batch rate to the tightest retry downgrade cap."""
        caps = [r.rate_cap for r in requests if r.rate_cap is not None]
        if not caps:
            return rate
        cap = min(caps)
        if _leq(rate, cap):
            return rate
        candidates = getattr(self.controller, "rates", None) \
            or [getattr(self.controller, "rate")]
        feasible = [r for r in candidates if _leq(r, cap)]
        return max(feasible) if feasible else min(candidates)
