"""Continuous-time multi-replica inference runtime (Sec. 4.1, scaled up).

Event-driven serving on top of the paper's elastic degradation rule:
per-request admission with backpressure (:mod:`.queue`), dynamic
batching with per-batch slice-rate selection (:mod:`.batcher`), a
replica pool with slice-rate-aware dispatch (:mod:`.replica`,
:mod:`.pool`), deterministic fault injection with health checking and
retry-with-downgrade (:mod:`.faults`), confidence cascades with
incremental (resume-not-recompute) escalation (:mod:`.cascade`), and
structured per-request telemetry (:mod:`.telemetry`), all orchestrated
by :mod:`.engine`.
"""

from .telemetry import (
    OUTCOME_COMPLETED,
    OUTCOME_EXPIRED,
    OUTCOME_FAILED,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    OUTCOMES,
    RequestTrace,
    RuntimeReport,
    format_seconds,
    percentiles,
)
from .queue import AdmissionQueue
from .batcher import Batch, DynamicBatcher
from .replica import LatencyProfile, Replica
from .pool import ReplicaPool
from .faults import FaultEvent, FaultPlan
from .cascade import CascadeExecutor, CascadeResult, CascadeStage, margins_of
from .workers import POOL_BACKENDS, ProcessReplicaPool, WorkerReplica, build_pool
from .engine import InferenceRuntime, RuntimeConfig

__all__ = [
    "OUTCOMES",
    "OUTCOME_COMPLETED",
    "OUTCOME_REJECTED",
    "OUTCOME_SHED",
    "OUTCOME_EXPIRED",
    "OUTCOME_FAILED",
    "RequestTrace",
    "RuntimeReport",
    "format_seconds",
    "percentiles",
    "AdmissionQueue",
    "Batch",
    "DynamicBatcher",
    "LatencyProfile",
    "Replica",
    "ReplicaPool",
    "FaultEvent",
    "FaultPlan",
    "CascadeStage",
    "CascadeResult",
    "CascadeExecutor",
    "margins_of",
    "POOL_BACKENDS",
    "ProcessReplicaPool",
    "WorkerReplica",
    "build_pool",
    "InferenceRuntime",
    "RuntimeConfig",
]
