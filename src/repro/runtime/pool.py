"""Replica pool: rotation, health belief, and slice-rate-aware dispatch.

The pool tracks which replicas it *believes* are healthy (rotation).
A crashed replica keeps receiving dispatches until the failure is
observed — either an in-flight batch dies with it, a fresh dispatch
times out, or a periodic health check probes it — which is what makes
the fault model interesting: detection latency costs goodput.

Dispatch is slice-rate-aware: a replica's score is its *projected
completion time* for this batch at this rate (queue drain + calibrated
service time, including any active slowdown), so heterogeneous and
degraded replicas are weighed correctly.

Policies: ``"least-loaded"`` scans every replica in rotation;
``"power-of-two"`` samples two with a seeded generator and keeps the
better — the classic O(1) approximation with near-optimal balance.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .. import obs
from ..errors import ServingError
from .replica import Replica

DISPATCH_POLICIES = ("least-loaded", "power-of-two")


class ReplicaPool:
    """An ordered set of replicas with a dispatch policy."""

    #: Serving backend tag; the process-backed subclass overrides it.
    backend = "thread"

    def __init__(self, replicas: Iterable[Replica],
                 dispatch: str = "least-loaded", seed: int = 0):
        self.replicas = list(replicas)
        if not self.replicas:
            raise ServingError("pool needs at least one replica")
        ids = [r.replica_id for r in self.replicas]
        if len(set(ids)) != len(ids):
            raise ServingError(f"duplicate replica ids: {ids}")
        if dispatch not in DISPATCH_POLICIES:
            raise ServingError(
                f"unknown dispatch {dispatch!r}; choose from "
                f"{DISPATCH_POLICIES}")
        self.dispatch = dispatch
        self._rng = np.random.default_rng(seed)
        self._out_of_rotation: set[str] = set()

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self) -> Iterator[Replica]:
        return iter(self.replicas)

    def get(self, replica_id: str) -> Replica:
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica
        raise ServingError(f"no replica {replica_id!r} in pool")

    # -- health belief --------------------------------------------------
    def quarantine(self, replica_id: str) -> None:
        """Take a replica out of rotation (failure observed)."""
        if obs.enabled() and replica_id not in self._out_of_rotation:
            obs.count("runtime_quarantines_total")
        self._out_of_rotation.add(replica_id)
        if obs.enabled():
            obs.gauge("runtime_replicas_in_rotation",
                      len(self.replicas) - len(self._out_of_rotation))

    def in_rotation(self) -> list[Replica]:
        return [r for r in self.replicas
                if r.replica_id not in self._out_of_rotation]

    def health_check(self) -> list[Replica]:
        """Probe every replica in rotation; quarantine dead ones."""
        detected = [r for r in self.in_rotation() if r.crashed]
        if detected and obs.enabled():
            obs.count("runtime_health_detections_total",
                      amount=len(detected))
        for replica in detected:
            self.quarantine(replica.replica_id)
        return detected

    # -- plan warm-up ---------------------------------------------------
    def warm_plans(self, rates) -> int:
        """Pre-compile inference plans for ``rates`` on every replica.

        Run once before serving so the first request at each rate does
        not pay the compilation cost; returns the total number of plans
        ensured across the pool.
        """
        rates = list(rates)
        return sum(replica.warm_plans(rates) for replica in self.replicas)

    def warm_cascade(self, executor) -> int:
        """Pre-compile from-scratch plans at every cascade stage rate.

        The cascade's incremental path builds resumable plans per batch,
        but retries, the recompute baseline and any non-cascade predict
        at a stage rate go through the replicas' compiled-plan cache —
        warm those so no dispatch pays compilation.
        """
        return self.warm_plans(executor.stage_rates())

    # -- dispatch -------------------------------------------------------
    def idle(self, now: float) -> list[Replica]:
        """Replicas in rotation that are free to accept a batch now."""
        return [r for r in self.in_rotation() if r.busy_until <= now + 1e-12]

    def pick(self, candidates: list[Replica], batch_size: int, rate: float,
             now: float) -> Replica:
        """Choose a replica for a batch under the pool's dispatch policy."""
        if not candidates:
            raise ServingError("no candidate replicas to dispatch to")
        if self.dispatch == "power-of-two" and len(candidates) >= 2:
            first, second = self._rng.choice(len(candidates), size=2,
                                             replace=False)
            candidates = [candidates[int(first)], candidates[int(second)]]
        return min(candidates,
                   key=lambda r: (self._score(r, batch_size, rate, now),
                                  r.replica_id))

    @staticmethod
    def _score(replica: Replica, batch_size: int, rate: float,
               now: float) -> float:
        start = max(replica.busy_until, now)
        return start + replica.service_time(batch_size, rate, now)

    # -- lifecycle -------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Release pool resources; a no-op for the in-process backend.

        Exists so callers (cluster nodes, the CLI) can tear any pool
        down uniformly — the process backend overrides this to stop its
        workers and unlink the shared-memory arena.
        """

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
