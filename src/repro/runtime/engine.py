"""The continuous-time, event-driven inference runtime.

Where :func:`repro.serving.simulate_serving` models the Sec. 4.1
application as fixed ``T/2`` windows on one server, this engine runs a
*continuous* clock over a replica pool: per-request admission with
backpressure, dynamic batching (size or timeout), slice-rate-aware
dispatch, fault injection with health checking, and
retry-with-downgrade.  Every request leaves a structured trace; the run
is fully determined by the arrival trace, the calibrated latency
profiles, the fault plan, and one seed.

Event kinds, processed in timestamp order (ties broken by insertion):

* ``arrival`` — a request reaches the admission queue;
* ``expire``  — a queued request's deadline passes;
* ``batch``   — a batching-timeout wakeup (close a partial batch);
* ``complete``— an execution finishes (successfully or not);
* ``fault``   — a scheduled fault fires on a replica;
* ``health``  — the periodic health check probes the pool.

After every event the engine drains: while a batch is ready and an
in-rotation replica is idle, it closes a batch, picks its slice rate via
the controller, dispatches, and schedules the completion.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .. import obs
from ..errors import ServingError
from ..serving.simulator import accuracy_for_rate
from .batcher import Batch, DynamicBatcher
from .faults import FaultEvent, FaultPlan
from .pool import ReplicaPool
from .queue import AdmissionQueue
from .telemetry import (
    OUTCOME_COMPLETED,
    OUTCOME_EXPIRED,
    OUTCOME_FAILED,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    RequestTrace,
    RuntimeReport,
    rate_value,
)

_EPS = 1e-9


@dataclass
class RuntimeConfig:
    """Tunables of the runtime (defaults suit the serving examples)."""

    latency_slo: float
    queue_capacity: int = 512
    queue_policy: str = "reject"
    max_batch_size: int = 64
    batch_timeout: float = 0.0
    dispatch: str = "least-loaded"
    health_check_interval: float = 1.0
    detection_timeout: float = 0.05
    max_attempts: int = 3
    seed: int = 0

    def __post_init__(self):
        if self.latency_slo <= 0:
            raise ServingError("latency_slo must be positive")
        if self.health_check_interval <= 0:
            raise ServingError("health_check_interval must be positive")
        if self.detection_timeout <= 0:
            raise ServingError("detection_timeout must be positive")
        if self.max_attempts < 1:
            raise ServingError("max_attempts must be >= 1")


class InferenceRuntime:
    """Multi-replica serving runtime around a slice-rate controller."""

    def __init__(self, pool: ReplicaPool, controller, config: RuntimeConfig,
                 accuracy_of_rate: Mapping[float, float],
                 fault_plan: FaultPlan | None = None,
                 inputs: np.ndarray | None = None,
                 labels: np.ndarray | None = None,
                 slice_labels: Sequence[str] | Mapping[int, str] | None = None,
                 cascade=None):
        self.pool = pool
        self.controller = controller
        self.config = config
        self.accuracy_of_rate = dict(accuracy_of_rate)
        self.fault_plan = fault_plan or FaultPlan()
        self.inputs = inputs
        self.labels = labels
        # Cascade mode: a CascadeExecutor runs each batch at dispatch
        # time (cheapest stage first, margin-gated incremental
        # escalation) instead of the single-rate replica path.
        self.cascade = cascade
        if cascade is not None and inputs is None:
            raise ServingError(
                "cascade mode executes a real model; supply inputs")
        if labels is not None and inputs is None:
            raise ServingError("labels supplied without inputs")
        # Optional payload-index -> data-slice label mapping (e.g. the
        # member lists of diagnosed error slices); enables the
        # runtime_slice_requests_total breakdown and a ``slice``
        # attribute on request spans.
        if slice_labels is not None and inputs is None:
            raise ServingError("slice_labels supplied without inputs")
        if slice_labels is not None and not isinstance(slice_labels, Mapping):
            if len(slice_labels) != len(inputs):
                raise ServingError(
                    f"{len(slice_labels)} slice labels for "
                    f"{len(inputs)} inputs")
            slice_labels = {i: label
                            for i, label in enumerate(slice_labels)}
        self.slice_labels = slice_labels

    # ------------------------------------------------------------------
    def run(self, arrivals: Sequence[float], duration: float
            ) -> RuntimeReport:
        """Replay ``arrivals`` (sorted timestamps) through the runtime."""
        if duration <= 0:
            raise ServingError("duration must be positive")
        cfg = self.config
        self.queue = AdmissionQueue(cfg.queue_capacity, cfg.queue_policy)
        self.batcher = DynamicBatcher(self.controller, cfg.max_batch_size,
                                      cfg.batch_timeout)
        self.report = RuntimeReport(duration=duration)
        self._heap: list[tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._in_flight: dict[str, Batch] = {}

        for index, time in enumerate(np.asarray(arrivals, dtype=float)):
            trace = RequestTrace(
                request_id=index, arrival=float(time),
                deadline=float(time) + cfg.latency_slo,
                payload=(index % len(self.inputs)
                         if self.inputs is not None else None))
            self.report.traces.append(trace)
            self._push(float(time), "arrival", trace)
        for event in self.fault_plan:
            if event.time <= duration:
                self._push(event.time, "fault", event)
        tick = cfg.health_check_interval
        for k in range(1, int(duration / tick) + 1):
            self._push(k * tick, "health", None)

        while self._heap:
            now, _, kind, payload = heapq.heappop(self._heap)
            getattr(self, f"_on_{kind}")(now, payload)
            self._drain(now)
        if obs.enabled():
            obs.span_at("runtime.run", 0.0, duration,
                        requests=self.report.total_requests,
                        outcomes=self.report.outcome_counts(),
                        retries=self.report.retries,
                        goodput=self.report.goodput)
        return self.report

    # -- event handlers -------------------------------------------------
    def _on_arrival(self, now: float, trace: RequestTrace) -> None:
        admitted, shed = self.queue.offer(trace, now)
        for victim in shed:
            self._finalize(victim, OUTCOME_SHED, now)
        if admitted:
            self._schedule_queue_events(trace, now)
        else:
            self._finalize(trace, OUTCOME_REJECTED, now)

    def _on_expire(self, now: float, trace: RequestTrace) -> None:
        for victim in self.queue.expire(now):
            self._finalize(victim, OUTCOME_EXPIRED, now)

    def _on_batch(self, now: float, payload) -> None:
        pass  # pure wakeup; the post-event drain closes the batch

    def _on_fault(self, now: float, event: FaultEvent) -> None:
        if obs.enabled():
            obs.count("runtime_faults_total", kind=event.kind)
            obs.event("runtime.fault", at=now, kind=event.kind,
                      replica=event.replica_id)
        replica = self.pool.get(event.replica_id)
        if event.kind == "crash":
            replica.crash()
            batch = self._in_flight.pop(replica.replica_id, None)
            if batch is not None:
                # The failure is observed immediately: the in-flight
                # batch dies with the replica.
                replica.invalidate(now)
                self.pool.quarantine(replica.replica_id)
                self._retry(batch, now)
        elif event.kind == "slowdown":
            replica.slow_down(event.factor, now + event.duration)
        elif event.kind == "timeout":
            replica.timeout_window(now + event.duration)

    def _on_health(self, now: float, payload) -> None:
        self.pool.health_check()

    def _on_complete(self, now: float, payload) -> None:
        replica_id, token, batch, cause = payload
        replica = self.pool.get(replica_id)
        if token != replica.token:
            return  # invalidated by a crash that landed mid-batch
        self._in_flight.pop(replica_id, None)
        if cause == "ok":
            self._complete(batch, replica, now)
        else:
            if cause == "crash":
                self.pool.quarantine(replica_id)
            self._retry(batch, now)

    # -- dispatch -------------------------------------------------------
    def _drain(self, now: float) -> None:
        while True:
            if not self.batcher.ready(self.queue, now):
                break
            # A replica whose completion event is pending at this exact
            # timestamp is not dispatchable yet, even though its
            # busy_until says otherwise — dispatching would orphan the
            # in-flight batch.
            idle = [r for r in self.pool.idle(now)
                    if r.replica_id not in self._in_flight]
            if not idle:
                break
            batch, expired = self.batcher.form(self.queue, now)
            for victim in expired:
                self._finalize(victim, OUTCOME_EXPIRED, now)
            if batch is None:
                break
            replica = self.pool.pick(idle, len(batch), batch.rate, now)
            self._dispatch(batch, replica, now)

    def _dispatch(self, batch: Batch, replica, now: float) -> None:
        for request in batch.requests:
            request.started = now
            request.attempts += 1
            request.rate = batch.rate
            request.replica = replica.replica_id
        if replica.crashed:
            # Undetected dead replica: the dispatch wastes a detection
            # timeout before the failure is observed.
            cause, elapsed = "crash", self.config.detection_timeout
        elif replica.timing_out(now):
            cause, elapsed = "timeout", self.config.detection_timeout
        elif self.cascade is not None:
            cause = "ok"
            rows = self.inputs[[r.payload for r in batch.requests]]
            # Process-backed replicas cascade inside their own worker so
            # stage escalation (and its resumable intermediates) stays
            # local; in-process replicas share the engine's executor.
            runner = getattr(replica, "run_cascade", None)
            result = runner(rows) if runner is not None \
                else self.cascade.run_batch(rows)
            batch.cascade_result = result
            elapsed = replica.scaled_time(
                self.cascade.service_seconds(result, replica.profile), now)
        else:
            cause = "ok"
            elapsed = replica.service_time(len(batch), batch.rate, now)
        if obs.enabled():
            obs.count("runtime_dispatches_total", replica=replica.replica_id)
            obs.observe("runtime_service_seconds", elapsed, cause=cause)
        token = replica.begin(now + elapsed)
        self._in_flight[replica.replica_id] = batch
        self._push(now + elapsed, "complete",
                   (replica.replica_id, token, batch, cause))

    def _complete(self, batch: Batch, replica, now: float) -> None:
        result = getattr(batch, "cascade_result", None)
        if result is not None:
            self._complete_cascade(batch, result, now)
            return
        predictions = None
        if self.inputs is not None:
            rows = self.inputs[[r.payload for r in batch.requests]]
            predictions = replica.predict(rows, batch.rate)
        accuracy = accuracy_for_rate(self.accuracy_of_rate, batch.rate)
        for i, request in enumerate(batch.requests):
            request.completed = now
            request.outcome = OUTCOME_COMPLETED
            request.expected_accuracy = accuracy
            if predictions is not None and self.labels is not None:
                request.correct = bool(
                    predictions[i] == self.labels[request.payload])
            self._observe_request(request, now)

    def _complete_cascade(self, batch: Batch, result, now: float) -> None:
        """Book a cascaded batch: per-request stage, rate and accuracy."""
        stages = self.cascade.stages
        if obs.enabled():
            for frm, to, count in result.escalations:
                obs.count("cascade_escalations_total", amount=count,
                          **{"from": stages[frm].label(),
                             "to": stages[to].label()})
            if result.flops_saved:
                obs.count("cascade_flops_saved_total",
                          amount=int(result.flops_saved))
        for i, request in enumerate(batch.requests):
            stage = int(result.stages[i])
            rate = stages[stage].rate
            request.completed = now
            request.outcome = OUTCOME_COMPLETED
            request.rate = rate
            request.stage = stage
            request.expected_accuracy = accuracy_for_rate(
                self.accuracy_of_rate, rate)
            if self.labels is not None:
                request.correct = bool(
                    result.predictions[i] == self.labels[request.payload])
            self._observe_request(request, now)

    def _retry(self, batch: Batch, now: float) -> None:
        """Re-admit a failed batch, capping each retry at a narrower rate."""
        cap = self._downgrade(batch.rate)
        for request in batch.requests:
            if request.attempts >= self.config.max_attempts:
                self._finalize(request, OUTCOME_FAILED, now)
                continue
            request.rate_cap = cap if request.rate_cap is None \
                else min(request.rate_cap, cap)
            admitted, shed = self.queue.offer(request, now)
            for victim in shed:
                self._finalize(victim, OUTCOME_SHED, now)
            if admitted:
                if obs.enabled():
                    obs.count("runtime_retries_total")
                self._schedule_queue_events(request, now)
            elif request.deadline <= now + _EPS:
                self._finalize(request, OUTCOME_EXPIRED, now)
            else:
                self._finalize(request, OUTCOME_FAILED, now)

    def _downgrade(self, rate):
        """The next narrower candidate rate (or ``rate`` if none exists).

        Controllers whose candidates aren't totally ordered scalars
        (e.g. :class:`~repro.serving.ProfileTableController`) supply
        their own ``downgrade`` hook; it wins when present.
        """
        hook = getattr(self.controller, "downgrade", None)
        if hook is not None:
            return hook(rate)
        candidates = getattr(self.controller, "rates", None) \
            or [getattr(self.controller, "rate")]
        lower = [r for r in candidates if float(r) < float(rate) - _EPS]
        return max(lower) if lower else rate

    # -- bookkeeping ----------------------------------------------------
    def _schedule_queue_events(self, trace: RequestTrace, now: float) -> None:
        self._push(trace.deadline, "expire", trace)
        if self.config.batch_timeout > 0:
            self._push(now + self.config.batch_timeout, "batch", None)

    def _finalize(self, trace: RequestTrace, outcome: str,
                  now: float) -> None:
        trace.outcome = outcome
        self._observe_request(trace, now)

    def _observe_request(self, trace: RequestTrace, now: float) -> None:
        """Emit the request-lifecycle span tree and outcome counter.

        All timestamps are *simulated* time taken from the trace itself,
        so the emitted records are deterministic regardless of the
        tracer's clock.
        """
        if obs.disabled():
            return
        obs.count("runtime_requests_total", outcome=trace.outcome)
        slice_label = None
        if self.slice_labels is not None and trace.payload is not None:
            slice_label = self.slice_labels.get(trace.payload)
        if slice_label is not None:
            obs.count("runtime_slice_requests_total",
                      slice=slice_label, outcome=trace.outcome)
        end = trace.completed if trace.completed is not None else now
        extra = {} if slice_label is None else {"slice": slice_label}
        if trace.stage is not None:
            extra["stage"] = trace.stage
        span_id = obs.span_at(
            "runtime.request", trace.arrival, end,
            request_id=trace.request_id, outcome=trace.outcome,
            rate=rate_value(trace.rate), replica=trace.replica,
            attempts=trace.attempts, deadline_met=trace.deadline_met,
            **extra)
        # ``batched`` can be stale (from a pre-retry attempt) when a
        # re-admitted request dies in the queue; only a coherent wait is
        # worth a span.
        if trace.enqueued is not None and trace.batched is not None \
                and trace.batched >= trace.enqueued:
            obs.span_at("runtime.request.queue", trace.enqueued,
                        trace.batched, parent=span_id)
        if trace.started is not None and trace.completed is not None:
            obs.span_at("runtime.request.service", trace.started,
                        trace.completed, parent=span_id,
                        replica=trace.replica, rate=rate_value(trace.rate))

    def _push(self, time: float, kind: str, payload) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), kind, payload))
