"""End-to-end tests for the continuous-time inference runtime.

Exercises the acceptance criteria of the runtime subsystem: elastic
dominance under a volatile workload with an injected crash, byte-level
determinism under a fixed seed, retry-with-downgrade (a retried request
never re-executes wider than its failed attempt), failover, telemetry
export, and agreement with the discrete-window simulator on a workload
both can serve without drops.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.runtime import (
    FaultEvent,
    FaultPlan,
    InferenceRuntime,
    LatencyProfile,
    Replica,
    ReplicaPool,
    RuntimeConfig,
)
from repro.serving import (
    FixedRateController,
    SliceRateController,
    constant_rate,
    diurnal_rate,
    generate_arrivals,
    simulate_serving,
    spike_rate,
)

RATES = [0.25, 0.5, 0.75, 1.0]
ACCURACY = {0.25: 0.7, 0.5: 0.8, 0.75: 0.85, 1.0: 0.9}
FULL_LATENCY = 0.002
SLO = 0.1


def make_pool(n=3, full_latency=FULL_LATENCY, dispatch="least-loaded",
              seed=0):
    return ReplicaPool(
        [Replica(f"r{i}", LatencyProfile(full_latency)) for i in range(n)],
        dispatch=dispatch, seed=seed)


def make_runtime(controller=None, pool=None, fault_plan=None,
                 config=None, **config_kwargs):
    controller = controller or SliceRateController(RATES, FULL_LATENCY, SLO)
    pool = pool or make_pool()
    config = config or RuntimeConfig(latency_slo=SLO, max_batch_size=400,
                                     batch_timeout=0.01, **config_kwargs)
    return InferenceRuntime(pool, controller, config, ACCURACY,
                            fault_plan=fault_plan)


def diurnal_spike_arrivals(seed=3, duration=120.0):
    intensity = spike_rate(diurnal_rate(100.0, 16.0, 60.0),
                           [(30.0, 10.0, 2.0)])
    return generate_arrivals(intensity, duration, np.random.default_rng(seed))


class TestSteadyState:
    def test_constant_load_all_served(self):
        arrivals = generate_arrivals(constant_rate(300.0), 10.0,
                                     np.random.default_rng(0))
        report = make_runtime(pool=make_pool(1)).run(arrivals, 10.0)
        assert report.total_requests == len(arrivals)
        assert report.drop_fraction == 0.0
        assert report.goodput > 0
        assert report.mean_rate > 0.9  # light load: mostly full width

    def test_accounting_consistent(self):
        arrivals = diurnal_spike_arrivals(duration=30.0)
        report = make_runtime().run(arrivals, 30.0)
        counts = report.outcome_counts()
        assert sum(counts.values()) == report.total_requests
        assert counts.get("pending", 0) == 0
        assert counts["completed"] + report.total_dropped == \
            report.total_requests

    def test_elastic_slices_down_under_load(self):
        light = make_runtime(pool=make_pool(1)).run(
            generate_arrivals(constant_rate(50.0), 10.0,
                              np.random.default_rng(0)), 10.0)
        heavy = make_runtime(pool=make_pool(1)).run(
            generate_arrivals(constant_rate(2000.0), 10.0,
                              np.random.default_rng(0)), 10.0)
        assert heavy.mean_rate < light.mean_rate

    def test_invalid_duration(self):
        with pytest.raises(ServingError):
            make_runtime().run(np.empty(0), 0.0)

    def test_empty_arrivals(self):
        report = make_runtime().run(np.empty(0), 5.0)
        assert report.total_requests == 0
        assert report.drop_fraction == 0.0
        assert report.goodput == 0.0


class TestElasticDominance:
    """The benchmark claim: elastic beats both fixed policies on
    goodput-weighted accuracy under diurnal + spike load with a crash."""

    @pytest.fixture(scope="class")
    def reports(self):
        arrivals = diurnal_spike_arrivals()
        plan = FaultPlan.single_crash("r1", 35.0)  # mid-spike
        controllers = {
            "elastic": SliceRateController(RATES, FULL_LATENCY, SLO),
            "fixed_full": FixedRateController(1.0, FULL_LATENCY, SLO),
            "fixed_small": FixedRateController(0.25, FULL_LATENCY, SLO),
        }
        return {name: make_runtime(controller=ctl, pool=make_pool(),
                                   fault_plan=plan).run(arrivals, 120.0)
                for name, ctl in controllers.items()}

    def test_elastic_dominates_goodput_weighted_accuracy(self, reports):
        elastic = reports["elastic"].goodput_weighted_accuracy
        assert elastic > reports["fixed_full"].goodput_weighted_accuracy
        assert elastic > reports["fixed_small"].goodput_weighted_accuracy

    def test_fixed_full_drops_under_peak(self, reports):
        assert reports["fixed_full"].drop_fraction > 0.05
        assert reports["elastic"].drop_fraction < 0.01

    def test_fixed_small_wastes_accuracy(self, reports):
        assert reports["fixed_small"].mean_expected_accuracy \
            <= ACCURACY[0.25] + 1e-9

    def test_elastic_degrades_not_drops(self, reports):
        assert reports["elastic"].mean_rate < 1.0


class TestDeterminism:
    def run_once(self, dispatch="power-of-two"):
        arrivals = diurnal_spike_arrivals(duration=60.0)
        plan = FaultPlan.random(11, duration=60.0,
                                replica_ids=["r0", "r1", "r2"],
                                crashes=1, slowdowns=1, timeouts=1)
        runtime = make_runtime(pool=make_pool(dispatch=dispatch, seed=5),
                               fault_plan=plan)
        return runtime.run(arrivals, 60.0)

    def test_identical_telemetry_under_fixed_seed(self):
        first = self.run_once().to_json()
        second = self.run_once().to_json()
        assert first == second

    def test_least_loaded_also_deterministic(self):
        assert self.run_once("least-loaded").to_json() == \
            self.run_once("least-loaded").to_json()


class TestFaultHandling:
    def crash_at_peak(self, time=15.0, **kwargs):
        arrivals = diurnal_spike_arrivals(duration=60.0)
        plan = FaultPlan.single_crash("r1", time)
        runtime = make_runtime(fault_plan=plan, **kwargs)
        return runtime.run(arrivals, 60.0), arrivals

    def test_crash_triggers_retries_and_failover(self):
        report, arrivals = self.crash_at_peak()
        assert report.retries > 0
        retried = [t for t in report.traces if t.retried]
        # Failover: retried work completes on the surviving replicas.
        completed = [t for t in retried if t.outcome == "completed"]
        assert completed
        assert all(t.replica != "r1" for t in completed)

    def test_retry_never_widens_the_rate(self):
        report, _ = self.crash_at_peak()
        for trace in report.traces:
            if trace.retried and trace.rate is not None:
                assert trace.rate_cap is not None
                assert trace.rate <= trace.rate_cap + 1e-9

    def test_service_survives_crash(self):
        report, arrivals = self.crash_at_peak()
        assert report.drop_fraction < 0.05
        assert len(report.on_time) > 0.9 * len(arrivals)

    def test_transient_timeout_recovers(self):
        arrivals = generate_arrivals(constant_rate(200.0), 20.0,
                                     np.random.default_rng(1))
        plan = FaultPlan([FaultEvent(time=5.0, kind="timeout",
                                     replica_id="r0", duration=1.0)])
        report = make_runtime(pool=make_pool(1), fault_plan=plan
                              ).run(arrivals, 20.0)
        assert report.retries > 0
        # The replica recovers: late traffic completes on it again.
        late = [t for t in report.traces
                if t.arrival > 10.0 and t.outcome == "completed"]
        assert late and all(t.replica == "r0" for t in late)

    def test_slowdown_shifts_load_away(self):
        arrivals = generate_arrivals(constant_rate(400.0), 20.0,
                                     np.random.default_rng(1))
        plan = FaultPlan([FaultEvent(time=0.0, kind="slowdown",
                                     replica_id="r0", duration=20.0,
                                     factor=8.0)])
        report = make_runtime(pool=make_pool(2), fault_plan=plan
                              ).run(arrivals, 20.0)
        served_by = {"r0": 0, "r1": 0}
        for trace in report.traces:
            if trace.replica in served_by:
                served_by[trace.replica] += 1
        assert served_by["r1"] > served_by["r0"]

    def test_all_replicas_crashed_requests_expire(self):
        arrivals = generate_arrivals(constant_rate(100.0), 5.0,
                                     np.random.default_rng(2))
        plan = FaultPlan([FaultEvent(time=0.0, kind="crash",
                                     replica_id="r0")])
        report = make_runtime(pool=make_pool(1), fault_plan=plan
                              ).run(arrivals, 5.0)
        assert report.outcome_counts()["completed"] == 0
        assert report.drop_fraction == 1.0

    def test_max_attempts_exhaustion_fails(self):
        arrivals = generate_arrivals(constant_rate(100.0), 5.0,
                                     np.random.default_rng(2))
        # A transient-timeout window covering the whole run: the replica
        # stays in rotation (no quarantine), so every request burns
        # through its retry budget.
        plan = FaultPlan([FaultEvent(time=0.0, kind="timeout",
                                     replica_id="r0", duration=100.0)])
        config = RuntimeConfig(latency_slo=10.0, max_batch_size=400,
                               batch_timeout=0.01,
                               detection_timeout=0.01, max_attempts=2)
        report = make_runtime(pool=make_pool(1), fault_plan=plan,
                              config=config).run(arrivals, 5.0)
        counts = report.outcome_counts()
        assert counts["completed"] == 0
        assert counts["failed"] > 0
        failed = [t for t in report.traces if t.outcome == "failed"]
        assert all(t.attempts == 2 for t in failed)


class TestRealModelExecution:
    def test_predictions_and_measured_accuracy(self, rng):
        from repro.models import MLP
        model = MLP(8, [16, 16], 3, seed=0)
        inputs = rng.normal(size=(64, 8)).astype(np.float32)
        labels = rng.integers(0, 3, size=64)
        pool = ReplicaPool([Replica("r0", LatencyProfile(FULL_LATENCY),
                                    model=model)])
        controller = SliceRateController(RATES, FULL_LATENCY, SLO)
        config = RuntimeConfig(latency_slo=SLO, max_batch_size=32)
        runtime = InferenceRuntime(pool, controller, config, ACCURACY,
                                   inputs=inputs, labels=labels)
        arrivals = generate_arrivals(constant_rate(100.0), 5.0,
                                     np.random.default_rng(0))
        report = runtime.run(arrivals, 5.0)
        assert report.drop_fraction == 0.0
        assert report.measured_accuracy is not None
        assert all(t.correct is not None for t in report.completed)

    def test_labels_without_inputs_rejected(self):
        with pytest.raises(ServingError):
            InferenceRuntime(make_pool(), SliceRateController(
                RATES, FULL_LATENCY, SLO),
                RuntimeConfig(latency_slo=SLO), ACCURACY,
                labels=np.zeros(4))


class TestTelemetryExport:
    def test_report_to_dict_keys(self):
        arrivals = generate_arrivals(constant_rate(100.0), 5.0,
                                     np.random.default_rng(0))
        report = make_runtime(pool=make_pool(1)).run(arrivals, 5.0)
        summary = report.to_dict()
        for key in ("duration", "total_requests", "outcomes",
                    "drop_fraction", "goodput", "latency",
                    "goodput_weighted_accuracy", "traces"):
            assert key in summary
        assert set(summary["latency"]) == {"p50", "p95", "p99"}
        assert len(summary["traces"]) == report.total_requests
        trace = summary["traces"][0]
        for key in ("enqueued", "batched", "started", "completed",
                    "rate", "replica", "outcome", "attempts"):
            assert key in trace

    def test_to_json_round_trips(self):
        import json
        arrivals = generate_arrivals(constant_rate(50.0), 2.0,
                                     np.random.default_rng(0))
        report = make_runtime(pool=make_pool(1)).run(arrivals, 2.0)
        parsed = json.loads(report.to_json())
        assert parsed["total_requests"] == report.total_requests
        slim = json.loads(report.to_json(include_traces=False))
        assert "traces" not in slim


class TestSimulatorAgreement:
    def test_drop_fraction_matches_window_simulator(self):
        """Constant workload, one healthy replica, no batching timeout:
        both pipelines serve everything, so their drop fractions agree."""
        arrivals = generate_arrivals(constant_rate(300.0), 10.0,
                                     np.random.default_rng(0))
        controller = SliceRateController(RATES, FULL_LATENCY, SLO)
        window_report = simulate_serving(arrivals, controller, FULL_LATENCY,
                                         SLO, ACCURACY, 10.0)
        config = RuntimeConfig(latency_slo=SLO, max_batch_size=400,
                               batch_timeout=0.0)
        runtime_report = InferenceRuntime(
            make_pool(1), SliceRateController(RATES, FULL_LATENCY, SLO),
            config, ACCURACY).run(arrivals, 10.0)
        assert window_report.drop_fraction == 0.0
        assert runtime_report.drop_fraction == window_report.drop_fraction
        assert runtime_report.total_requests == window_report.total_arrivals
