"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, check_gradients, log_softmax

FLOATS = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   allow_infinity=False, width=64)


def small_arrays(max_side=4):
    shapes = st.tuples(st.integers(1, max_side), st.integers(1, max_side))
    return shapes.flatmap(
        lambda s: arrays(np.float64, s, elements=FLOATS)
    )


def t(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True,
                  dtype=np.float64)


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_add_mul_gradcheck(data):
    a = t(data)
    b = t(data * 0.5 + 1.0)
    check_gradients(lambda ts: ts[0] * ts[1] + ts[0], [a, b], atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_tanh_chain_gradcheck(data):
    a = t(data)
    check_gradients(lambda ts: (ts[0].tanh() * 2.0).sigmoid(), [a], atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
       st.integers(0, 2 ** 31 - 1))
def test_matmul_gradcheck(n, k, m, seed):
    rng = np.random.default_rng(seed)
    a = t(rng.normal(size=(n, k)))
    b = t(rng.normal(size=(k, m)))
    check_gradients(lambda ts: ts[0] @ ts[1], [a, b], atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_sum_grad_is_ones(data):
    a = t(data)
    a.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(data))


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_log_softmax_rows_normalize(data):
    out = log_softmax(Tensor(data, dtype=np.float64)).data
    np.testing.assert_allclose(np.exp(out).sum(axis=-1), 1.0, rtol=1e-6)


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_mean_equals_sum_over_count(data):
    a = Tensor(data, dtype=np.float64)
    np.testing.assert_allclose(a.mean().data, a.sum().data / a.size,
                               rtol=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 3), st.integers(1, 3), st.integers(2, 4),
       st.integers(0, 2 ** 31 - 1))
def test_conv2d_gradcheck(batch, channels, size, seed):
    from repro.tensor import conv2d
    rng = np.random.default_rng(seed)
    x = t(rng.normal(size=(batch, channels, size + 2, size + 2)))
    k = t(rng.normal(size=(2, channels, 3, 3)) * 0.3)
    check_gradients(lambda ts: conv2d(ts[0], ts[1], padding=1), [x, k],
                    atol=2e-3, rtol=5e-3)


@settings(max_examples=25, deadline=None)
@given(small_arrays())
def test_getitem_roundtrip(data):
    a = Tensor(data, dtype=np.float64)
    np.testing.assert_allclose(a[0].data, data[0])
