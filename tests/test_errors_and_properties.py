"""Exception-hierarchy tests and cross-cutting property tests.

The property tests pin the library's load-bearing invariant — narrow
passes equal prefix computations of the full weights — across layer
types, widths, group counts and rates.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import errors
from repro.slicing import (
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
    slice_rate,
)
from repro.tensor import Tensor


class TestErrorHierarchy:
    ALL = [errors.ShapeError, errors.GradError, errors.SliceRateError,
           errors.SchedulingError, errors.BudgetError, errors.ConfigError,
           errors.DataError, errors.ServingError]

    def test_all_derive_from_repro_error(self):
        for exc in self.ALL:
            assert issubclass(exc, errors.ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.BudgetError("x")

    def test_distinct_types(self):
        assert len(set(self.ALL)) == len(self.ALL)

    def test_not_catching_unrelated(self):
        with pytest.raises(ValueError):
            try:
                raise ValueError("unrelated")
            except errors.ReproError:  # pragma: no cover
                pytest.fail("ReproError must not catch ValueError")


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 48), st.integers(4, 32), st.integers(1, 8),
       st.sampled_from([0.25, 0.375, 0.5, 0.625, 0.75, 1.0]),
       st.integers(0, 2 ** 31 - 1))
def test_sliced_linear_prefix_property(out_f, in_f, groups, rate, seed):
    """Narrow output == the prefix of the full weights applied to input."""
    groups = min(groups, out_f)
    layer = SlicedLinear(in_f, out_f, slice_input=False, num_groups=groups,
                         rng=np.random.default_rng(seed))
    x = np.random.default_rng(seed + 1).normal(
        size=(3, in_f)).astype(np.float32)
    with slice_rate(rate):
        narrow = layer(Tensor(x)).data
    width = layer.out_partition.width_for(rate)
    manual = x @ layer.weight.data[:width].T + layer.bias.data[:width]
    np.testing.assert_allclose(narrow, manual, rtol=1e-4, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.sampled_from([8, 16, 24]),
       st.sampled_from([0.25, 0.5, 0.75, 1.0]),
       st.integers(0, 2 ** 31 - 1))
def test_sliced_conv_prefix_property(in_c, out_c, rate, seed):
    """Narrow conv output equals the corresponding full-output prefix."""
    layer = SlicedConv2d(in_c, out_c, 3, padding=1, slice_input=False,
                         num_groups=8, rng=np.random.default_rng(seed))
    x = Tensor(np.random.default_rng(seed + 1).normal(
        size=(2, in_c, 5, 5)).astype(np.float32))
    full = layer(x).data
    with slice_rate(rate):
        narrow = layer(x).data
    np.testing.assert_allclose(narrow, full[:, :narrow.shape[1]],
                               rtol=2e-3, atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([(8, 2), (8, 4), (16, 8), (24, 8)]),
       st.sampled_from([0.25, 0.5, 0.75, 1.0]),
       st.integers(0, 2 ** 31 - 1))
def test_group_norm_slice_independence(shape, rate, seed):
    """Surviving groups normalize identically whether or not the tail
    groups are present — the property that makes GN slicing-safe."""
    channels, groups = shape
    gn = SlicedGroupNorm(channels, num_groups=groups)
    rng = np.random.default_rng(seed)
    gn.weight.data[:] = rng.normal(size=channels).astype(np.float32)
    gn.bias.data[:] = rng.normal(size=channels).astype(np.float32)
    active_groups = max(1, min(round(rate * groups), groups))
    active = active_groups * (channels // groups)
    x = rng.normal(size=(2, channels, 3, 3)).astype(np.float32)
    full = gn(Tensor(x)).data
    narrow = gn(Tensor(x[:, :active])).data
    np.testing.assert_allclose(narrow, full[:, :active],
                               rtol=1e-3, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(st.integers(8, 32), st.sampled_from([0.25, 0.5, 0.75, 1.0]),
       st.sampled_from([0.25, 0.5, 0.75, 1.0]),
       st.integers(0, 2 ** 31 - 1))
def test_subnet_subsumption(width, rate_a, rate_b, seed):
    """Subnet-r_a's computation appears verbatim inside Subnet-r_b for
    r_a <= r_b: shared weights, shared prefix activations."""
    if rate_a > rate_b:
        rate_a, rate_b = rate_b, rate_a
    layer = SlicedLinear(width, width, slice_input=False,
                         num_groups=min(8, width),
                         rng=np.random.default_rng(seed))
    x = Tensor(np.random.default_rng(seed + 1).normal(
        size=(2, width)).astype(np.float32))
    with slice_rate(rate_a):
        small = layer(x).data
    with slice_rate(rate_b):
        large = layer(x).data
    np.testing.assert_allclose(small, large[:, :small.shape[1]],
                               rtol=1e-4, atol=1e-5)
