"""Unit tests for the adaptive (self-calibrating) serving controller."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import simulate_serving
from repro.serving.controller import AdaptiveSliceRateController

RATES = [0.25, 0.5, 0.75, 1.0]


class TestAdaptiveController:
    def test_behaves_like_elastic_before_observations(self):
        ctl = AdaptiveSliceRateController(RATES, 0.002, 0.1)
        assert ctl.choose(10) == 1.0
        assert ctl.choose(100) == 0.5

    def test_observation_moves_estimate_toward_truth(self):
        ctl = AdaptiveSliceRateController(RATES, 0.001, 0.1, smoothing=0.5)
        true_latency = 0.004
        for _ in range(20):
            # A batch of 10 at rate 0.5 with the true hardware speed.
            elapsed = 10 * 0.25 * true_latency
            ctl.observe(10, 0.5, elapsed)
        assert ctl.full_latency == pytest.approx(true_latency, rel=0.05)
        assert ctl.observations == 20

    def test_underestimate_corrects_choices(self):
        """Starting with a 4x-too-optimistic latency, the controller
        converges and stops over-promising wide subnets."""
        ctl = AdaptiveSliceRateController(RATES, 0.0005, 0.1, smoothing=0.5)
        optimistic = ctl.choose(100)
        true_latency = 0.002
        for _ in range(20):
            rate = ctl.choose(100) or 0.25
            ctl.observe(100, rate, 100 * rate * rate * true_latency)
        corrected = ctl.choose(100)
        assert corrected <= optimistic
        assert corrected == 0.5  # the rate the true latency admits

    def test_safety_factor_is_conservative(self):
        plain = AdaptiveSliceRateController(RATES, 0.002, 0.1)
        safe = AdaptiveSliceRateController(RATES, 0.002, 0.1, safety=2.0)
        assert safe.choose(100) <= plain.choose(100)

    def test_validation(self):
        with pytest.raises(ServingError):
            AdaptiveSliceRateController(RATES, 0.002, 0.1, smoothing=0.0)
        with pytest.raises(ServingError):
            AdaptiveSliceRateController(RATES, 0.002, 0.1, safety=0.5)
        ctl = AdaptiveSliceRateController(RATES, 0.002, 0.1)
        with pytest.raises(ServingError):
            ctl.observe(0, 0.5, 0.1)
        with pytest.raises(ServingError):
            ctl.observe(4, 0.5, -1.0)

    def test_works_in_simulator(self):
        from repro.serving import constant_rate, generate_arrivals
        arrivals = generate_arrivals(constant_rate(200.0), 5.0,
                                     np.random.default_rng(0))
        ctl = AdaptiveSliceRateController(RATES, 0.002, 0.1)
        report = simulate_serving(arrivals, ctl, 0.002, 0.1,
                                  {r: 0.8 for r in RATES}, 5.0)
        assert report.slo_violations == 0
        assert report.drop_fraction == 0.0
