"""Unit tests for Eq. 3 budget→rate mapping and the latency variant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BudgetError
from repro.slicing import max_rate_for_budget, rate_for_budget, rate_for_latency

RATES = [0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0]


class TestMaxRate:
    def test_full_budget_gives_one(self):
        assert max_rate_for_budget(100, 100) == 1.0

    def test_quarter_budget_gives_half_rate(self):
        assert max_rate_for_budget(25, 100) == pytest.approx(0.5)

    def test_surplus_budget_capped_at_one(self):
        assert max_rate_for_budget(500, 100) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(BudgetError):
            max_rate_for_budget(0, 100)
        with pytest.raises(BudgetError):
            max_rate_for_budget(10, 0)


class TestRateForBudget:
    def test_picks_largest_feasible(self):
        # sqrt(0.3) ~= 0.547 -> largest candidate <= that is 0.5.
        assert rate_for_budget(30, 100, RATES) == 0.5

    def test_exact_boundary_included(self):
        assert rate_for_budget(25, 100, RATES) == 0.5

    def test_full_budget(self):
        assert rate_for_budget(100, 100, RATES) == 1.0

    def test_infeasible_raises(self):
        with pytest.raises(BudgetError):
            rate_for_budget(1, 100, RATES)  # sqrt(0.01) = 0.1 < 0.25

    def test_respects_candidate_grid(self):
        assert rate_for_budget(60, 100, [0.25, 1.0]) == 0.25


class TestRateForLatency:
    def test_paper_rule(self):
        # n * r^2 * t <= T/2 with n=10, t=0.002, T=0.1 -> r <= sqrt(2.5)→1.0
        assert rate_for_latency(10, 0.002, 0.1, RATES) == 1.0

    def test_heavier_batch_slices_down(self):
        # n=100 -> r <= sqrt(0.05/0.2) = 0.5
        assert rate_for_latency(100, 0.002, 0.1, RATES) == 0.5

    def test_overload_raises(self):
        with pytest.raises(BudgetError):
            rate_for_latency(10000, 0.002, 0.1, RATES)

    def test_invalid_batch(self):
        with pytest.raises(BudgetError):
            rate_for_latency(0, 0.002, 0.1, RATES)


@settings(max_examples=100, deadline=None)
@given(st.floats(0.1, 1000.0), st.floats(0.1, 1000.0))
def test_chosen_rate_always_fits_budget(budget, full_cost):
    """Eq. 3 invariant: the chosen rate's quadratic cost fits the budget."""
    try:
        rate = rate_for_budget(budget, full_cost, RATES)
    except BudgetError:
        # Infeasible only when even the smallest rate exceeds the bound.
        assert (0.25 ** 2) * full_cost > budget * (1 + 1e-9)
        return
    assert rate in RATES
    assert rate ** 2 * full_cost <= budget * (1 + 1e-6)


@settings(max_examples=100, deadline=None)
@given(st.floats(0.5, 50.0), st.floats(1.0, 100.0))
def test_rate_monotone_in_budget(budget, full_cost):
    try:
        low = rate_for_budget(budget, full_cost, RATES)
        high = rate_for_budget(budget * 2, full_cost, RATES)
    except BudgetError:
        return
    assert high >= low
