"""Unit tests for the runtime's building blocks.

Covers the admission queue (bounds, policies, deadlines, backpressure),
the dynamic batcher (size/timeout closing, rate selection, retry caps),
latency profiles and replicas, pool dispatch, and fault plans.
"""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.runtime import (
    AdmissionQueue,
    DynamicBatcher,
    FaultEvent,
    FaultPlan,
    LatencyProfile,
    Replica,
    ReplicaPool,
    RequestTrace,
)
from repro.serving import FixedRateController, SliceRateController

RATES = [0.25, 0.5, 0.75, 1.0]


def request(i, arrival=0.0, deadline=10.0, cap=None):
    return RequestTrace(request_id=i, arrival=arrival, deadline=deadline,
                        rate_cap=cap)


def elastic(full_latency=0.002, slo=0.1):
    return SliceRateController(RATES, full_latency, slo)


class TestAdmissionQueue:
    def test_fifo_by_arrival(self):
        q = AdmissionQueue(capacity=4)
        q.offer(request(1, arrival=1.0), now=1.0)
        q.offer(request(0, arrival=0.5), now=1.0)
        taken, _ = q.pop(2, now=1.0)
        assert [r.request_id for r in taken] == [0, 1]

    def test_reject_policy_bounces_new(self):
        q = AdmissionQueue(capacity=1, policy="reject")
        assert q.offer(request(0), now=0.0) == (True, [])
        admitted, shed = q.offer(request(1), now=0.0)
        assert not admitted and shed == []
        assert q.depth == 1

    def test_shed_oldest_policy_evicts_head(self):
        q = AdmissionQueue(capacity=1, policy="shed-oldest")
        q.offer(request(0, arrival=0.0), now=0.0)
        admitted, shed = q.offer(request(1, arrival=1.0), now=1.0)
        assert admitted
        assert [r.request_id for r in shed] == [0]

    def test_offer_past_deadline_refused(self):
        q = AdmissionQueue(capacity=4)
        admitted, shed = q.offer(request(0, deadline=1.0), now=2.0)
        assert not admitted and shed == []

    def test_expire_removes_dead_requests(self):
        q = AdmissionQueue(capacity=4)
        q.offer(request(0, deadline=1.0), now=0.0)
        q.offer(request(1, deadline=5.0), now=0.0)
        expired = q.expire(now=2.0)
        assert [r.request_id for r in expired] == [0]
        assert q.depth == 1

    def test_pop_skims_expired(self):
        q = AdmissionQueue(capacity=4)
        q.offer(request(0, arrival=0.0, deadline=1.0), now=0.0)
        q.offer(request(1, arrival=0.5, deadline=5.0), now=0.5)
        taken, expired = q.pop(2, now=2.0)
        assert [r.request_id for r in taken] == [1]
        assert [r.request_id for r in expired] == [0]

    def test_backpressure_and_oldest_wait(self):
        q = AdmissionQueue(capacity=4)
        assert q.backpressure == 0.0
        q.offer(request(0), now=1.0)
        q.offer(request(1), now=2.0)
        assert q.backpressure == pytest.approx(0.5)
        assert q.oldest_wait(3.0) == pytest.approx(2.0)

    def test_retry_reenters_at_front(self):
        q = AdmissionQueue(capacity=4)
        q.offer(request(5, arrival=5.0), now=5.0)
        retry = request(0, arrival=0.0)
        q.offer(retry, now=6.0)  # re-admission after a failed attempt
        taken, _ = q.pop(1, now=6.0)
        assert taken[0].request_id == 0

    def test_validation(self):
        with pytest.raises(ServingError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ServingError):
            AdmissionQueue(capacity=4, policy="lifo")


class TestDynamicBatcher:
    def queue_with(self, n, now=0.0, deadline=10.0):
        q = AdmissionQueue(capacity=max(n, 1) + 8)
        for i in range(n):
            q.offer(request(i, arrival=now, deadline=deadline), now=now)
        return q

    def test_ready_on_size(self):
        b = DynamicBatcher(elastic(), max_batch_size=4, timeout=1.0)
        assert not b.ready(self.queue_with(3), now=0.0)
        assert b.ready(self.queue_with(4), now=0.0)

    def test_ready_on_timeout(self):
        b = DynamicBatcher(elastic(), max_batch_size=4, timeout=1.0)
        q = self.queue_with(1, now=0.0)
        assert not b.ready(q, now=0.5)
        assert b.ready(q, now=1.0)

    def test_zero_timeout_batches_immediately(self):
        b = DynamicBatcher(elastic(), max_batch_size=64, timeout=0.0)
        assert b.ready(self.queue_with(1), now=0.0)

    def test_form_picks_elastic_rate(self):
        b = DynamicBatcher(elastic(), max_batch_size=10, timeout=0.0)
        batch, _ = b.form(self.queue_with(10), now=0.0)
        # 10 * r^2 * 0.002 <= 0.05 admits the full width.
        assert batch.rate == 1.0
        assert len(batch) == 10
        assert all(r.batched == 0.0 for r in batch.requests)

    def test_form_degrades_under_load(self):
        b = DynamicBatcher(elastic(), max_batch_size=100, timeout=0.0)
        batch, _ = b.form(self.queue_with(100), now=0.0)
        assert batch.rate == 0.5

    def test_overload_shrinks_batch_and_requeues(self):
        # 500 > max_batch(0.25) = 400: the batch shrinks, leftovers wait.
        b = DynamicBatcher(elastic(), max_batch_size=500, timeout=0.0)
        q = self.queue_with(500)
        batch, _ = b.form(q, now=0.0)
        assert len(batch) == 400
        assert batch.rate == 0.25
        assert q.depth == 100

    def test_rate_cap_downgrades_whole_batch(self):
        b = DynamicBatcher(elastic(), max_batch_size=4, timeout=0.0)
        q = AdmissionQueue(capacity=8)
        q.offer(request(0, cap=0.5), now=0.0)
        q.offer(request(1), now=0.0)
        batch, _ = b.form(q, now=0.0)
        assert batch.rate == 0.5

    def test_fixed_controller_shrinks_to_capacity(self):
        fixed = FixedRateController(1.0, 0.002, 0.1)  # max_batch = 25
        b = DynamicBatcher(fixed, max_batch_size=40, timeout=0.0)
        q = self.queue_with(40)
        batch, _ = b.form(q, now=0.0)
        assert len(batch) == 25
        assert batch.rate == 1.0
        assert q.depth == 15

    def test_infeasible_controller_rejected(self):
        hopeless = FixedRateController(1.0, 1.0, 0.1)  # 1 sample needs 1s
        with pytest.raises(ServingError):
            DynamicBatcher(hopeless, max_batch_size=4)

    def test_validation(self):
        with pytest.raises(ServingError):
            DynamicBatcher(elastic(), max_batch_size=0)
        with pytest.raises(ServingError):
            DynamicBatcher(elastic(), max_batch_size=4, timeout=-1.0)


class TestLatencyProfile:
    def test_quadratic_fallback(self):
        profile = LatencyProfile(full_per_sample=0.004)
        assert profile.per_sample(1.0) == pytest.approx(0.004)
        assert profile.per_sample(0.5) == pytest.approx(0.001)

    def test_measured_rates_win(self):
        profile = LatencyProfile(per_rate={1.0: 0.004, 0.5: 0.0015})
        assert profile.per_sample(0.5) == pytest.approx(0.0015)

    def test_unmeasured_rate_scales_from_nearest(self):
        profile = LatencyProfile(per_rate={0.5: 0.002})
        assert profile.per_sample(0.25) == pytest.approx(0.002 * 0.25)

    def test_from_latency_table_uses_percentile(self):
        table = {1.0: {"latency": 0.4, "p95": 0.48, "samples": 100.0},
                 0.5: {"latency": 0.1, "p95": 0.12, "samples": 100.0}}
        profile = LatencyProfile.from_latency_table(table, percentile="p95")
        assert profile.per_sample(1.0) == pytest.approx(0.0048)
        assert profile.per_sample(0.5) == pytest.approx(0.0012)

    def test_validation(self):
        with pytest.raises(ServingError):
            LatencyProfile()
        with pytest.raises(ServingError):
            LatencyProfile(full_per_sample=-1.0)
        with pytest.raises(ServingError):
            LatencyProfile(per_rate={0.5: 0.0})


class TestReplica:
    def test_service_time_scales_with_rate_and_size(self):
        replica = Replica("r0", LatencyProfile(0.002))
        full = replica.service_time(10, 1.0, now=0.0)
        half = replica.service_time(10, 0.5, now=0.0)
        assert full == pytest.approx(0.02)
        assert half == pytest.approx(full / 4)

    def test_slowdown_window(self):
        replica = Replica("r0", LatencyProfile(0.002))
        replica.slow_down(3.0, until=5.0)
        assert replica.service_time(10, 1.0, now=1.0) == pytest.approx(0.06)
        assert replica.service_time(10, 1.0, now=6.0) == pytest.approx(0.02)

    def test_begin_and_invalidate_bump_token(self):
        replica = Replica("r0", LatencyProfile(0.002))
        token = replica.begin(until=1.0)
        assert replica.busy_until == 1.0
        replica.invalidate(now=0.5)
        assert replica.token != token
        assert replica.busy_until == 0.5

    def test_predict_with_real_model(self, rng):
        from repro.models import MLP
        model = MLP(8, [16], 3, seed=0)
        replica = Replica("r0", LatencyProfile(0.002), model=model)
        preds = replica.predict(rng.normal(size=(5, 8)), rate=0.5)
        assert preds.shape == (5,)
        assert set(preds) <= {0, 1, 2}

    def test_predict_prefers_materialized_artifact(self, rng):
        from repro.models import MLP
        from repro.slicing import materialize_subnet, slice_rate
        from repro.tensor import Tensor, no_grad
        model = MLP(8, [16], 3, seed=0)
        artifact = materialize_subnet(model, 0.5)
        replica = Replica("r0", LatencyProfile(0.002),
                          artifacts={0.5: artifact})
        x = rng.normal(size=(4, 8)).astype(np.float32)
        with no_grad(), slice_rate(0.5):
            expected = np.argmax(model(Tensor(x)).data, axis=-1)
        np.testing.assert_array_equal(replica.predict(x, 0.5), expected)

    def test_predict_without_model_returns_none(self):
        replica = Replica("r0", LatencyProfile(0.002))
        assert replica.predict(np.zeros((2, 4)), 1.0) is None


class TestReplicaPool:
    def make_pool(self, n=3, dispatch="least-loaded", seed=0):
        return ReplicaPool([Replica(f"r{i}", LatencyProfile(0.002))
                            for i in range(n)], dispatch=dispatch, seed=seed)

    def test_least_loaded_prefers_idle(self):
        pool = self.make_pool()
        pool.get("r0").busy_until = 5.0
        picked = pool.pick(pool.replicas, 10, 1.0, now=0.0)
        assert picked.replica_id == "r1"  # idle, lowest id

    def test_dispatch_is_slice_rate_aware(self):
        # A slowed replica projects a later completion and loses the pick.
        pool = self.make_pool(n=2)
        pool.get("r0").slow_down(10.0, until=100.0)
        picked = pool.pick(pool.replicas, 10, 1.0, now=0.0)
        assert picked.replica_id == "r1"

    def test_power_of_two_is_seeded(self):
        choices_a = [self.make_pool(dispatch="power-of-two", seed=7)
                     .pick(self.make_pool().replicas, 4, 1.0, 0.0).replica_id
                     for _ in range(5)]
        choices_b = [self.make_pool(dispatch="power-of-two", seed=7)
                     .pick(self.make_pool().replicas, 4, 1.0, 0.0).replica_id
                     for _ in range(5)]
        assert choices_a == choices_b

    def test_quarantine_removes_from_rotation(self):
        pool = self.make_pool()
        pool.quarantine("r1")
        assert [r.replica_id for r in pool.in_rotation()] == ["r0", "r2"]
        assert [r.replica_id for r in pool.idle(0.0)] == ["r0", "r2"]

    def test_health_check_detects_crashes(self):
        pool = self.make_pool()
        pool.get("r2").crash()
        detected = pool.health_check()
        assert [r.replica_id for r in detected] == ["r2"]
        assert "r2" not in [r.replica_id for r in pool.in_rotation()]
        assert pool.health_check() == []  # already quarantined

    def test_validation(self):
        with pytest.raises(ServingError):
            ReplicaPool([])
        with pytest.raises(ServingError):
            ReplicaPool([Replica("a", LatencyProfile(0.001)),
                         Replica("a", LatencyProfile(0.001))])
        with pytest.raises(ServingError):
            self.make_pool(dispatch="round-robin")
        with pytest.raises(ServingError):
            self.make_pool().get("nope")


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan([
            FaultEvent(time=5.0, kind="crash", replica_id="b"),
            FaultEvent(time=1.0, kind="slowdown", replica_id="a",
                       duration=1.0, factor=2.0),
        ])
        assert [e.time for e in plan] == [1.0, 5.0]

    def test_single_crash_helper(self):
        plan = FaultPlan.single_crash("r1", 45.0)
        assert len(plan) == 1
        assert plan.events[0].kind == "crash"
        assert plan.for_replica("r1") == list(plan)
        assert plan.for_replica("r0") == []

    def test_random_plan_is_deterministic(self):
        kwargs = dict(duration=60.0, replica_ids=["a", "b", "c"],
                      crashes=1, slowdowns=2, timeouts=1)
        assert FaultPlan.random(3, **kwargs).events == \
            FaultPlan.random(3, **kwargs).events
        assert FaultPlan.random(3, **kwargs).events != \
            FaultPlan.random(4, **kwargs).events

    def test_random_plan_never_crashes_every_replica(self):
        plan = FaultPlan.random(0, duration=60.0, replica_ids=["a", "b"],
                                crashes=5, slowdowns=0, timeouts=0)
        crashes = [e for e in plan if e.kind == "crash"]
        assert len(crashes) == 1

    def test_event_validation(self):
        with pytest.raises(ServingError):
            FaultEvent(time=1.0, kind="meteor", replica_id="a")
        with pytest.raises(ServingError):
            FaultEvent(time=-1.0, kind="crash", replica_id="a")
        with pytest.raises(ServingError):
            FaultEvent(time=1.0, kind="slowdown", replica_id="a",
                       duration=0.0)
        with pytest.raises(ServingError):
            FaultEvent(time=1.0, kind="slowdown", replica_id="a",
                       duration=1.0, factor=0.5)


class TestEmptyPercentiles:
    def test_empty_series_yields_none_per_percentile(self):
        from repro.runtime.telemetry import percentiles
        tails = percentiles([], (50, 95, 99))
        assert tails == {"p50": None, "p95": None, "p99": None}

    def test_nonempty_series_unaffected(self):
        from repro.runtime.telemetry import percentiles
        tails = percentiles([0.1, 0.2, 0.3])
        assert tails["p50"] == pytest.approx(0.2)

    def test_format_seconds_renders_none_as_dash(self):
        from repro.runtime import format_seconds
        assert format_seconds(None) == "-"
        assert format_seconds(0.0123) == "12.3ms"
        assert format_seconds(2.0, scale=1.0, unit="s", digits=0) == "2s"

    def test_table_formatter_renders_none_as_dash(self):
        from repro.utils.tables import format_table
        text = format_table(["a", "b"], [[None, 1.0]])
        assert "-" in text.splitlines()[-1]
