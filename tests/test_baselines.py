"""Unit tests for the baseline implementations (tiny configs)."""

import numpy as np
import pytest

from repro.baselines import (
    FixedWidthEnsemble,
    MSDNetLike,
    MultiClassifierResNet,
    SkipNetLike,
    VaryingDepthEnsemble,
    l1_scale_penalty,
    prune_vgg,
    slimmable_trainer,
    slimmable_vgg,
    sparsity_loss_fn,
)
from repro.data import ArrayDataset, DataLoader
from repro.errors import ConfigError
from repro.models import MLP, SlicedResNet, SlicedVGG
from repro.optim import SGD
from repro.slicing import FixedScheme, slice_rate
from repro.tensor import Tensor


def image_data(rng, n=32, size=8, classes=4):
    x = rng.normal(size=(n, 3, size, size)).astype(np.float32)
    y = rng.integers(0, classes, size=n)
    return ArrayDataset(x, y)


class TestFixedWidthEnsemble:
    def test_trains_one_member_per_rate(self, rng):
        ensemble = FixedWidthEnsemble(
            lambda seed: MLP(6, [8], 3, seed=seed), rates=[0.5, 1.0])
        data = ArrayDataset(rng.normal(size=(16, 6)).astype(np.float32),
                            rng.integers(0, 3, size=16))
        ensemble.train(lambda m: SGD(m.parameters(), lr=0.1),
                       lambda: DataLoader(data, 8), epochs=1)
        assert set(ensemble.members) == {0.5, 1.0}
        results = ensemble.evaluate(lambda: DataLoader(data, 8))
        assert 0.0 <= results[0.5]["accuracy"] <= 1.0

    def test_member_for_budget(self):
        ensemble = FixedWidthEnsemble(lambda s: MLP(4, [8], 2),
                                      rates=[0.25, 0.5, 1.0])
        assert ensemble.member_for_budget(30, 100) == 0.5

    def test_predict_uses_member(self, rng):
        ensemble = FixedWidthEnsemble(
            lambda seed: MLP(6, [8], 3, seed=seed), rates=[0.5])
        data = ArrayDataset(rng.normal(size=(8, 6)).astype(np.float32),
                            rng.integers(0, 3, size=8))
        ensemble.train(lambda m: SGD(m.parameters(), lr=0.1),
                       lambda: DataLoader(data, 8), epochs=1)
        logits = ensemble.predict(0.5, data.inputs)
        assert logits.shape == (8, 3)

    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigError):
            FixedWidthEnsemble(lambda s: MLP(4, [8], 2), rates=[])


class TestVaryingDepthEnsemble:
    def test_members_trained_and_evaluated(self, rng):
        data = image_data(rng)
        ensemble = VaryingDepthEnsemble({
            "shallow": lambda s: SlicedResNet.cifar_mini(
                num_classes=4, blocks=1, base_channels=8, seed=s),
        })
        ensemble.train(lambda m: SGD(m.parameters(), lr=0.05),
                       lambda: DataLoader(data, 16), epochs=1)
        results = ensemble.evaluate(lambda: DataLoader(data, 16))
        assert "shallow" in results

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            VaryingDepthEnsemble({})


class TestMultiClassifier:
    def make(self, rng, adaptive=False):
        backbone = SlicedResNet.cifar_mini(num_classes=4, blocks=1,
                                           base_channels=8)
        cls = MSDNetLike if adaptive else MultiClassifierResNet
        return cls(backbone), image_data(rng)

    def test_forward_returns_all_exits(self, rng):
        model, data = self.make(rng)
        exits = model(Tensor(data.inputs[:4]))
        assert len(exits) == model.num_exits == 2
        for logits in exits:
            assert logits.shape == (4, 4)

    def test_forward_exit_prefix_cheaper(self, rng):
        from repro.tensor import count_flops
        model, data = self.make(rng)
        x = Tensor(data.inputs[:1])
        with count_flops() as early:
            model.forward_exit(x, 0)
        with count_flops() as late:
            model.forward_exit(x, 1)
        assert early.total < late.total

    def test_joint_loss_backward(self, rng):
        model, data = self.make(rng)
        exits = model(Tensor(data.inputs[:8]))
        loss = model.joint_loss(exits, data.targets[:8])
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads

    def test_adaptive_weights_update(self, rng):
        model, _ = self.make(rng, adaptive=True)
        model.update_weights([2.0, 1.0])
        assert model.loss_weights[1] > model.loss_weights[0]
        assert sum(model.loss_weights) == pytest.approx(2.0)


class TestSkipNet:
    def test_soft_and_hard_forward(self, rng):
        backbone = SlicedResNet.cifar_mini(num_classes=4, blocks=2,
                                           base_channels=8)
        model = SkipNetLike(backbone, skip_penalty=0.1)
        data = image_data(rng)
        x = Tensor(data.inputs[:4])
        model.train()
        logits, gates = model(x, hard=False)
        assert logits.shape == (4, 4)
        model.eval()
        logits, decisions = model(x, hard=True)
        assert logits.shape == (4, 4)
        assert all(d in (0.0, 1.0) for d in decisions)

    def test_loss_includes_penalty_and_backprops(self, rng):
        backbone = SlicedResNet.cifar_mini(num_classes=4, blocks=2,
                                           base_channels=8)
        model = SkipNetLike(backbone, skip_penalty=0.1)
        data = image_data(rng)
        loss = model.loss(Tensor(data.inputs[:8]), data.targets[:8])
        loss.backward()
        gate_params = [p for p in model.gates.parameters()
                       if p.grad is not None]
        assert gate_params

    def test_execution_fraction_in_unit_interval(self, rng):
        backbone = SlicedResNet.cifar_mini(num_classes=4, blocks=2,
                                           base_channels=8)
        model = SkipNetLike(backbone)
        data = image_data(rng)
        frac = model.execution_fraction(Tensor(data.inputs[:8]))
        assert 0.0 <= frac <= 1.0


class TestNetworkSlimming:
    def test_l1_penalty_positive(self):
        model = SlicedVGG.cifar_mini(num_classes=4, width=8)
        assert l1_scale_penalty(model).item() > 0

    def test_l1_penalty_requires_groupnorm(self):
        with pytest.raises(ConfigError):
            l1_scale_penalty(MLP(4, [8], 2))

    def test_sparsity_loss_exceeds_plain(self, rng):
        from repro.tensor import cross_entropy
        model = SlicedVGG.cifar_mini(num_classes=4, width=8)
        data = image_data(rng, size=8)
        logits = model(Tensor(data.inputs[:4]))
        plain = cross_entropy(logits, data.targets[:4]).item()
        loss = sparsity_loss_fn(model, 1e-2)(logits, data.targets[:4])
        assert loss.item() > plain

    def test_prune_reduces_params_and_runs(self, rng):
        model = SlicedVGG.cifar_mini(num_classes=4, width=8)
        pruned = prune_vgg(model, keep_fraction=0.5)
        assert pruned.num_parameters() < model.num_parameters()
        data = image_data(rng, size=8)
        out = pruned(Tensor(data.inputs[:4]))
        assert out.shape == (4, 4)

    def test_prune_full_keep_preserves_function(self, rng):
        model = SlicedVGG.cifar_mini(num_classes=4, width=8)
        model.eval()
        pruned = prune_vgg(model, keep_fraction=1.0)
        pruned.eval()
        data = image_data(rng, size=8)
        x = Tensor(data.inputs[:4])
        np.testing.assert_allclose(pruned(x).data, model(x).data,
                                   rtol=1e-3, atol=1e-4)

    def test_invalid_keep_fraction(self):
        model = SlicedVGG.cifar_mini(num_classes=4, width=8)
        with pytest.raises(ConfigError):
            prune_vgg(model, 0.0)


class TestSlimmable:
    def test_factory_uses_multi_bn(self):
        from repro.slicing import MultiBatchNorm2d
        model = slimmable_vgg(rates=[0.5, 1.0], num_classes=4, width=8)
        assert any(isinstance(m, MultiBatchNorm2d) for m in model.modules())

    def test_trainer_uses_static_scheme(self, rng):
        from repro.slicing import StaticScheme
        model = slimmable_vgg(rates=[0.5, 1.0], num_classes=4, width=8)
        trainer = slimmable_trainer(model, [0.5, 1.0], lr=0.05)
        assert isinstance(trainer.scheme, StaticScheme)
        data = image_data(rng, size=8)
        losses = trainer.train_batch(data.inputs[:8], data.targets[:8])
        assert set(losses) == {0.5, 1.0}
