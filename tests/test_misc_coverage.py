"""Tests for remaining public surfaces: paper-size factories, slimmable
ResNet, and assorted small helpers."""

import numpy as np
import pytest

from repro.baselines import slimmable_resnet
from repro.models import SlicedResNet, SlicedVGG
from repro.slicing import slice_rate
from repro.tensor import Tensor, no_grad


class TestPaperSizeFactories:
    def test_vgg16_structure(self):
        model = SlicedVGG.vgg16(num_classes=1000)
        assert model.num_classes == 1000
        # ImageNet plan: 5 stages of 3 convs.
        assert len(model.plan) == 5
        assert all(n == 3 for _, n in model.plan)

    def test_vgg16_conv_tower_params(self):
        # Conv tower of VGG-16 is ~14.7M parameters (the paper's 138M
        # includes the FC-4096 head we replace with global pooling).
        model = SlicedVGG.vgg16()
        assert 10e6 < model.num_parameters() < 20e6

    def test_resnet50_style_forward(self, rng):
        """A bottleneck ResNet at ImageNet-ish depth runs end to end."""
        model = SlicedResNet([3, 4, 6], base_channels=8, num_classes=10)
        x = Tensor(rng.normal(size=(1, 3, 16, 16)).astype(np.float32))
        with no_grad():
            with slice_rate(0.5):
                out = model(x)
        assert out.shape == (1, 10)


class TestSlimmableResnet:
    def test_factory_builds_multi_bn(self, rng):
        from repro.slicing import MultiBatchNorm2d
        model = slimmable_resnet([0.5, 1.0], num_classes=4, blocks=1,
                                 base_channels=8)
        assert any(isinstance(m, MultiBatchNorm2d) for m in model.modules())
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            with slice_rate(0.5):
                assert model(x).shape == (2, 4)


class TestMultiClassifierBoundaries:
    def test_last_exit_equals_forward_tail(self, rng):
        from repro.baselines import MultiClassifierResNet
        backbone = SlicedResNet.cifar_mini(num_classes=4, blocks=1,
                                           base_channels=8)
        model = MultiClassifierResNet(backbone)
        model.eval()
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        with no_grad():
            all_exits = model(x)
            last_only = model.forward_exit(x, model.num_exits - 1)
        np.testing.assert_allclose(last_only.data,
                                   all_exits[-1].data, rtol=1e-5)

    def test_custom_loss_weights(self):
        from repro.baselines import MultiClassifierResNet
        backbone = SlicedResNet.cifar_mini(num_classes=4, blocks=1,
                                           base_channels=8)
        model = MultiClassifierResNet(backbone, loss_weights=[2.0, 1.0])
        assert model.loss_weights == [2.0, 1.0]


class TestCostTableHelpers:
    def test_format_table_handles_mixed_types(self):
        from repro.utils import format_table
        text = format_table(["a", "b"], [[1, None], [0.5, "x"]])
        # None renders as "-" (absent measurement), not "None".
        assert "None" not in text
        assert "-" in text and "0.5" in text

    def test_flop_counter_by_kind_totals(self):
        from repro.tensor import Tensor, count_flops
        a = Tensor(np.zeros((3, 3), dtype=np.float32))
        with count_flops() as fc:
            a @ a
            a @ a
        assert fc.by_kind["matmul"] == fc.total == 2 * 27
