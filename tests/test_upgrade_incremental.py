"""Unit tests for upgrade_model (Algorithm 1 step 0) and incremental
widening (Sec. 3.5 computation reuse)."""

import numpy as np
import pytest

from repro.errors import ConfigError, SliceRateError
from repro.models import NNLM, SlicedVGG
from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.slicing import (
    LayerProfile,
    MultiBatchNorm2d,
    ResumablePlan,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
    materialize_subnet,
    slice_profile,
    slice_rate,
    upgrade_model,
)
from repro.slicing.incremental import forward_narrow, full_cost, widen
from repro.tensor import Tensor, no_grad


def plain_mlp(rng):
    return Sequential(
        Linear(6, 8, rng=rng), ReLU(),
        Linear(8, 8, rng=rng), ReLU(),
        Linear(8, 3, rng=rng),
    )


def plain_cnn(rng):
    return Sequential(
        Conv2d(3, 8, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(8), ReLU(),
        Conv2d(8, 8, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(8), ReLU(),
    )


class TestUpgradeModel:
    def test_linear_layers_replaced_weights_copied(self, rng):
        plain = plain_mlp(rng)
        reference = plain[0].weight.data.copy()
        upgraded = upgrade_model(plain)
        assert isinstance(upgraded[0], SlicedLinear)
        np.testing.assert_allclose(upgraded[0].weight.data, reference)

    def test_first_layer_input_not_sliced(self, rng):
        upgraded = upgrade_model(plain_mlp(rng))
        assert not upgraded[0].slice_input
        assert upgraded[2].slice_input

    def test_last_linear_output_not_sliced(self, rng):
        upgraded = upgrade_model(plain_mlp(rng))
        assert not upgraded[4].slice_output
        assert upgraded[0].slice_output

    def test_upgraded_model_runs_at_any_rate(self, rng):
        upgraded = upgrade_model(plain_mlp(rng))
        x = Tensor(rng.normal(size=(2, 6)).astype(np.float32))
        full = upgraded(x)
        with slice_rate(0.5):
            narrow = upgraded(x)
        assert full.shape == narrow.shape == (2, 3)

    def test_full_rate_preserves_function(self, rng):
        plain = plain_mlp(rng)
        x = Tensor(rng.normal(size=(2, 6)).astype(np.float32))
        before = plain(x).data.copy()
        upgraded = upgrade_model(plain)
        np.testing.assert_allclose(upgraded(x).data, before, rtol=1e-5)

    def test_cnn_batchnorm_becomes_groupnorm(self, rng):
        upgraded = upgrade_model(plain_cnn(rng))
        assert isinstance(upgraded[0], SlicedConv2d)
        assert isinstance(upgraded[1], SlicedGroupNorm)

    def test_cnn_multi_bn_upgrade(self, rng):
        upgraded = upgrade_model(plain_cnn(rng), rates=[0.5, 1.0],
                                 norm="multi_bn")
        assert isinstance(upgraded[1], MultiBatchNorm2d)

    def test_multi_bn_requires_rates(self, rng):
        with pytest.raises(ConfigError):
            upgrade_model(plain_cnn(rng), norm="multi_bn")

    def test_unknown_norm_rejected(self, rng):
        with pytest.raises(ConfigError):
            upgrade_model(plain_cnn(rng), norm="layer")

    def test_model_without_transforms_rejected(self):
        with pytest.raises(ConfigError):
            upgrade_model(Sequential(ReLU()))


class TestIncrementalWidening:
    def make_layer(self, rng, rescale=False):
        layer = SlicedLinear(16, 16, rescale=rescale,
                             rng=np.random.default_rng(0))
        return layer

    def test_exact_widening_matches_direct(self, rng):
        layer = self.make_layer(rng)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        x_narrow = x_wide[:, :8]
        _, state = forward_narrow(layer, x_narrow, 0.5)
        widened, _ = widen(layer, x_wide, 1.0, state, exact=True)
        with slice_rate(1.0):
            direct = layer(Tensor(x_wide)).data
        np.testing.assert_allclose(widened, direct, rtol=1e-4, atol=1e-5)

    def test_approximate_widening_matches_when_inputs_prefix(self, rng):
        """With the narrow input a true prefix, ya reuse is exact."""
        layer = self.make_layer(rng)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x_wide[:, :8], 0.5)
        approx, _ = widen(layer, x_wide, 1.0, state, exact=False)
        with slice_rate(1.0):
            direct = layer(Tensor(x_wide)).data
        np.testing.assert_allclose(approx, direct, rtol=1e-4, atol=1e-5)

    def test_approximate_widening_with_rescale(self, rng):
        layer = self.make_layer(rng, rescale=True)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x_wide[:, :8], 0.5)
        approx, _ = widen(layer, x_wide, 1.0, state, exact=False)
        with slice_rate(1.0):
            direct = layer(Tensor(x_wide)).data
        np.testing.assert_allclose(approx, direct, rtol=1e-3, atol=1e-4)

    def test_flops_saved_vs_full_recompute(self, rng):
        layer = self.make_layer(rng)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x_wide[:, :8], 0.5)
        _, spent = widen(layer, x_wide, 1.0, state, exact=False)
        full = full_cost(layer, 4, 1.0)
        narrow = full_cost(layer, 4, 0.5)
        assert spent == full - narrow

    def test_cannot_widen_downward(self, rng):
        layer = self.make_layer(rng)
        x = rng.normal(size=(2, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x, 1.0)
        with pytest.raises(SliceRateError):
            widen(layer, x[:, :8], 0.5, state)

    def test_same_rate_widening_is_identity(self, rng):
        layer = self.make_layer(rng)
        x = rng.normal(size=(2, 16)).astype(np.float32)
        narrow, state = forward_narrow(layer, x[:, :8], 0.5)
        again, spent = widen(layer, x[:, :8], 0.5, state, exact=False)
        np.testing.assert_allclose(again, narrow, rtol=1e-5)
        assert spent == 0


class TestResumeFallback:
    """Resume-or-recompute fallback for conv and recurrent stacks.

    Dense layers widen by pure column extension, but the fallback rules
    differ elsewhere: a convolution extends by output channels only
    while its input is untouched and recomputes otherwise, and an LSTM
    cell grafts its cached per-gate input projections yet always
    replays the recurrence (the hidden trajectory and the rescale
    depend on the hidden width).  Each widened result is pinned three
    ways: against a from-scratch resumable pass (bitwise), the live
    sliced forward, and the materialized subnet.
    """

    def vgg(self):
        return SlicedVGG([(8, 1), (8, 1)], in_channels=3, num_classes=4,
                         seed=5)

    def nnlm(self):
        return NNLM(vocab_size=20, embed_dim=8, hidden_size=8,
                    num_layers=2, seed=6)

    @staticmethod
    def _arg(x):
        arr = np.asarray(x)
        return arr if arr.dtype.kind in "iu" else Tensor(x)

    def _three_way(self, model, inputs, chained, profile,
                   rtol=1e-4, atol=1e-5):
        scratch = ResumablePlan(model, profile, exact=True).run(inputs)
        np.testing.assert_array_equal(chained, scratch)
        model.eval()
        with no_grad(), slice_profile(profile):
            live = model(self._arg(inputs)).data
        np.testing.assert_allclose(chained, live, rtol=rtol, atol=atol,
                                   err_msg="widened vs live forward")
        deployed = materialize_subnet(model, profile)
        deployed.eval()
        with no_grad():
            deployed_out = deployed(self._arg(inputs)).data
        np.testing.assert_allclose(chained, deployed_out, rtol=rtol,
                                   atol=atol,
                                   err_msg="widened vs materialized")

    def test_conv_channel_extension_three_way(self, rng):
        """conv0 grows, conv1's input changes -> extend then recompute."""
        model = self.vgg()
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        narrow = LayerProfile({"conv0": 0.5, "conv1": 0.5, "head": 0.5},
                              default=0.5)
        wide = LayerProfile({"conv0": 1.0, "conv1": 0.5, "head": 0.75},
                            default=1.0)
        plan = ResumablePlan(model, narrow, exact=True)
        plan.run(x)
        chained = plan.widen(wide)
        report = {r["name"]: r for r in plan.last_report}
        # conv0: clean channel extension — cheaper than from-scratch.
        assert 0 < report["conv0"]["spent"] < report["conv0"]["full"]
        # conv1: its input gained channels, so reuse is unjustifiable
        # and the fallback recomputes at full cost.
        assert report["conv1"]["spent"] == report["conv1"]["full"] > 0
        assert not report["conv1"]["reused"]
        self._three_way(model, x, chained, wide)

    def test_conv_untouched_prefix_is_reused(self, rng):
        """Only conv1 grows: conv0 and its norm are served from cache."""
        model = self.vgg()
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        narrow = LayerProfile({"conv1": 0.5}, default=1.0)
        wide = LayerProfile({"conv1": 1.0}, default=1.0)
        plan = ResumablePlan(model, narrow, exact=True)
        plan.run(x)
        chained = plan.widen(wide)
        report = {r["name"]: r for r in plan.last_report}
        assert report["conv0"]["reused"] and report["conv0"]["spent"] == 0
        assert 0 < report["conv1"]["spent"] < report["conv1"]["full"]
        self._three_way(model, x, chained, wide)

    def test_lstm_recurrence_always_replays(self, rng):
        """Hidden growth grafts projections but replays the recurrence."""
        model = self.nnlm()
        tokens = rng.integers(0, 20, size=(5, 3))
        narrow = LayerProfile({"lstm.cell0": 0.5, "lstm.cell1": 0.5,
                               "decoder": 0.5}, default=0.5)
        wide = LayerProfile({"lstm.cell0": 1.0, "lstm.cell1": 0.5,
                             "decoder": 0.5}, default=1.0)
        plan = ResumablePlan(model, narrow, exact=True)
        plan.run(tokens)
        chained = plan.widen(wide)
        report = {r["name"]: r for r in plan.last_report}
        lstm = report["lstm"]
        # The input projections resumed (spent < full), but the replayed
        # recurrence keeps the cost strictly positive even though cell1
        # kept its width (its input widened underneath it).
        assert 0 < lstm["spent"] < lstm["full"]
        self._three_way(model, tokens, chained, wide,
                        rtol=1e-3, atol=1e-4)

    def test_lstm_untouched_prefix_reused_decoder_recomputes(self, rng):
        """Only cell1 grows: cell0 serves its cached sequence, and the
        decoder — whose input just widened — falls back to recompute."""
        model = self.nnlm()
        tokens = rng.integers(0, 20, size=(4, 2))
        narrow = LayerProfile({"lstm.cell1": 0.5}, default=1.0)
        wide = LayerProfile({"lstm.cell1": 1.0}, default=1.0)
        plan = ResumablePlan(model, narrow, exact=True)
        plan.run(tokens)
        chained = plan.widen(wide)
        report = {r["name"]: r for r in plan.last_report}
        # cell0 reused its whole sequence, so the stack spends less
        # than from-scratch, but cell1's replayed recurrence keeps it
        # positive; the decoder cannot reuse across a width change.
        assert 0 < report["lstm"]["spent"] < report["lstm"]["full"]
        assert report["decoder"]["spent"] == report["decoder"]["full"] > 0
        assert not report["decoder"]["reused"]
        self._three_way(model, tokens, chained, wide,
                        rtol=1e-3, atol=1e-4)
