"""Unit tests for upgrade_model (Algorithm 1 step 0) and incremental
widening (Sec. 3.5 computation reuse)."""

import numpy as np
import pytest

from repro.errors import ConfigError, SliceRateError
from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.slicing import (
    MultiBatchNorm2d,
    SlicedConv2d,
    SlicedGroupNorm,
    SlicedLinear,
    slice_rate,
    upgrade_model,
)
from repro.slicing.incremental import forward_narrow, full_cost, widen
from repro.tensor import Tensor


def plain_mlp(rng):
    return Sequential(
        Linear(6, 8, rng=rng), ReLU(),
        Linear(8, 8, rng=rng), ReLU(),
        Linear(8, 3, rng=rng),
    )


def plain_cnn(rng):
    return Sequential(
        Conv2d(3, 8, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(8), ReLU(),
        Conv2d(8, 8, 3, padding=1, bias=False, rng=rng),
        BatchNorm2d(8), ReLU(),
    )


class TestUpgradeModel:
    def test_linear_layers_replaced_weights_copied(self, rng):
        plain = plain_mlp(rng)
        reference = plain[0].weight.data.copy()
        upgraded = upgrade_model(plain)
        assert isinstance(upgraded[0], SlicedLinear)
        np.testing.assert_allclose(upgraded[0].weight.data, reference)

    def test_first_layer_input_not_sliced(self, rng):
        upgraded = upgrade_model(plain_mlp(rng))
        assert not upgraded[0].slice_input
        assert upgraded[2].slice_input

    def test_last_linear_output_not_sliced(self, rng):
        upgraded = upgrade_model(plain_mlp(rng))
        assert not upgraded[4].slice_output
        assert upgraded[0].slice_output

    def test_upgraded_model_runs_at_any_rate(self, rng):
        upgraded = upgrade_model(plain_mlp(rng))
        x = Tensor(rng.normal(size=(2, 6)).astype(np.float32))
        full = upgraded(x)
        with slice_rate(0.5):
            narrow = upgraded(x)
        assert full.shape == narrow.shape == (2, 3)

    def test_full_rate_preserves_function(self, rng):
        plain = plain_mlp(rng)
        x = Tensor(rng.normal(size=(2, 6)).astype(np.float32))
        before = plain(x).data.copy()
        upgraded = upgrade_model(plain)
        np.testing.assert_allclose(upgraded(x).data, before, rtol=1e-5)

    def test_cnn_batchnorm_becomes_groupnorm(self, rng):
        upgraded = upgrade_model(plain_cnn(rng))
        assert isinstance(upgraded[0], SlicedConv2d)
        assert isinstance(upgraded[1], SlicedGroupNorm)

    def test_cnn_multi_bn_upgrade(self, rng):
        upgraded = upgrade_model(plain_cnn(rng), rates=[0.5, 1.0],
                                 norm="multi_bn")
        assert isinstance(upgraded[1], MultiBatchNorm2d)

    def test_multi_bn_requires_rates(self, rng):
        with pytest.raises(ConfigError):
            upgrade_model(plain_cnn(rng), norm="multi_bn")

    def test_unknown_norm_rejected(self, rng):
        with pytest.raises(ConfigError):
            upgrade_model(plain_cnn(rng), norm="layer")

    def test_model_without_transforms_rejected(self):
        with pytest.raises(ConfigError):
            upgrade_model(Sequential(ReLU()))


class TestIncrementalWidening:
    def make_layer(self, rng, rescale=False):
        layer = SlicedLinear(16, 16, rescale=rescale,
                             rng=np.random.default_rng(0))
        return layer

    def test_exact_widening_matches_direct(self, rng):
        layer = self.make_layer(rng)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        x_narrow = x_wide[:, :8]
        _, state = forward_narrow(layer, x_narrow, 0.5)
        widened, _ = widen(layer, x_wide, 1.0, state, exact=True)
        with slice_rate(1.0):
            direct = layer(Tensor(x_wide)).data
        np.testing.assert_allclose(widened, direct, rtol=1e-4, atol=1e-5)

    def test_approximate_widening_matches_when_inputs_prefix(self, rng):
        """With the narrow input a true prefix, ya reuse is exact."""
        layer = self.make_layer(rng)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x_wide[:, :8], 0.5)
        approx, _ = widen(layer, x_wide, 1.0, state, exact=False)
        with slice_rate(1.0):
            direct = layer(Tensor(x_wide)).data
        np.testing.assert_allclose(approx, direct, rtol=1e-4, atol=1e-5)

    def test_approximate_widening_with_rescale(self, rng):
        layer = self.make_layer(rng, rescale=True)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x_wide[:, :8], 0.5)
        approx, _ = widen(layer, x_wide, 1.0, state, exact=False)
        with slice_rate(1.0):
            direct = layer(Tensor(x_wide)).data
        np.testing.assert_allclose(approx, direct, rtol=1e-3, atol=1e-4)

    def test_flops_saved_vs_full_recompute(self, rng):
        layer = self.make_layer(rng)
        x_wide = rng.normal(size=(4, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x_wide[:, :8], 0.5)
        _, spent = widen(layer, x_wide, 1.0, state, exact=False)
        full = full_cost(layer, 4, 1.0)
        narrow = full_cost(layer, 4, 0.5)
        assert spent == full - narrow

    def test_cannot_widen_downward(self, rng):
        layer = self.make_layer(rng)
        x = rng.normal(size=(2, 16)).astype(np.float32)
        _, state = forward_narrow(layer, x, 1.0)
        with pytest.raises(SliceRateError):
            widen(layer, x[:, :8], 0.5, state)

    def test_same_rate_widening_is_identity(self, rng):
        layer = self.make_layer(rng)
        x = rng.normal(size=(2, 16)).astype(np.float32)
        narrow, state = forward_narrow(layer, x[:, :8], 0.5)
        again, spent = widen(layer, x[:, :8], 0.5, state, exact=False)
        np.testing.assert_allclose(again, narrow, rtol=1e-5)
        assert spent == 0
