"""Unit + property tests for the slice-rate context and group partition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SliceRateError
from repro.slicing import GroupPartition, SliceContext, current_rate, slice_rate


class TestContext:
    def test_default_rate_is_full(self):
        assert current_rate() == 1.0

    def test_context_sets_and_restores(self):
        with slice_rate(0.5):
            assert current_rate() == 0.5
        assert current_rate() == 1.0

    def test_nested_contexts(self):
        with slice_rate(0.5):
            with slice_rate(0.25):
                assert current_rate() == 0.25
            assert current_rate() == 0.5

    def test_restores_after_exception(self):
        with pytest.raises(ValueError):
            with slice_rate(0.5):
                raise ValueError
        assert current_rate() == 1.0

    def test_invalid_rates_rejected(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(SliceRateError):
                with slice_rate(bad):
                    pass

    def test_object_style_api(self):
        with SliceContext.at(0.75):
            assert SliceContext.get() == 0.75


class TestGroupPartition:
    def test_full_rate_gives_full_width(self):
        assert GroupPartition(64, 8).width_for(1.0) == 64

    def test_exact_boundaries(self):
        part = GroupPartition(64, 8)
        assert part.width_for(0.5) == 32
        assert part.width_for(0.375) == 24
        assert part.width_for(0.25) == 16

    def test_minimum_one_group(self):
        part = GroupPartition(64, 8)
        assert part.width_for(0.01) == 8

    def test_rate_snaps_to_nearest_group(self):
        part = GroupPartition(64, 8)
        assert part.width_for(0.55) == part.width_for(0.5)

    def test_uneven_width_covers_everything(self):
        part = GroupPartition(10, 4)
        assert part.boundaries[-1] == 10
        slices = part.group_slices()
        assert slices[0][0] == 0
        for (a, b), (c, d) in zip(slices, slices[1:]):
            assert b == c

    def test_rate_of_width_roundtrip(self):
        part = GroupPartition(64, 8)
        assert part.rate_of_width(32) == 0.5
        with pytest.raises(SliceRateError):
            part.rate_of_width(33)

    def test_valid_rates(self):
        part = GroupPartition(16, 4)
        assert part.valid_rates() == [0.25, 0.5, 0.75, 1.0]

    def test_invalid_construction(self):
        with pytest.raises(SliceRateError):
            GroupPartition(0, 1)
        with pytest.raises(SliceRateError):
            GroupPartition(4, 5)
        with pytest.raises(SliceRateError):
            GroupPartition(4, 0)

    def test_equality_and_hash(self):
        assert GroupPartition(8, 2) == GroupPartition(8, 2)
        assert GroupPartition(8, 2) != GroupPartition(8, 4)
        assert hash(GroupPartition(8, 2)) == hash(GroupPartition(8, 2))


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 256), st.integers(1, 32),
       st.floats(0.001, 1.0, allow_nan=False))
def test_partition_properties(width, groups, rate):
    """Prefix widths are monotone in rate, bounded, and group-aligned."""
    groups = min(groups, width)
    part = GroupPartition(width, groups)
    w = part.width_for(rate)
    assert 1 <= w <= width
    assert w in part.boundaries
    # Monotonicity in the rate.
    w_higher = part.width_for(min(1.0, rate + 0.3))
    assert w_higher >= w


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 128), st.integers(1, 16))
def test_group_slices_partition_the_width(width, groups):
    groups = min(groups, width)
    part = GroupPartition(width, groups)
    slices = part.group_slices()
    covered = []
    for a, b in slices:
        assert a < b
        covered.extend(range(a, b))
    assert covered == list(range(width))


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 64))
def test_subsumption_of_prefixes(width):
    """Smaller rates always select a strict prefix of larger rates."""
    part = GroupPartition(width, min(8, width))
    rates = part.valid_rates()
    widths = [part.width_for(r) for r in rates]
    assert widths == sorted(widths)
    assert widths[-1] == width
