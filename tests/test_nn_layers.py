"""Unit tests for the plain (unsliced) layers: linear, conv, norm, etc."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    GlobalAvgPool2d,
    GroupNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.tensor import Tensor


def tensor(rng, *shape):
    return Tensor(rng.normal(size=shape).astype(np.float32))


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(tensor(rng, 5, 4)).shape == (5, 3)

    def test_matches_manual(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = tensor(rng, 2, 4)
        expected = x.data @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected, rtol=1e-5)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            Linear(0, 3)


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=rng)
        assert layer(tensor(rng, 2, 3, 8, 8)).shape == (2, 8, 8, 8)

    def test_stride_halves(self, rng):
        layer = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        assert layer(tensor(rng, 1, 3, 8, 8)).shape == (1, 4, 4, 4)

    def test_bias_flag(self, rng):
        assert Conv2d(2, 2, 3, bias=False, rng=rng).bias is None

    def test_invalid_channels(self):
        with pytest.raises(ConfigError):
            Conv2d(0, 2, 3)


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        bn = BatchNorm2d(4)
        out = bn(tensor(rng, 16, 4, 5, 5))
        assert abs(out.data.mean()) < 1e-4
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_running_stats_updated(self, rng):
        bn = BatchNorm2d(4)
        x = tensor(rng, 16, 4, 5, 5)
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(4)
        for _ in range(50):
            bn(tensor(rng, 16, 4, 5, 5) + 3.0)
        bn.eval()
        out = bn(tensor(rng, 16, 4, 5, 5) + 3.0)
        assert abs(out.data.mean()) < 0.2

    def test_wrong_channels_raises(self, rng):
        bn = BatchNorm2d(4)
        with pytest.raises(ShapeError):
            bn(tensor(rng, 2, 3, 5, 5))

    def test_wrong_ndim_raises(self, rng):
        with pytest.raises(ShapeError):
            BatchNorm2d(4)(tensor(rng, 2, 4))

    def test_invalid_features(self):
        with pytest.raises(ConfigError):
            BatchNorm2d(0)


class TestGroupNorm:
    def test_normalizes_per_group(self, rng):
        gn = GroupNorm(2, 4)
        out = gn(tensor(rng, 3, 4, 6, 6)).data
        grouped = out.reshape(3, 2, -1)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-4)
        np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-2)

    def test_batch_size_independent(self, rng):
        gn = GroupNorm(2, 4)
        x = tensor(rng, 8, 4, 5, 5)
        full = gn(x).data
        single = gn(Tensor(x.data[:1])).data
        np.testing.assert_allclose(full[:1], single, atol=1e-5)

    def test_works_on_2d_input(self, rng):
        gn = GroupNorm(2, 6)
        assert gn(tensor(rng, 4, 6)).shape == (4, 6)

    def test_affine_false_has_no_params(self):
        assert not GroupNorm(2, 4, affine=False).parameters()

    def test_indivisible_raises(self):
        with pytest.raises(ConfigError):
            GroupNorm(3, 4)

    def test_wrong_channels_raises(self, rng):
        with pytest.raises(ShapeError):
            GroupNorm(2, 4)(tensor(rng, 2, 6, 3, 3))


class TestActivationModules:
    def test_relu(self):
        out = ReLU()(Tensor([-1.0, 1.0]))
        np.testing.assert_allclose(out.data, [0.0, 1.0])

    def test_tanh(self):
        out = Tanh()(Tensor([0.0]))
        np.testing.assert_allclose(out.data, [0.0])

    def test_sigmoid(self):
        out = Sigmoid()(Tensor([0.0]))
        np.testing.assert_allclose(out.data, [0.5])


class TestDropoutModule:
    def test_training_drops(self, rng):
        layer = Dropout(0.5, rng=rng)
        out = layer(Tensor(np.ones(1000, dtype=np.float32)))
        assert (out.data == 0).sum() > 300

    def test_eval_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(np.ones(10, dtype=np.float32))
        assert layer(x) is x


class TestPoolingModules:
    def test_max_pool_module(self, rng):
        assert MaxPool2d(2)(tensor(rng, 1, 2, 4, 4)).shape == (1, 2, 2, 2)

    def test_avg_pool_module(self, rng):
        assert AvgPool2d(2)(tensor(rng, 1, 2, 4, 4)).shape == (1, 2, 2, 2)

    def test_global_pool_module(self, rng):
        assert GlobalAvgPool2d()(tensor(rng, 2, 5, 4, 4)).shape == (2, 5)


class TestEmbeddingModule:
    def test_shape(self, rng):
        emb = Embedding(10, 4, rng=rng)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            Embedding(0, 4)

    def test_init_bound_respected(self, rng):
        emb = Embedding(10, 4, rng=rng, init_bound=0.01)
        assert np.abs(emb.weight.data).max() <= 0.01
