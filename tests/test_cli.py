"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.epochs == 20
        assert args.seed == 0

    def test_reproduce_requires_known_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "table99"])

    def test_all_artifacts_parse(self):
        parser = build_parser()
        for artifact in ARTIFACTS:
            args = parser.parse_args(["reproduce", artifact])
            assert args.artifact == artifact

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info_prints_protocols(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "image experiment protocol" in out
        assert "vocab_size" in out

    def test_demo_trains_and_reports(self, capsys):
        assert main(["demo", "--epochs", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Subnet-1.0" in out
        assert "accuracy" in out

    def test_serve_demo_reports_policies(self, capsys):
        assert main(["serve-demo", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "model slicing" in out
        assert "fixed full" in out

    def test_artifact_table_registry_is_consistent(self):
        import importlib
        for artifact, (module_name, func_name) in ARTIFACTS.items():
            module = importlib.import_module(
                f"repro.experiments.{module_name}")
            assert hasattr(module, func_name), artifact
