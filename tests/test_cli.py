"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import ARTIFACTS, build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.epochs == 20
        assert args.seed == 0

    def test_reproduce_requires_known_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "table99"])

    def test_all_artifacts_parse(self):
        parser = build_parser()
        for artifact in ARTIFACTS:
            args = parser.parse_args(["reproduce", artifact])
            assert args.artifact == artifact

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_runtime_defaults(self):
        args = build_parser().parse_args(["runtime"])
        assert args.replicas == 3
        assert args.dispatch == "least-loaded"
        assert args.crash_time is None
        assert not args.no_faults
        assert args.json is None

    def test_runtime_dispatch_choices(self):
        args = build_parser().parse_args(
            ["runtime", "--dispatch", "power-of-two"])
        assert args.dispatch == "power-of-two"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runtime", "--dispatch", "random"])

    def test_runtime_trace_option(self):
        args = build_parser().parse_args(["runtime"])
        assert args.trace is None
        args = build_parser().parse_args(["runtime", "--trace", "t.jsonl"])
        assert args.trace == "t.jsonl"

    def test_obs_summarize_parses(self):
        args = build_parser().parse_args(["obs", "summarize", "t.jsonl"])
        assert args.obs_command == "summarize"
        assert args.trace == ["t.jsonl"]
        assert args.top == 15
        args = build_parser().parse_args(
            ["obs", "summarize", "t.jsonl", "--top", "3"])
        assert args.top == 3
        args = build_parser().parse_args(
            ["obs", "summarize", "a.jsonl", "b.jsonl"])
        assert args.trace == ["a.jsonl", "b.jsonl"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "summarize"])

    def test_diagnose_parses(self):
        args = build_parser().parse_args(["diagnose"])
        assert args.command == "diagnose"
        assert args.epochs == 6 and args.seed == 0
        assert args.rates is None and args.slices == 4
        assert args.json is None and args.trace is None
        args = build_parser().parse_args(
            ["diagnose", "--rates", "0.25", "1.0", "--slices", "2",
             "--json", "d.json", "--trace", "d.jsonl"])
        assert args.rates == [0.25, 1.0]
        assert args.slices == 2
        assert args.json == "d.json" and args.trace == "d.jsonl"


class TestCommands:
    def test_info_prints_protocols(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "image experiment protocol" in out
        assert "vocab_size" in out

    def test_demo_trains_and_reports(self, capsys):
        assert main(["demo", "--epochs", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Subnet-1.0" in out
        assert "accuracy" in out

    def test_serve_demo_reports_policies(self, capsys):
        assert main(["serve-demo", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "model slicing" in out
        assert "fixed full" in out

    def test_runtime_reports_policies_and_writes_json(self, capsys,
                                                      tmp_path):
        path = tmp_path / "telemetry.json"
        assert main(["runtime", "--duration", "10", "--base-rate", "50",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "model slicing" in out
        assert "fixed full" in out
        assert "good*acc" in out
        telemetry = json.loads(path.read_text())
        assert set(telemetry["latency"]) == {"p50", "p95", "p99"}
        assert telemetry["total_requests"] == len(telemetry["traces"])

    def test_runtime_no_faults_has_no_retries(self, capsys):
        assert main(["runtime", "--duration", "10", "--base-rate", "50",
                     "--no-faults"]) == 0
        out = capsys.readouterr().out
        assert "faults=none" in out

    def test_runtime_trace_then_obs_summarize(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["runtime", "--duration", "5", "--base-rate", "50",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert trace.exists()
        assert main(["obs", "summarize", str(trace), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "runtime.request" in out
        assert "metrics snapshot" in out
        assert "runtime_requests_total" in out

    def test_obs_summarize_missing_file_fails_cleanly(self, capsys,
                                                      tmp_path):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot summarize" in capsys.readouterr().err

    def test_obs_summarize_merges_multiple_traces(self, capsys, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        for trace in (first, second):
            assert main(["runtime", "--duration", "5", "--base-rate", "50",
                         "--trace", str(trace)]) == 0
            capsys.readouterr()
        assert main(["obs", "summarize", str(first), str(second)]) == 0
        out = capsys.readouterr().out
        assert "2 traces" in out
        assert "runtime_requests_total" in out
        # glob expansion reaches both files too
        assert main(["obs", "summarize", str(tmp_path / "*.jsonl")]) == 0
        assert "2 traces" in capsys.readouterr().out

    def test_diagnose_runs_and_is_deterministic(self, capsys, tmp_path):
        args = ["diagnose", "--epochs", "2", "--slices", "2",
                "--json", str(tmp_path / "d.json"),
                "--trace", str(tmp_path / "d.jsonl")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "error slices (worst first)" in out
        assert "layer attribution" in out
        first_json = (tmp_path / "d.json").read_bytes()
        first_trace = (tmp_path / "d.jsonl").read_bytes()
        assert main(args) == 0
        capsys.readouterr()
        assert (tmp_path / "d.json").read_bytes() == first_json
        assert (tmp_path / "d.jsonl").read_bytes() == first_trace

    def test_artifact_table_registry_is_consistent(self):
        import importlib
        for artifact, (module_name, func_name) in ARTIFACTS.items():
            module = importlib.import_module(
                f"repro.experiments.{module_name}")
            assert hasattr(module, func_name), artifact


class TestSizingCommand:
    FAST = ["sizing", "--forecast", "diurnal:base=8000,duration=21600",
            "--window", "600"]

    def test_sizing_defaults_parse(self):
        args = build_parser().parse_args(["sizing"])
        assert args.forecast.startswith("diurnal")
        assert args.slo_p95 == 100.0
        assert args.accuracy_floor == 0.9
        assert args.ha_spares == 1
        assert not args.no_simulate

    def test_sizing_emits_plan_and_simulation(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "Elastic fleet plan" in out
        assert "Fixed-rate fleets" in out
        assert "Autoscaling simulation" in out
        assert "elastic" in out

    def test_sizing_report_is_deterministic(self, capsys, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(self.FAST + ["--json", str(path)]) == 0
        capsys.readouterr()
        assert paths[0].read_text() == paths[1].read_text()
        payload = json.loads(paths[0].read_text())
        assert payload["plan"]["best_fixed"] is not None
        assert payload["simulations"][0]["meets_slo"] is True

    def test_sizing_no_simulate_skips_sim(self, capsys):
        assert main(self.FAST + ["--no-simulate"]) == 0
        assert "Autoscaling simulation" not in capsys.readouterr().out

    def test_sizing_rejects_bad_forecast(self, capsys):
        assert main(["sizing", "--forecast", "nope:x=1"]) == 2
        assert "unknown forecast" in capsys.readouterr().err

    def test_sizing_rejects_unreachable_floor(self, capsys):
        assert main(self.FAST + ["--accuracy-floor", "0.999"]) == 2
        assert "accuracy floor" in capsys.readouterr().err

    def test_profile_search_reports_memory(self, capsys):
        assert main(["profile", "search", "--model", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "peak activations" in out
