"""Unit tests for the anytime-prediction engine."""

import numpy as np
import pytest

from repro.anytime import AnytimeMLP, anytime_accuracy_curve
from repro.data import ArrayDataset, DataLoader
from repro.errors import ConfigError
from repro.models import MLP
from repro.optim import SGD
from repro.slicing import RandomStaticScheme, SliceTrainer, slice_rate
from repro.tensor import Tensor, no_grad

RATES = [0.25, 0.5, 1.0]


@pytest.fixture(scope="module")
def trained_engine():
    rng = np.random.default_rng(0)
    w = rng.normal(size=(12, 4))
    x = rng.normal(size=(768, 12)).astype(np.float32)
    y = (x @ w).argmax(axis=1)
    data = ArrayDataset(x[:512], y[:512])
    model = MLP(12, [32, 32], 4, seed=0)
    trainer = SliceTrainer(model, RandomStaticScheme(RATES, num_random=1),
                           SGD(model.parameters(), lr=0.05, momentum=0.9),
                           rng=np.random.default_rng(1))
    for _ in range(25):
        trainer.train_epoch(DataLoader(data, 64, shuffle=True,
                                       rng=np.random.default_rng(2)))
    return AnytimeMLP(model, RATES), x[512:], y[512:]


class TestAnytimeRun:
    def test_one_step_per_rate(self, trained_engine):
        engine, inputs, _ = trained_engine
        steps = engine.run(inputs)
        assert [s.rate for s in steps] == RATES

    def test_costs_accumulate(self, trained_engine):
        engine, inputs, _ = trained_engine
        steps = engine.run(inputs)
        total = 0
        for step in steps:
            total += step.step_madds
            assert step.cumulative_madds == total

    def test_reuse_cheaper_than_rerunning_everything(self, trained_engine):
        """Progressive refinement to full width costs less than running
        every rate from scratch, and exactly equals the full-width
        from-scratch cost (each block product is computed once)."""
        engine, inputs, _ = trained_engine
        steps = engine.run(inputs)
        rerun_total = sum(engine.from_scratch_cost(len(inputs), r)
                          for r in RATES)
        assert steps[-1].cumulative_madds < rerun_total
        assert steps[-1].cumulative_madds == \
            engine.from_scratch_cost(len(inputs), 1.0)

    def test_budget_stops_refinement(self, trained_engine):
        engine, inputs, _ = trained_engine
        base_cost = engine.run(inputs)[0].step_madds
        steps = engine.run(inputs, budget_madds=base_cost)
        assert len(steps) == 1
        assert steps[0].rate == RATES[0]

    def test_base_step_always_runs(self, trained_engine):
        engine, inputs, _ = trained_engine
        steps = engine.run(inputs, budget_madds=0)
        assert len(steps) == 1

    def test_base_step_matches_sliced_model(self, trained_engine):
        engine, inputs, _ = trained_engine
        steps = engine.run(inputs[:16])
        with no_grad():
            with slice_rate(RATES[0]):
                expected = engine.model(Tensor(inputs[:16])).data
        np.testing.assert_allclose(steps[0].logits, expected,
                                   rtol=1e-4, atol=1e-5)

    def test_refined_logits_approximate_full_model(self, trained_engine):
        """Sec 3.5 approximation: the final refinement is close to (not
        necessarily identical to) the from-scratch full-width pass."""
        engine, inputs, labels = trained_engine
        steps = engine.run(inputs)
        with no_grad():
            with slice_rate(1.0):
                exact = engine.model(Tensor(inputs)).data
        approx = steps[-1].logits
        agreement = (approx.argmax(axis=1) == exact.argmax(axis=1)).mean()
        assert agreement > 0.8


class TestAnytimeCurve:
    def test_accuracy_improves_with_refinement(self, trained_engine):
        engine, inputs, labels = trained_engine
        curve = anytime_accuracy_curve(engine, inputs, labels)
        assert curve[-1]["accuracy"] >= curve[0]["accuracy"] - 0.02
        assert curve[-1]["accuracy"] > 0.5

    def test_curve_records_costs(self, trained_engine):
        engine, inputs, labels = trained_engine
        curve = anytime_accuracy_curve(engine, inputs, labels)
        for point in curve:
            assert point["cumulative_madds"] >= point["step_madds"]
            assert point["from_scratch_madds"] > 0


class TestValidation:
    def test_requires_mlp(self):
        from repro.models import SlicedVGG
        with pytest.raises(ConfigError):
            AnytimeMLP(SlicedVGG.cifar_mini(num_classes=4, width=8), RATES)

    def test_requires_rates(self):
        with pytest.raises(ConfigError):
            AnytimeMLP(MLP(4, [8], 2), [])
